(** An ERC-20 token contract for the chain simulator.

    Standard [transfer]/[transferFrom]/[approve] plus owner-gated
    [mint]/[burnFrom] (used by bridge contracts).  All calls dispatch
    from ABI calldata and all state changes emit the standard events,
    so receipts look exactly like mainnet ERC-20 receipts. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Abi = Xcw_abi.Abi

type metadata = {
  token_name : string;
  token_symbol : string;
  token_decimals : int;
  token_owner : Address.t;  (** may mint and burn (the bridge, usually) *)
}

val transfer_event : Abi.Event.t
(** [Transfer(address indexed from, address indexed to, uint256 value)];
    mints emit it from the zero address, burns to it. *)

val approval_event : Abi.Event.t

val deploy :
  Chain.t ->
  from_:Address.t ->
  name:string ->
  symbol:string ->
  decimals:int ->
  owner:Address.t ->
  Address.t

val dispatch : metadata -> Chain.env -> unit
(** The contract body; exposed so other contracts (e.g. WETH) can fall
    back to plain ERC-20 behaviour. *)

(** {1 Calldata builders} *)

val transfer_calldata : to_:Address.t -> amount:U256.t -> string
val transfer_from_calldata :
  from_:Address.t -> to_:Address.t -> amount:U256.t -> string
val approve_calldata : spender:Address.t -> amount:U256.t -> string
val mint_calldata : to_:Address.t -> amount:U256.t -> string
val burn_from_calldata : from_:Address.t -> amount:U256.t -> string

(** {1 Read-only helpers (view functions)} *)

val balance_of : Chain.t -> Address.t -> Address.t -> U256.t
(** [balance_of chain token holder]. *)

val allowance : Chain.t -> Address.t -> owner:Address.t -> spender:Address.t -> U256.t
val total_supply : Chain.t -> Address.t -> U256.t

(**/**)

(* Shared with Weth and the decoders. *)
val balance_key : Address.t -> string
val supply_key : string
val decode_args : Abi.Type.t list -> string -> Abi.Value.t list
