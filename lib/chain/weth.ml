(** Wrapped native currency (WETH / WGLMR / WRON).

    Accepts native value in [deposit()] and mints the wrapped ERC-20
    1:1, emitting [Deposit(address,uint256)]; [withdraw(uint256)] burns
    the wrapped token and returns native value, emitting
    [Withdrawal(address,uint256)].  The [native_deposit] and
    [native_withdrawal] relations in the paper's Listing 1 are built
    from exactly these events. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Abi = Xcw_abi.Abi

let deposit_event =
  Abi.Event.
    {
      name = "Deposit";
      params =
        [
          param ~indexed:true "dst" Abi.Type.Address;
          param "wad" Abi.Type.uint256;
        ];
    }

let withdrawal_event =
  Abi.Event.
    {
      name = "Withdrawal";
      params =
        [
          param ~indexed:true "src" Abi.Type.Address;
          param "wad" Abi.Type.uint256;
        ];
    }

let sel_deposit = Abi.selector "deposit()"
let sel_withdraw = Abi.selector "withdraw(uint256)"

let do_deposit env =
  (* msg.value has already been credited to the contract's native
     balance by the chain; mint the wrapped token 1:1. *)
  let amount = env.Chain.value in
  env.Chain.sstore
    (Erc20.balance_key env.Chain.sender)
    (U256.add_exn (env.Chain.sload (Erc20.balance_key env.Chain.sender)) amount);
  env.Chain.sstore Erc20.supply_key
    (U256.add_exn (env.Chain.sload Erc20.supply_key) amount);
  env.Chain.emit deposit_event
    [ Abi.Value.Address env.Chain.sender; Abi.Value.Uint amount ]

let dispatch (meta : Erc20.metadata) (env : Chain.env) : unit =
  let input = env.Chain.input in
  if String.length input = 0 then
    (* Plain value transfer: WETH's receive() wraps it. *)
    do_deposit env
  else begin
    let sel = if String.length input >= 4 then String.sub input 0 4 else "" in
    if sel = sel_deposit then do_deposit env
    else if sel = sel_withdraw then begin
      match Erc20.decode_args [ Abi.Type.uint256 ] input with
      | [ Abi.Value.Uint amount ] ->
          let key = Erc20.balance_key env.Chain.sender in
          let bal = env.Chain.sload key in
          if U256.lt bal amount then
            raise (Chain.Revert "WETH: burn exceeds balance");
          env.Chain.sstore key (U256.sub_exn bal amount);
          env.Chain.sstore Erc20.supply_key
            (U256.sub_exn (env.Chain.sload Erc20.supply_key) amount);
          env.Chain.transfer_native env.Chain.sender amount;
          env.Chain.emit withdrawal_event
            [ Abi.Value.Address env.Chain.sender; Abi.Value.Uint amount ]
      | _ -> raise (Chain.Revert "WETH: bad withdraw args")
    end
    else
      (* Fall back to the plain ERC-20 interface (transfer/approve/...). *)
      Erc20.dispatch meta env
  end

(** Deploy the wrapped-native-token contract for a chain. *)
let deploy chain ~from_ ~name ~symbol : Address.t =
  let meta =
    {
      Erc20.token_name = name;
      token_symbol = symbol;
      token_decimals = 18;
      (* No external owner: mint/burn only through deposit/withdraw. *)
      token_owner = Address.zero;
    }
  in
  Chain.deploy chain ~from_ ~label:(Printf.sprintf "WETH:%s" symbol)
    (dispatch meta)

let deposit_calldata = sel_deposit

let withdraw_calldata ~amount =
  sel_withdraw ^ Abi.encode [ Abi.Type.uint256 ] [ Abi.Value.Uint amount ]
