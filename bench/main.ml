(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation (Sections 4 and 5) from the simulated Nomad and
   Ronin scenarios, prints paper-reported values next to measured ones,
   and runs Bechamel micro-benchmarks plus the DESIGN.md ablations.

   Scale: the benign-traffic volume is [XCW_SCALE] x the paper's counts
   (default 0.05); injected anomaly classes keep their exact paper
   counts, so anomaly columns are directly comparable while captured
   columns scale.  Set XCW_SCALE=1.0 to regenerate at full paper size.

   Run with: dune exec bench/main.exe *)

module U256 = Xcw_uint256.Uint256
module Stats = Xcw_util.Stats
module Prng = Xcw_util.Prng
module Address = Xcw_evm.Address
module Chain = Xcw_chain.Chain
module Rpc = Xcw_rpc.Rpc
module Client = Xcw_rpc.Client
module Fault = Xcw_rpc.Fault
module Latency = Xcw_rpc.Latency
module Engine = Xcw_datalog.Engine
module Ast = Xcw_datalog.Ast
module Bridge = Xcw_bridge.Bridge
module Config = Xcw_core.Config
module Decoder = Xcw_core.Decoder
module Detector = Xcw_core.Detector
module Report = Xcw_core.Report
module Rules = Xcw_core.Rules
module Scenario = Xcw_workload.Scenario
module Timeframes = Xcw_workload.Timeframes

let scale =
  match Sys.getenv_opt "XCW_SCALE" with
  | Some s -> float_of_string s
  | None -> 0.05

let seed =
  match Sys.getenv_opt "XCW_SEED" with Some s -> int_of_string s | None -> 42

(* XCW_BENCH_SMOKE=1 shrinks every mode to a seconds-long sanity pass
   (tiny scale, minimal repetitions) and suppresses the BENCH_*.json
   side effects, so the @bench-smoke dune alias can run inside
   [dune runtest] without polluting the tree. *)
let smoke = Sys.getenv_opt "XCW_BENCH_SMOKE" <> None
let scale = if smoke then Float.min scale 0.01 else scale

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n--- %s ---\n" title

(* ------------------------------------------------------------------ *)
(* monitor_steady_state: per-poll monitoring cost, incremental vs
   from-scratch rule evaluation.  Runnable standalone (and without the
   heavy full-harness scenarios) via
   [dune exec bench/main.exe monitor_steady_state]; emits
   BENCH_monitor.json for machine consumption. *)

let monitor_steady_state () =
  let module Monitor = Xcw_core.Monitor in
  let module Erc20 = Xcw_chain.Erc20 in
  let module U256 = Xcw_uint256.Uint256 in
  let module Json = Xcw_util.Json in
  section
    "Steady-state monitoring: per-poll cost (ms), incremental vs from-scratch";
  let polls_per_point = if smoke then 2 else 6 in
  let tx_counts = if smoke then [ 0; 1 ] else [ 0; 1; 10 ] in
  (* One Nomad-scale scenario per mode so injected traffic and RNG
     streams are identical across the two runs. *)
  let run_mode ~incremental =
    let b = Xcw_workload.Nomad.build ~seed:(seed + 77) ~scale () in
    let bridge = b.Scenario.bridge in
    let src = bridge.Bridge.source.Bridge.chain in
    let dst = bridge.Bridge.target.Bridge.chain in
    let input =
      Detector.default_input ~label:"nomad-steady" ~plugin:Decoder.nomad_plugin
        ~config:b.Scenario.config ~source_chain:src ~target_chain:dst
        ~pricing:b.Scenario.pricing
    in
    let mon = Monitor.create ~incremental input in
    let m = List.hd bridge.Bridge.mappings in
    let user = Address.of_seed "steady-user" in
    Chain.fund src user (U256.of_tokens ~decimals:18 10);
    Chain.fund dst user (U256.of_tokens ~decimals:18 10);
    ignore
      (Chain.submit_tx src ~from_:bridge.Bridge.source.Bridge.operator
         ~to_:m.Bridge.m_src_token
         ~input:(Erc20.mint_calldata ~to_:user ~amount:(U256.of_int 10_000_000))
         ());
    let cur () =
      ( List.length (Chain.all_blocks src),
        List.length (Chain.all_blocks dst) )
    in
    (* Catch-up sync over the full history is not steady state; poll it
       away unmeasured. *)
    let sb, tb = cur () in
    ignore (Monitor.poll mon ~source_block:sb ~target_block:tb);
    List.map
      (fun new_txs ->
        let t0 = Unix.gettimeofday () in
        for _ = 1 to polls_per_point do
          for _ = 1 to new_txs do
            let d =
              Bridge.deposit_erc20 bridge ~user
                ~src_token:m.Bridge.m_src_token ~amount:(U256.of_int 7)
                ~beneficiary:user
            in
            ignore (Bridge.complete_deposit bridge ~deposit:d)
          done;
          let sb, tb = cur () in
          ignore (Monitor.poll mon ~source_block:sb ~target_block:tb)
        done;
        let per_poll_ms =
          1000.0 *. (Unix.gettimeofday () -. t0) /. float_of_int polls_per_point
        in
        (new_txs, per_poll_ms))
      tx_counts
  in
  let inc = run_mode ~incremental:true in
  let scratch = run_mode ~incremental:false in
  Printf.printf "%18s %16s %16s %9s\n" "new txs per poll" "incremental"
    "from-scratch" "speedup";
  let results =
    List.map2
      (fun (k, inc_ms) (_, scr_ms) ->
        let speedup = scr_ms /. Float.max 1e-9 inc_ms in
        Printf.printf "%18d %13.2f ms %13.2f ms %8.1fx\n" k inc_ms scr_ms
          speedup;
        Json.Obj
          [
            ("new_txs_per_poll", Json.Int k);
            ("incremental_ms", Json.Float inc_ms);
            ("from_scratch_ms", Json.Float scr_ms);
            ("speedup", Json.Float speedup);
          ])
      inc scratch
  in
  let json =
    Json.Obj
      [
        ("benchmark", Json.String "monitor_steady_state");
        ("bridge", Json.String "nomad");
        ("scale", Json.Float scale);
        ("seed", Json.Int seed);
        ("polls_per_point", Json.Int polls_per_point);
        ("results", Json.List results);
      ]
  in
  if not smoke then Json.write_file ~path:"BENCH_monitor.json" json;
  Printf.printf
    "(per-poll wall time including decode + rule evaluation + dissection,\n\
     averaged over %d polls%s)\n"
    polls_per_point
    (if smoke then "" else "; written to BENCH_monitor.json")

let () =
  if Array.exists (( = ) "monitor_steady_state") Sys.argv then begin
    Printf.printf "XChainWatcher monitor bench (scale %.3f, seed %d)\n" scale
      seed;
    monitor_steady_state ();
    exit 0
  end

(* ------------------------------------------------------------------ *)
(* faults: extraction cost and integrity under a realistic fault plan.
   Re-decodes the Nomad-scale chains through the resilient client
   against Ronin-profile nodes, fault-free vs Fault.moderate, then
   measures how many extra polls a faulty monitor needs to catch up.
   Runnable standalone via [dune exec bench/main.exe faults]; emits
   BENCH_faults.json plus a one-line BENCH_FAULTS summary. *)

let bench_faults () =
  let module Monitor = Xcw_core.Monitor in
  let module Facts = Xcw_core.Facts in
  let module Json = Xcw_util.Json in
  section
    "Fault injection: Nomad-scale extraction under a moderate fault plan";
  let b = Xcw_workload.Nomad.build ~seed:(seed + 55) ~scale () in
  let bridge = b.Scenario.bridge in
  let src = bridge.Bridge.source.Bridge.chain in
  let dst = bridge.Bridge.target.Bridge.chain in
  let profile = Latency.ronin_profile in
  let decode ~fault rpc_seed =
    let mk chain s =
      Client.create ~seed:s (Rpc.create ~profile ~seed:s ?fault chain)
    in
    let src_client = mk src rpc_seed in
    let dst_client = mk dst (rpc_seed + 1) in
    let rds =
      Decoder.decode_chain Decoder.nomad_plugin b.Scenario.config
        ~role:Decoder.Source src_client src
      @ Decoder.decode_chain Decoder.nomad_plugin b.Scenario.config
          ~role:Decoder.Target dst_client dst
    in
    (rds, src_client, dst_client)
  in
  let non_gap_facts rds =
    List.concat_map
      (fun rd ->
        List.filter
          (function Facts.Trace_gap _ -> false | _ -> true)
          rd.Decoder.rd_facts)
      rds
  in
  let clean_rds, csrc, cdst = decode ~fault:None 301 in
  let fault_rds, fsrc, fdst = decode ~fault:(Some Fault.moderate) 301 in
  let clean_seconds = Client.total_latency csrc +. Client.total_latency cdst in
  let fault_seconds = Client.total_latency fsrc +. Client.total_latency fdst in
  let overhead_ratio = fault_seconds /. Float.max 1e-9 clean_seconds in
  let facts_identical = non_gap_facts clean_rds = non_gap_facts fault_rds in
  let trace_gaps =
    List.length (List.filter (fun rd -> rd.Decoder.rd_trace_gap) fault_rds)
  in
  let stats c = Client.stats c in
  let retries = (stats fsrc).Client.s_retries + (stats fdst).Client.s_retries in
  let give_ups =
    (stats fsrc).Client.s_give_ups + (stats fdst).Client.s_give_ups
  in
  let backoff =
    (stats fsrc).Client.s_backoff_seconds
    +. (stats fdst).Client.s_backoff_seconds
  in
  Printf.printf "receipts decoded twice:      %d\n" (List.length clean_rds);
  Printf.printf "simulated RPC seconds clean: %.1f\n" clean_seconds;
  Printf.printf "simulated RPC seconds fault: %.1f  (%.2fx, %.1f s backoff)\n"
    fault_seconds overhead_ratio backoff;
  Printf.printf "retries %d, give-ups %d, trace gaps %d, facts identical: %b\n"
    retries give_ups trace_gaps facts_identical;
  (* Monitor catch-up: polls needed to reach a synced report at the
     final cursors when every request can fail. *)
  let input =
    Detector.default_input ~label:"nomad-faults" ~plugin:Decoder.nomad_plugin
      ~config:b.Scenario.config ~source_chain:src ~target_chain:dst
      ~pricing:b.Scenario.pricing
  in
  let mon =
    Monitor.create
      {
        input with
        Detector.i_source_fault = Some Fault.moderate;
        i_target_fault = Some Fault.moderate;
        i_rpc_seed = seed + 303;
        i_source_profile = profile;
        i_target_profile = profile;
      }
  in
  let sb = List.length (Chain.all_blocks src) in
  let tb = List.length (Chain.all_blocks dst) in
  let max_polls = 60 in
  let polls = ref 1 in
  ignore (Monitor.poll mon ~source_block:sb ~target_block:tb);
  while
    (not (Monitor.health mon).Monitor.h_synced) && !polls < max_polls
  do
    incr polls;
    ignore (Monitor.poll mon ~source_block:sb ~target_block:tb)
  done;
  let h = Monitor.health mon in
  Printf.printf
    "monitor synced after %d poll(s) (trace gaps %d, give-ups %d, reorgs %d)\n"
    !polls h.Monitor.h_trace_gaps h.Monitor.h_give_ups h.Monitor.h_reorgs;
  let json =
    Json.Obj
      [
        ("benchmark", Json.String "faults");
        ("bridge", Json.String "nomad");
        ("scale", Json.Float scale);
        ("seed", Json.Int seed);
        ("profile", Json.String "ronin");
        ("plan", Json.String "moderate");
        ("receipts", Json.Int (List.length clean_rds));
        ("clean_rpc_seconds", Json.Float clean_seconds);
        ("faulty_rpc_seconds", Json.Float fault_seconds);
        ("overhead_ratio", Json.Float overhead_ratio);
        ("backoff_seconds", Json.Float backoff);
        ("retries", Json.Int retries);
        ("give_ups", Json.Int give_ups);
        ("trace_gaps", Json.Int trace_gaps);
        ("facts_identical", Json.Bool facts_identical);
        ("catchup_polls", Json.Int !polls);
        ("monitor_synced", Json.Bool h.Monitor.h_synced);
      ]
  in
  if not smoke then Json.write_file ~path:"BENCH_faults.json" json;
  Printf.printf
    "BENCH_FAULTS overhead_ratio=%.3f retries=%d give_ups=%d range_splits=%d \
     trace_gaps=%d facts_identical=%b catchup_polls=%d synced=%b\n"
    overhead_ratio retries give_ups
    ((stats fsrc).Client.s_range_splits + (stats fdst).Client.s_range_splits)
    trace_gaps facts_identical !polls h.Monitor.h_synced;
  if not smoke then Printf.printf "(written to BENCH_faults.json)\n"

let () =
  if Array.exists (( = ) "faults") Sys.argv then begin
    Printf.printf "XChainWatcher fault bench (scale %.3f, seed %d)\n" scale
      seed;
    bench_faults ();
    exit 0
  end

(* ------------------------------------------------------------------ *)
(* quorum: cost of Byzantine-tolerant quorum reads.  Re-decodes the
   Nomad-scale chains twice — once through a plain single-endpoint
   client, once through a 3-endpoint / 2-quorum pool with one lying
   (Fault.byzantine) endpoint — and reports the simulated-latency
   overhead (fan-out is parallel, so the target is well under 3x:
   < 2.5x at n=3), whether the facts stayed identical, and whether the
   pool identified the liar.  Runnable standalone via
   [dune exec bench/main.exe quorum]; emits BENCH_quorum.json plus a
   one-line BENCH_QUORUM summary. *)

let bench_quorum () =
  let module Pool = Xcw_rpc.Pool in
  let module Json = Xcw_util.Json in
  section
    "Quorum reads: Nomad-scale extraction, 1 endpoint vs a 3-endpoint pool \
     with one liar";
  let b = Xcw_workload.Nomad.build ~seed:(seed + 77) ~scale () in
  let bridge = b.Scenario.bridge in
  let src = bridge.Bridge.source.Bridge.chain in
  let dst = bridge.Bridge.target.Bridge.chain in
  let profile = Latency.nomad_profile in
  let decode ~endpoints ~endpoint_faults rpc_seed =
    let mk chain s =
      Detector.build_client ~profile ~seed:s ~policy:Client.default_policy
        ~endpoints ~quorum:2 ~fault:None ~endpoint_faults chain
    in
    let src_client = mk src rpc_seed in
    let dst_client = mk dst (rpc_seed + 1) in
    let rds =
      Decoder.decode_chain Decoder.nomad_plugin b.Scenario.config
        ~role:Decoder.Source src_client src
      @ Decoder.decode_chain Decoder.nomad_plugin b.Scenario.config
          ~role:Decoder.Target dst_client dst
    in
    (rds, src_client, dst_client)
  in
  let clean_rds, csrc, cdst = decode ~endpoints:1 ~endpoint_faults:[] 401 in
  let pool_rds, psrc, pdst =
    decode ~endpoints:3
      ~endpoint_faults:[ None; None; Some Fault.byzantine ]
      401
  in
  let clean_seconds = Client.total_latency csrc +. Client.total_latency cdst in
  let pool_seconds = Client.total_latency psrc +. Client.total_latency pdst in
  let overhead_ratio = pool_seconds /. Float.max 1e-9 clean_seconds in
  let facts rds = List.concat_map (fun rd -> rd.Decoder.rd_facts) rds in
  let facts_identical = facts clean_rds = facts pool_rds in
  let pool_stats c =
    match Client.pool c with
    | Some p -> Some (Pool.health p)
    | None -> None
  in
  let healths = List.filter_map pool_stats [ psrc; pdst ] in
  let liar_identified =
    List.for_all (fun h -> h.Pool.ph_suspects = [ 2 ]) healths
    && List.length healths = 2
  in
  let disagreements =
    List.fold_left (fun acc h -> acc + h.Pool.ph_disagreements) 0 healths
  in
  let refusals =
    List.fold_left (fun acc h -> acc + h.Pool.ph_refusals) 0 healths
  in
  Printf.printf "receipts decoded twice:        %d\n" (List.length clean_rds);
  Printf.printf "simulated RPC seconds single:  %.1f\n" clean_seconds;
  Printf.printf "simulated RPC seconds quorum:  %.1f  (%.2fx, target < 2.5x)\n"
    pool_seconds overhead_ratio;
  Printf.printf
    "disagreements %d, refusals %d, liar identified: %b, facts identical: %b\n"
    disagreements refusals liar_identified facts_identical;
  let json =
    Json.Obj
      [
        ("benchmark", Json.String "quorum");
        ("bridge", Json.String "nomad");
        ("scale", Json.Float scale);
        ("seed", Json.Int seed);
        ("profile", Json.String "nomad");
        ("endpoints", Json.Int 3);
        ("quorum", Json.Int 2);
        ("byzantine_endpoint", Json.Int 2);
        ("receipts", Json.Int (List.length clean_rds));
        ("single_rpc_seconds", Json.Float clean_seconds);
        ("quorum_rpc_seconds", Json.Float pool_seconds);
        ("overhead_ratio", Json.Float overhead_ratio);
        ("overhead_target", Json.Float 2.5);
        ("disagreements", Json.Int disagreements);
        ("refusals", Json.Int refusals);
        ("liar_identified", Json.Bool liar_identified);
        ("facts_identical", Json.Bool facts_identical);
      ]
  in
  if not smoke then Json.write_file ~path:"BENCH_quorum.json" json;
  Printf.printf
    "BENCH_QUORUM overhead_ratio=%.3f target_lt=2.5 disagreements=%d \
     refusals=%d liar_identified=%b facts_identical=%b\n"
    overhead_ratio disagreements refusals liar_identified facts_identical;
  if not smoke then Printf.printf "(written to BENCH_quorum.json)\n"

let () =
  if Array.exists (( = ) "quorum") Sys.argv then begin
    Printf.printf "XChainWatcher quorum bench (scale %.3f, seed %d)\n" scale
      seed;
    bench_quorum ();
    exit 0
  end

(* ------------------------------------------------------------------ *)
(* attacks: per-class build + detection latency over the attack packs
   (2023 hack corpus, DESIGN.md §12), with the exactness verdict — the
   dedicated rule must flag exactly the injected transactions.
   Runnable standalone via [dune exec bench/main.exe attacks]; emits
   BENCH_attacks.json plus a one-line BENCH_ATTACKS summary. *)

let bench_attacks () =
  let module Json = Xcw_util.Json in
  let module Attacks = Xcw_workload.Attacks in
  let module Generic = Xcw_workload.Generic in
  section "Attack packs: per-class build + detection latency (ms)";
  let reps = if smoke then 1 else 5 in
  let rows =
    List.map
      (fun cls ->
        let slug = Attacks.class_slug cls in
        let spec = Attacks.default_spec cls in
        let spec =
          {
            spec with
            Attacks.a_base = { spec.Attacks.a_base with Generic.g_seed = seed };
          }
        in
        let build_ms = ref [] and detect_ms = ref [] in
        let hits = ref 0 and exact = ref true in
        (* A fresh scenario per repetition: the build cost is part of
           the measurement, and detection then sees cold chains. *)
        for _ = 1 to reps do
          let t0 = Unix.gettimeofday () in
          let inj = Attacks.build spec in
          let t1 = Unix.gettimeofday () in
          let b = inj.Attacks.inj_built in
          let input =
            Detector.default_input ~label:("attack-" ^ slug)
              ~plugin:Decoder.ronin_plugin ~config:b.Scenario.config
              ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
              ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
              ~pricing:b.Scenario.pricing
          in
          let result = Detector.run input in
          let t2 = Unix.gettimeofday () in
          build_ms := (1000.0 *. (t1 -. t0)) :: !build_ms;
          detect_ms := (1000.0 *. (t2 -. t1)) :: !detect_ms;
          let flagged =
            match Report.attack_row result.Detector.report cls with
            | Some ar ->
                List.sort compare
                  (List.map (fun h -> h.Report.ah_tx_hash) ar.Report.ar_hits)
            | None -> []
          in
          hits := List.length flagged;
          exact := !exact && flagged = inj.Attacks.inj_attack_txs
        done;
        let b_ms = Stats.median !build_ms and d_ms = Stats.median !detect_ms in
        Printf.printf "%-22s build %7.1f ms  detect %7.1f ms  hits %d  exact %b\n"
          slug b_ms d_ms !hits !exact;
        (slug, b_ms, d_ms, !hits, !exact))
      Report.attack_classes
  in
  let all_exact = List.for_all (fun (_, _, _, _, e) -> e) rows in
  let json =
    Json.Obj
      [
        ("benchmark", Json.String "attacks");
        ("seed", Json.Int seed);
        ("reps", Json.Int reps);
        ("all_exact", Json.Bool all_exact);
        ( "classes",
          Json.List
            (List.map
               (fun (slug, b_ms, d_ms, hits, exact) ->
                 Json.Obj
                   [
                     ("class", Json.String slug);
                     ("build_ms", Json.Float b_ms);
                     ("detect_ms", Json.Float d_ms);
                     ("hits", Json.Int hits);
                     ("exact", Json.Bool exact);
                   ])
               rows) );
      ]
  in
  if not smoke then Json.write_file ~path:"BENCH_attacks.json" json;
  Printf.printf "BENCH_ATTACKS all_exact=%b %s\n" all_exact
    (String.concat " "
       (List.map
          (fun (slug, _, d_ms, hits, _) ->
            Printf.sprintf "%s=%.1fms/%d" slug d_ms hits)
          rows));
  if not smoke then Printf.printf "(written to BENCH_attacks.json)\n"

let () =
  if Array.exists (( = ) "attacks") Sys.argv then begin
    Printf.printf "XChainWatcher attack-pack bench (seed %d)\n" seed;
    bench_attacks ();
    exit 0
  end

(* ------------------------------------------------------------------ *)
(* accounting: build + detection latency over the exit-bridge lanes
   (pessimistic accounting stratum, DESIGN.md §15), with the exactness
   verdict — each class's accounting rule must flag exactly the
   injected transactions, the benign lane must derive zero
   accounting-violation tuples, and the derived relations must be
   identical between --jobs 1 and --jobs 4.  Runnable standalone via
   [dune exec bench/main.exe accounting]; emits BENCH_accounting.json
   plus a one-line BENCH_ACCOUNTING summary. *)

let bench_accounting () =
  let module Json = Xcw_util.Json in
  let module Engine = Xcw_datalog.Engine in
  let module Exit_bridge = Xcw_workload.Exit_bridge in
  section
    "Exit-bridge accounting: per-class build + detection latency (ms)";
  let reps = if smoke then 1 else 5 in
  let acc_relations =
    [
      Rules.r_acc_outflow_violation;
      Rules.r_acc_outflow_tx;
      Rules.r_acc_forged_exit_proof;
      Rules.r_acc_stale_root_claim;
      Rules.r_acc_root_divergence;
      Rules.r_acc_slashing_evasion;
    ]
  in
  let input_of (b : Scenario.built) label =
    Detector.default_input ~label ~plugin:Decoder.ronin_plugin
      ~config:b.Scenario.config
      ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
      ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
      ~pricing:b.Scenario.pricing
  in
  (* Sorted accounting-relation contents — the derived-identical
     cross-check between the sequential and 4-domain evaluations. *)
  let acc_signature result =
    List.map
      (fun pred ->
        (pred, List.sort compare (Engine.facts result.Detector.db pred)))
      acc_relations
  in
  (* Benign lane first: the soundness row. *)
  let benign_b = Exit_bridge.build_benign Exit_bridge.default_base in
  let benign = Detector.run (input_of benign_b "exit") in
  let benign_tuples =
    List.fold_left
      (fun acc rel -> acc + Engine.fact_count benign.Detector.db rel)
      0 acc_relations
  in
  Printf.printf "%-22s accounting tuples %d (target 0)\n" "benign"
    benign_tuples;
  let rows =
    List.map
      (fun cls ->
        let slug = Report.acc_class_slug cls in
        let spec = Exit_bridge.default_spec cls in
        let build_ms = ref [] and detect_ms = ref [] in
        let hits = ref 0 and exact = ref true and jobs_identical = ref true in
        for _ = 1 to reps do
          let t0 = Unix.gettimeofday () in
          let inj = Exit_bridge.build spec in
          let t1 = Unix.gettimeofday () in
          let input = input_of inj.Exit_bridge.inj_built ("exit-" ^ slug) in
          let result = Detector.run input in
          let t2 = Unix.gettimeofday () in
          build_ms := (1000.0 *. (t1 -. t0)) :: !build_ms;
          detect_ms := (1000.0 *. (t2 -. t1)) :: !detect_ms;
          let flagged =
            match Report.acc_row result.Detector.report cls with
            | Some xr ->
                List.sort compare
                  (List.map (fun h -> h.Report.ah_tx_hash) xr.Report.xr_hits)
            | None -> []
          in
          hits := List.length flagged;
          exact := !exact && flagged = inj.Exit_bridge.inj_attack_txs;
          let par = Detector.run { input with Detector.i_ndomains = 4 } in
          jobs_identical :=
            !jobs_identical && acc_signature par = acc_signature result
        done;
        let b_ms = Stats.median !build_ms and d_ms = Stats.median !detect_ms in
        Printf.printf
          "%-22s build %7.1f ms  detect %7.1f ms  hits %d  exact %b  \
           jobs-identical %b\n"
          slug b_ms d_ms !hits !exact !jobs_identical;
        (slug, b_ms, d_ms, !hits, !exact, !jobs_identical))
      Report.acc_classes
  in
  let all_exact = List.for_all (fun (_, _, _, _, e, _) -> e) rows in
  let all_identical = List.for_all (fun (_, _, _, _, _, i) -> i) rows in
  let json =
    Json.Obj
      [
        ("benchmark", Json.String "accounting");
        ("seed", Json.Int seed);
        ("reps", Json.Int reps);
        ("benign_accounting_tuples", Json.Int benign_tuples);
        ("all_exact", Json.Bool all_exact);
        ("jobs_identical", Json.Bool all_identical);
        ( "classes",
          Json.List
            (List.map
               (fun (slug, b_ms, d_ms, hits, exact, identical) ->
                 Json.Obj
                   [
                     ("class", Json.String slug);
                     ("build_ms", Json.Float b_ms);
                     ("detect_ms", Json.Float d_ms);
                     ("hits", Json.Int hits);
                     ("exact", Json.Bool exact);
                     ("jobs_identical", Json.Bool identical);
                   ])
               rows) );
      ]
  in
  if not smoke then Json.write_file ~path:"BENCH_accounting.json" json;
  Printf.printf
    "BENCH_ACCOUNTING benign_tuples=%d all_exact=%b jobs_identical=%b %s\n"
    benign_tuples all_exact all_identical
    (String.concat " "
       (List.map
          (fun (slug, _, d_ms, hits, _, _) ->
            Printf.sprintf "%s=%.1fms/%d" slug d_ms hits)
          rows));
  if not smoke then Printf.printf "(written to BENCH_accounting.json)\n"

let () =
  if Array.exists (( = ) "accounting") Sys.argv then begin
    Printf.printf "XChainWatcher accounting bench (seed %d)\n" seed;
    bench_accounting ();
    exit 0
  end

(* ------------------------------------------------------------------ *)
(* obs: overhead of the Xcw_obs instrumentation.  Runs the identical
   Nomad-scale monitor workload twice per repetition — once recording
   into a live registry and tracer, once into the inert Metrics.noop /
   Span.noop — and compares the minimum wall times.  Everything on the
   hot path (RPC meters, decoder counters, per-rule histograms, monitor
   gauges, spans) is exercised.  Runnable standalone via
   [dune exec bench/main.exe obs]; emits BENCH_obs.json plus a one-line
   BENCH_OBS summary. *)

let bench_obs () =
  let module Monitor = Xcw_core.Monitor in
  let module Erc20 = Xcw_chain.Erc20 in
  let module U256 = Xcw_uint256.Uint256 in
  let module Json = Xcw_util.Json in
  let module Metrics = Xcw_obs.Metrics in
  let module Span = Xcw_obs.Span in
  section "Observability overhead: live registry vs inert instruments";
  let reps = if smoke then 1 else 4 in
  let polls = if smoke then 2 else 8 in
  let txs_per_poll = if smoke then 1 else 5 in
  (* One full monitor pass: catch-up over the whole Nomad history, then
     [polls] steady-state polls of [txs_per_poll] fresh round trips.
     Scenario construction is excluded from the timing — only the
     instrumented pipeline (decode, rules, monitor) is measured.  The
     RNG streams are identical on both sides, so the passes do exactly
     the same work modulo instrumentation. *)
  let run_pass ~metrics ~tracer =
    let saved_reg = Metrics.default () and saved_tracer = Span.default () in
    (* The decoder records through the default registry; point it at the
       same place as the monitor so live/nil toggles the whole pipeline. *)
    Metrics.set_default metrics;
    Span.set_default tracer;
    Fun.protect
      ~finally:(fun () ->
        Metrics.set_default saved_reg;
        Span.set_default saved_tracer)
      (fun () ->
        let b = Xcw_workload.Nomad.build ~seed:(seed + 88) ~scale () in
        let bridge = b.Scenario.bridge in
        let src = bridge.Bridge.source.Bridge.chain in
        let dst = bridge.Bridge.target.Bridge.chain in
        let input =
          Detector.default_input ~label:"nomad-obs"
            ~plugin:Decoder.nomad_plugin ~config:b.Scenario.config
            ~source_chain:src ~target_chain:dst ~pricing:b.Scenario.pricing
        in
        let mon = Monitor.create ~metrics input in
        let m = List.hd bridge.Bridge.mappings in
        let user = Address.of_seed "obs-user" in
        Chain.fund src user (U256.of_tokens ~decimals:18 10);
        Chain.fund dst user (U256.of_tokens ~decimals:18 10);
        ignore
          (Chain.submit_tx src ~from_:bridge.Bridge.source.Bridge.operator
             ~to_:m.Bridge.m_src_token
             ~input:
               (Erc20.mint_calldata ~to_:user ~amount:(U256.of_int 10_000_000))
             ());
        let cur () =
          ( List.length (Chain.all_blocks src),
            List.length (Chain.all_blocks dst) )
        in
        let t0 = Unix.gettimeofday () in
        let sb, tb = cur () in
        ignore (Monitor.poll mon ~source_block:sb ~target_block:tb);
        for _ = 1 to polls do
          for _ = 1 to txs_per_poll do
            let d =
              Bridge.deposit_erc20 bridge ~user ~src_token:m.Bridge.m_src_token
                ~amount:(U256.of_int 7) ~beneficiary:user
            in
            ignore (Bridge.complete_deposit bridge ~deposit:d)
          done;
          let sb, tb = cur () in
          ignore (Monitor.poll mon ~source_block:sb ~target_block:tb)
        done;
        (1000.0 *. (Unix.gettimeofday () -. t0), mon))
  in
  let live_ms = ref infinity and nil_ms = ref infinity in
  let live_metrics = ref 0 and live_spans = ref 0 in
  let run_live () =
    let reg = Metrics.create () in
    let tracer = Span.create () in
    let ms, mon = run_pass ~metrics:reg ~tracer in
    live_ms := Float.min !live_ms ms;
    live_metrics := List.length (Monitor.metrics_snapshot mon);
    live_spans := List.length (Span.records tracer) + Span.dropped tracer;
    ms
  in
  let run_nil () =
    let ms, _ = run_pass ~metrics:Metrics.noop ~tracer:Span.noop in
    nil_ms := Float.min !nil_ms ms;
    ms
  in
  (* Machine speed drifts between passes (shared hosts, GC state), so a
     single live/nil ratio is unreliable.  Each repetition times the two
     sides back to back — alternating which goes first to cancel
     warm-up bias — and the reported overhead is the median of the
     per-pair ratios. *)
  let ratios =
    List.init reps (fun rep ->
        if rep mod 2 = 0 then
          let l = run_live () in
          let n = run_nil () in
          l /. Float.max 1e-9 n
        else
          let n = run_nil () in
          let l = run_live () in
          l /. Float.max 1e-9 n)
  in
  let overhead_pct = 100.0 *. (Stats.median ratios -. 1.0) in
  Printf.printf
    "monitor pass (catch-up + %d polls x %d cctx): live %.1f ms, nil %.1f ms\n"
    polls txs_per_poll !live_ms !nil_ms;
  Printf.printf "%d metric series, %d spans recorded on the live side\n"
    !live_metrics !live_spans;
  let json =
    Json.Obj
      [
        ("benchmark", Json.String "obs");
        ("bridge", Json.String "nomad");
        ("scale", Json.Float scale);
        ("seed", Json.Int seed);
        ("reps", Json.Int reps);
        ("polls", Json.Int polls);
        ("txs_per_poll", Json.Int txs_per_poll);
        ("live_ms", Json.Float !live_ms);
        ("nil_ms", Json.Float !nil_ms);
        ("overhead_pct", Json.Float overhead_pct);
        ("metric_series", Json.Int !live_metrics);
        ("spans", Json.Int !live_spans);
      ]
  in
  if not smoke then Json.write_file ~path:"BENCH_obs.json" json;
  Printf.printf
    "BENCH_OBS live_ms=%.1f nil_ms=%.1f overhead_pct=%.2f metric_series=%d \
     spans=%d\n"
    !live_ms !nil_ms overhead_pct !live_metrics !live_spans;
  if not smoke then Printf.printf "(written to BENCH_obs.json)\n"

let () =
  if Array.exists (( = ) "obs") Sys.argv then begin
    Printf.printf "XChainWatcher observability bench (scale %.3f, seed %d)\n"
      scale seed;
    bench_obs ();
    exit 0
  end

(* ------------------------------------------------------------------ *)
(* parallel: domain-parallel rule evaluation vs sequential.  Decodes
   each bridge once, then evaluates the cross-chain rules over the
   identical fact base at 1, 2 and 4 worker domains (fact loading is
   outside the timed region — rule evaluation is the subsystem the
   partitioning targets) and checks the derived relations stayed
   byte-identical.

   Honesty on constrained hosts: this container may expose fewer cores
   than worker domains ([host_cores] is recorded in the JSON), in which
   case the *measured* parallel wall time cannot beat sequential — the
   domains time-share one core and only the overhead shows.  The pool
   therefore times every task it executes and {!Xcw_par.Pool.stats}
   reports both the summed busy time and the makespan a greedy
   least-loaded schedule of those same tasks would reach on [ndomains]
   unconstrained cores.  The *modeled* wall time substitutes that
   makespan for the serialized task time
   ([measured - busy + modeled_makespan]) and is the figure the
   speedup targets apply to; on a host with >= 4 real cores the
   measured and modeled columns converge.  Runnable standalone via
   [dune exec bench/main.exe parallel]; emits BENCH_parallel.json plus
   a one-line BENCH_PARALLEL summary. *)

(* Rule evaluation at the shared 0.05 default finishes in tens of
   milliseconds — too little work per stratum for the per-chunk
   bookkeeping to amortize, which understates the speedup a real
   workload sees.  When XCW_SCALE is unset this mode floors the scale
   at 0.2; an explicit XCW_SCALE (and smoke mode) still wins. *)
let par_scale =
  if smoke || Sys.getenv_opt "XCW_SCALE" <> None then scale
  else Float.max scale 0.2

let bench_parallel () =
  let scale = par_scale in
  (* The detector applies this before evaluating; matching it here
     keeps the timed region representative and cuts minor-GC noise,
     which otherwise dominates run-to-run variance on this host. *)
  Engine.recommended_gc_setup ();
  (* On top of that, keep the {e major} collector out of the timed
     region: a pass at this scale fits comfortably in RAM, and a major
     slice (20-40ms here) landing inside one small measured task would
     serialize into the modeled makespan — on a real k-core run each
     domain pays its own slices in parallel, which a 1-core host cannot
     reproduce.  The [Gc.full_major] before each pass settles the debt
     between measurements, so both the sequential and the partitioned
     pass time pure evaluation work. *)
  Gc.set
    {
      (Gc.get ()) with
      Gc.space_overhead = 5000;
      minor_heap_size = 32 * 1024 * 1024;
    };
  let module Facts = Xcw_core.Facts in
  let module Json = Xcw_util.Json in
  let module Pool = Xcw_par.Pool in
  section
    "Parallel evaluation: cross-chain rules at 1 / 2 / 4 worker domains";
  let reps = if smoke then 1 else 5 in
  let domain_counts = [ 1; 2; 4 ] in
  let host_cores = Domain.recommended_domain_count () in
  (* Decode once per bridge (the sequential reference path) so every
     measurement evaluates the identical fact base; the timed region is
     rule evaluation only — the subsystem the partitioning targets. *)
  let decode_facts (b : Scenario.built) plugin =
    let bridge = b.Scenario.bridge in
    let src = bridge.Bridge.source.Bridge.chain in
    let dst = bridge.Bridge.target.Bridge.chain in
    let mk chain s =
      Client.create ~seed:s
        (Rpc.create ~profile:Latency.colocated_profile ~seed:s chain)
    in
    let rds =
      Decoder.decode_chain plugin b.Scenario.config ~role:Decoder.Source
        (mk src 501) src
      @ Decoder.decode_chain plugin b.Scenario.config ~role:Decoder.Target
          (mk dst 502) dst
    in
    Config.to_facts b.Scenario.config
    @ List.concat_map (fun rd -> rd.Decoder.rd_facts) rds
  in
  (* One evaluation over a fresh database (fact loading untimed);
     [`Seq] is the plain sequential engine, [`Domains k] evaluates on
     [k] real spawned domains, [`Inline k] evaluates the identical
     [k]-way partitioning on a {!Pool.sequential} modeling pool — tasks
     run one at a time with the core to themselves, giving the clean
     per-task times the [k]-core makespan model needs.  Returns the
     wall time, the pool's per-task accounting, and the
     derived-relation signature for the equality check. *)
  let one_pass facts ~mode =
    let module F = Xcw_core.Facts in
    let db = Engine.create_db () in
    ignore (F.load_all db facts);
    let pool =
      match mode with
      | `Seq -> None
      | `Domains k -> Some (Pool.get ~ndomains:k)
      | `Inline k -> Some (Pool.sequential ~ndomains:k)
    in
    Option.iter Pool.reset_stats pool;
    (* Fact loading just left a heap of short-lived garbage; collect it
       now so the timed region doesn't pay another pass's GC debt. *)
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let stats =
      match pool with
      | None -> Engine.run db Rules.program
      | Some pool -> Engine.run ~pool db Rules.program
    in
    let wall = Unix.gettimeofday () -. t0 in
    let pstats =
      match pool with
      | Some p -> Pool.stats p
      | None -> { Pool.st_batches = 0; st_tasks = 0; st_busy = 0.; st_modeled_wall = 0. }
    in
    let signature =
      List.map
        (fun pred ->
          (pred, List.sort compare (Engine.facts db pred)))
        (Engine.derived_predicates db)
    in
    (wall, pstats, stats.Engine.tuples_derived, signature)
  in
  let bench_bridge name (b : Scenario.built) plugin =
    subsection (Printf.sprintf "%s bridge (scale %.3f)" name scale);
    let facts = decode_facts b plugin in
    let one_pass = one_pass facts in
    (* Best-of-[reps] per mode, by the figure each mode is used for:
       plain wall for [`Seq] and [`Domains], the modeled wall
       ([wall - busy + makespan]) for [`Inline] — taking the min of the
       reported quantity itself is what actually rejects a rep whose
       noise landed inside the task timings rather than around them. *)
    let keyed mode ((wall, (p : Pool.stats), _, _) as r) =
      match mode with
      | `Inline _ -> (wall -. p.Pool.st_busy +. p.Pool.st_modeled_wall, r)
      | `Seq | `Domains _ -> (wall, r)
    in
    let measure mode =
      let best = ref None in
      for _ = 1 to reps do
        let key, r = keyed mode (one_pass ~mode) in
        match !best with
        | Some (k, _) when k <= key -> ()
        | _ -> best := Some (key, r)
      done;
      snd (Option.get !best)
    in
    let seq_wall, _, seq_derived, seq_sig = measure `Seq in
    Printf.printf "%8s %12s %12s %12s %12s %10s %10s\n" "domains" "seq s"
      "domains s" "busy s" "modeled s" "speedup" "identical";
    Printf.printf "%8d %12.3f %12s %12s %12.3f %9.2fx %10b\n" 1 seq_wall "-"
      "-" seq_wall 1.0 true;
    let rows =
      List.map
        (fun k ->
          (* Real spawned domains: the cross-domain determinism check
             and the measured (time-shared on this host) wall. *)
          let dom_wall, _, dom_derived, dom_sig = measure (`Domains k) in
          (* Inline modeling pass: identical partitioning, clean
             per-task times, k-core makespan. *)
          let inl_wall, (p : Pool.stats), inl_derived, inl_sig =
            measure (`Inline k)
          in
          let modeled =
            Float.max 1e-9 (inl_wall -. p.Pool.st_busy +. p.Pool.st_modeled_wall)
          in
          let speedup = seq_wall /. modeled in
          let identical =
            dom_derived = seq_derived && dom_sig = seq_sig
            && inl_derived = seq_derived && inl_sig = seq_sig
          in
          Printf.printf "%8d %12s %12.3f %12.3f %12.3f %9.2fx %10b\n" k "-"
            dom_wall p.Pool.st_busy modeled speedup identical;
          ( k,
            Json.Obj
              [
                ("ndomains", Json.Int k);
                ("sequential_wall_s", Json.Float seq_wall);
                ("domains_wall_s", Json.Float dom_wall);
                ("inline_wall_s", Json.Float inl_wall);
                ("task_busy_s", Json.Float p.Pool.st_busy);
                ("modeled_makespan_s", Json.Float p.Pool.st_modeled_wall);
                ("modeled_wall_s", Json.Float modeled);
                ("parallel_tasks", Json.Int p.Pool.st_tasks);
                ("modeled_speedup", Json.Float speedup);
                ("relations_identical", Json.Bool identical);
              ],
            (speedup, identical) ))
        (List.filter (fun k -> k > 1) domain_counts)
    in
    Printf.printf
      "(modeled = inline partitioned wall - serialized task time + k-core\n\
      \ makespan of the same tasks; this host has %d core(s), so the real\n\
      \ spawned-domain wall time-shares one core and only checks that the\n\
      \ derived relations stay identical)\n"
      host_cores;
    rows
  in
  (* XCW_BENCH_BRIDGE=nomad|ronin restricts the run to one scenario —
     an iteration aid; the committed JSON always carries both. *)
  let only = Sys.getenv_opt "XCW_BENCH_BRIDGE" in
  let want name = match only with None -> true | Some o -> o = name in
  let ronin_rows =
    if want "ronin" then
      let ronin = Xcw_workload.Ronin.build ~seed:(seed + 61) ~scale () in
      bench_bridge "ronin" ronin Decoder.ronin_plugin
    else []
  in
  let nomad_rows =
    if want "nomad" then
      let nomad = Xcw_workload.Nomad.build ~seed:(seed + 62) ~scale () in
      bench_bridge "nomad" nomad Decoder.nomad_plugin
    else []
  in
  let pick rows k =
    match List.find_opt (fun (k', _, _) -> k' = k) rows with
    | Some (_, _, (speedup, identical)) -> (speedup, identical)
    | None -> (Float.nan, true)
  in
  let nomad4, nomad4_ok = pick nomad_rows 4 in
  let ronin4, ronin4_ok = pick ronin_rows 4 in
  let all_identical =
    List.for_all
      (fun (_, _, (_, ok)) -> ok)
      (ronin_rows @ nomad_rows)
  in
  let json =
    Json.Obj
      [
        ("benchmark", Json.String "parallel");
        ("scale", Json.Float scale);
        ("seed", Json.Int seed);
        ("reps", Json.Int reps);
        ("host_cores", Json.Int host_cores);
        ( "note",
          Json.String
            "modeled_speedup = sequential_wall_s / modeled_wall_s, where \
             modeled_wall_s re-times the identical k-way partitioning \
             inline (one task at a time, so per-task times are free of \
             time-sharing noise) and replaces the serialized task time \
             with the greedy least-loaded k-core makespan; \
             domains_wall_s is the real spawned-domain run, which on a \
             host with fewer cores than domains time-shares one core and \
             serves as the cross-domain determinism check" );
        ("speedup_target_at_4", Json.Float 1.8);
        ( "ronin",
          Json.List (List.map (fun (_, j, _) -> j) ronin_rows) );
        ( "nomad",
          Json.List (List.map (fun (_, j, _) -> j) nomad_rows) );
      ]
  in
  if (not smoke) && only = None then
    Json.write_file ~path:"BENCH_parallel.json" json;
  Printf.printf
    "BENCH_PARALLEL host_cores=%d nomad_speedup_at_4=%.2f \
     ronin_speedup_at_4=%.2f target_ge=1.8 relations_identical=%b\n"
    host_cores nomad4 ronin4
    (all_identical && nomad4_ok && ronin4_ok);
  if (not smoke) && only = None then
    Printf.printf "(written to BENCH_parallel.json)\n"

let () =
  if Array.exists (( = ) "parallel") Sys.argv then begin
    Printf.printf "XChainWatcher parallel bench (scale %.3f, seed %d)\n"
      par_scale seed;
    bench_parallel ();
    exit 0
  end

(* ------------------------------------------------------------------ *)
(* fleet: multi-bridge supervision at 4 / 8 / 16 lanes under clean,
   moderate and mixed (one majority-Byzantine quorum lane + one
   moderate-fault lane) plans.  Reports per-poll fleet latency vs
   bridge count — measured sequential wall plus the 4-domain modeled
   makespan per the parallel bench's honesty protocol — and asserts
   the isolation contract: every lane's alert stream is byte-identical
   to a solo single-lane supervisor run of the same spec.  Fleets of 6+
   lanes carry a mirrored attack lane (same scenario, different lane
   name) so the bus's cross-bridge collapse shows up in the collapsed
   column.  Runnable standalone via [dune exec bench/main.exe fleet];
   emits BENCH_fleet.json plus a one-line BENCH_FLEET summary. *)

(* The subject is lane-count scaling, not per-lane volume: 16 lanes
   replay 16 full scenarios, so the default trims the per-lane scale to
   keep the 3x3 matrix (plus solo differentials) in CI territory.  An
   explicit XCW_SCALE (and smoke mode) still wins. *)
let fleet_scale =
  if smoke || Sys.getenv_opt "XCW_SCALE" <> None then scale
  else Float.min scale 0.02

let bench_fleet () =
  let module Json = Xcw_util.Json in
  let module Pool = Xcw_par.Pool in
  let module Mon = Xcw_core.Monitor in
  let module Sup = Xcw_fleet.Supervisor in
  let module Bus = Xcw_fleet.Bus in
  let module Presets = Xcw_fleet.Presets in
  Engine.recommended_gc_setup ();
  let scale = fleet_scale in
  section
    "Fleet supervision: per-poll latency vs bridge count, lane isolation";
  (* XCW_FLEET_FULL=1 restores the full lane matrix under smoke gating
     (tiny scale, no BENCH_fleet.json) — the @stress alias's shape. *)
  let full = Sys.getenv_opt "XCW_FLEET_FULL" <> None in
  let counts = if smoke && not full then [ 2; 4 ] else [ 4; 8; 16 ] in
  let max_n = List.fold_left max 0 counts in
  let rounds_to_sync = if smoke && not full then 4 else 8 in
  let rounds = rounds_to_sync + 4 in
  let plans = [ `Clean; `Moderate; `Mixed ] in
  let plan_name = function
    | `Clean -> "clean"
    | `Moderate -> "moderate"
    | `Mixed -> "mixed"
  in
  let kinds =
    [|
      Presets.Generic_kind Xcw_workload.Generic.default_spec;
      Presets.Attack Report.Forged_proof;
      Presets.Nomad;
      Presets.Ronin;
    |]
  in
  (* Lane i of every fleet: kind round-robin, scenario seed and RPC
     seed derived from the index — so lane i is the same bridge at
     every fleet size and the solo-stream cache below carries across
     bridge counts. *)
  let fault_of plan i =
    match plan with
    | `Clean -> `None
    | `Moderate -> `Moderate
    | `Mixed -> if i = 1 then `Byzantine else if i = 2 then `Moderate else `None
  in
  let fault_tag = function
    | `None -> "none"
    | `Moderate -> "moderate"
    | `Byzantine -> "byzantine"
  in
  let tweak_of fault ~rpc_seed input =
    let input = { input with Detector.i_rpc_seed = rpc_seed } in
    match fault with
    | `None -> input
    | `Moderate ->
        {
          input with
          Detector.i_source_fault = Some Fault.moderate;
          i_target_fault = Some Fault.moderate;
        }
    | `Byzantine ->
        (* Two of three endpoints lie: below the f < k Byzantine
           threshold the quorum cannot protect the lane — lies that
           agree outvote the honest node — but the damage stays inside
           this lane's stream, which the differential still pins. *)
        let efs = [ None; Some Fault.byzantine; Some Fault.byzantine ] in
        {
          input with
          Detector.i_endpoints = 3;
          i_quorum = 2;
          i_source_endpoint_faults = efs;
          i_target_endpoint_faults = efs;
        }
  in
  (* (kind slug, scenario seed, fault tag) — lane identity for the solo
     cache; the mirrored dup lane shares its original's key. *)
  let lane_of plan i ~dup_of =
    let src = match dup_of with Some j -> j | None -> i in
    let kind = kinds.(src mod Array.length kinds) in
    let lane_seed = seed + (src * 17) in
    let rpc_seed = seed + (src * 101) in
    let fault = fault_of plan i in
    let name =
      Printf.sprintf "%s-%02d%s" (Presets.kind_slug kind) i
        (match dup_of with Some _ -> "-dup" | None -> "")
    in
    let key =
      Printf.sprintf "%s|%d|%s" (Presets.kind_slug kind) lane_seed
        (fault_tag fault)
    in
    ( key,
      Presets.lane ~scale ~seed:lane_seed ~rounds_to_sync ~name
        ~tweak:(tweak_of fault ~rpc_seed) kind )
  in
  let render_stream alerts =
    String.concat "\n"
      (List.map
         (fun (a : Mon.alert) ->
           let sb, tb = a.Mon.al_detected_at in
           Printf.sprintf "%s|(%d,%d)" (Bus.signature a) sb tb)
         alerts)
  in
  (* Solo reference streams, computed once per lane identity: a
     single-lane supervisor with the identical breaker / budget /
     window configuration. *)
  let solo_cache : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let solo_stream key lane =
    match Hashtbl.find_opt solo_cache key with
    | Some s -> s
    | None ->
        let sup = Sup.create [ lane ] in
        ignore (Sup.run sup ~rounds);
        let s = render_stream (Sup.lane_alerts sup 0) in
        Hashtbl.add solo_cache key s;
        s
  in
  let mismatches = ref [] in
  let one_config plan n =
    (* One lane list per config; the specs are immutable (prebuilt
       chains + cursor closures), so the sequential run, the modeled
       run and the solo references all reuse them. *)
    let lanes =
      List.init n (fun i ->
          if n >= 6 && i = n - 1 then lane_of plan i ~dup_of:(Some 5)
          else lane_of plan i ~dup_of:None)
    in
    let specs = List.map snd lanes in
    (* Measured pass: sequential in-process polling, per-round wall. *)
    let sup = Sup.create specs in
    let walls =
      List.init rounds (fun _ ->
          let t0 = Unix.gettimeofday () in
          ignore (Sup.poll sup);
          Unix.gettimeofday () -. t0)
    in
    (* Modeled pass: the identical fleet over a sequential modeling
       pool — clean per-lane task times, greedy 4-core makespan. *)
    let pool = Pool.sequential ~ndomains:4 in
    let sup_m = Sup.create ~pool specs in
    let modeled =
      List.init rounds (fun _ ->
          Pool.reset_stats pool;
          let t0 = Unix.gettimeofday () in
          ignore (Sup.poll sup_m);
          let wall = Unix.gettimeofday () -. t0 in
          let st = Pool.stats pool in
          Float.max 1e-9 (wall -. st.Pool.st_busy +. st.Pool.st_modeled_wall))
    in
    (* Isolation differential: every lane (faulted ones included — the
       supervisor shares nothing between lanes) against its solo run,
       in both the measured and the modeled fleet. *)
    List.iteri
      (fun i (key, lane) ->
        let want = solo_stream key lane in
        let check tag sup =
          let got = render_stream (Sup.lane_alerts sup i) in
          if got <> want then
            mismatches :=
              Printf.sprintf "%s/%d lane %d (%s, %s)" (plan_name plan) n i
                lane.Sup.l_name tag
              :: !mismatches
        in
        check "measured" sup;
        check "modeled" sup_m)
      lanes;
    let h = Sup.health sup in
    let total = List.fold_left ( +. ) 0. walls in
    let mean = total /. float_of_int rounds in
    let vmax = List.fold_left Float.max 0. walls in
    let m_total = List.fold_left ( +. ) 0. modeled in
    let m_mean = m_total /. float_of_int rounds in
    Printf.printf "%9s %8d %8d %11.3f %11.3f %11.3f %11.3f %8d %10d %7d\n"
      (plan_name plan) n rounds mean vmax m_mean
      (mean /. Float.max 1e-9 m_mean)
      h.Sup.fh_emitted h.Sup.fh_collapsed h.Sup.fh_parked;
    Json.Obj
      [
        ("plan", Json.String (plan_name plan));
        ("bridges", Json.Int n);
        ("rounds", Json.Int rounds);
        ("mean_poll_wall_s", Json.Float mean);
        ("max_poll_wall_s", Json.Float vmax);
        ("total_wall_s", Json.Float total);
        ("modeled4_mean_poll_s", Json.Float m_mean);
        ("modeled4_total_s", Json.Float m_total);
        ("modeled_speedup", Json.Float (mean /. Float.max 1e-9 m_mean));
        ("emitted", Json.Int h.Sup.fh_emitted);
        ("collapsed", Json.Int h.Sup.fh_collapsed);
        ("parked_final", Json.Int h.Sup.fh_parked);
        ("lanes_identical", Json.Bool (!mismatches = []));
      ]
  in
  Printf.printf "%9s %8s %8s %11s %11s %11s %11s %8s %10s %7s\n" "plan"
    "bridges" "rounds" "mean s" "max s" "model4 s" "speedup" "emitted"
    "collapsed" "parked";
  let rows =
    List.concat_map (fun plan -> List.map (one_config plan) counts) plans
  in
  let all_identical = !mismatches = [] in
  let json =
    Json.Obj
      [
        ("benchmark", Json.String "fleet");
        ("scale", Json.Float scale);
        ("seed", Json.Int seed);
        ("rounds_to_sync", Json.Int rounds_to_sync);
        ( "note",
          Json.String
            "mean_poll_wall_s is the sequential in-process fleet round; \
             modeled4_mean_poll_s re-times the identical round on a \
             sequential modeling pool and replaces the serialized lane \
             time with the greedy least-loaded 4-core makespan; \
             lanes_identical asserts every lane's alert stream is \
             byte-identical to a solo single-lane supervisor run" );
        ("rows", Json.List rows);
      ]
  in
  if not smoke then Json.write_file ~path:"BENCH_fleet.json" json;
  Printf.printf
    "BENCH_FLEET configs=%d max_bridges=%d lanes_identical=%b \
     solo_refs=%d\n"
    (List.length rows) max_n all_identical (Hashtbl.length solo_cache);
  if not smoke then Printf.printf "(written to BENCH_fleet.json)\n";
  if not all_identical then begin
    List.iter (Printf.printf "  MISMATCH %s\n") (List.rev !mismatches);
    failwith "fleet bench: lane stream diverged from its solo run"
  end

let () =
  if Array.exists (( = ) "fleet") Sys.argv then begin
    Printf.printf "XChainWatcher fleet bench (scale %.3f, seed %d)\n"
      fleet_scale seed;
    bench_fleet ();
    exit 0
  end

(* ------------------------------------------------------------------ *)
(* recovery: durable-state cost and crash-resume speedup.

   Two questions.  First, what does per-poll durability cost in steady
   state: the same Nomad-scale poll schedule is driven plain and
   checkpointed (WAL record fsynced per poll, snapshot every 8) in
   alternating repetitions — min wall time per mode, so allocator and
   GC drift between runs cannot masquerade as WAL cost — and the delta
   is the WAL overhead (acceptance: < 5%).  Second, how much faster is
   resuming from the checkpoint than re-scanning from genesis
   (acceptance: >= 5x).  Both sides are timed to the same milestone,
   holding the full monitor state at the last durable poll: resume =
   recover the state directory (snapshot + WAL tail replay, derived
   tuples grafted back via [Engine.restore_fixpoint] — no rule
   re-derivation); genesis = a fresh monitor decoding and deriving the
   entire history in one catch-up poll.  Alert-stream equivalence
   between the plain and durable runs and exactly-once resumption
   (zero duplicate alerts from the resumed monitor's next poll) are
   asserted, not sampled.  Runnable standalone via
   [dune exec bench/main.exe recovery]; emits BENCH_recovery.json. *)

let bench_recovery () =
  let module Monitor = Xcw_core.Monitor in
  let module Store = Xcw_store.Store in
  let module Json = Xcw_util.Json in
  section
    "Durable state: per-poll WAL overhead, checkpoint-resume vs from-genesis";
  let polls = if smoke then 6 else 48 in
  let reps = if smoke then 1 else 3 in
  let snapshot_every =
    match Sys.getenv_opt "XCW_SNAP_EVERY" with
    | Some s -> int_of_string s
    | None -> 8
  in
  let built = Xcw_workload.Nomad.build ~seed:(seed + 31) ~scale () in
  let bridge = built.Scenario.bridge in
  let src = bridge.Bridge.source.Bridge.chain in
  let dst = bridge.Bridge.target.Bridge.chain in
  let input =
    Detector.default_input ~label:"nomad-recovery"
      ~plugin:Decoder.nomad_plugin ~config:built.Scenario.config
      ~source_chain:src ~target_chain:dst ~pricing:built.Scenario.pricing
  in
  (* Advance both cursors in [polls] equal strides over the already-built
     history, so every poll decodes a comparable block slice. *)
  let sb_max = List.length (Chain.all_blocks src) in
  let tb_max = List.length (Chain.all_blocks dst) in
  let schedule =
    List.init polls (fun i ->
        ((i + 1) * sb_max / polls, (i + 1) * tb_max / polls))
  in
  let final_sb, final_tb = List.nth schedule (polls - 1) in
  let render alerts =
    String.concat "\n"
      (List.map
         (fun (a : Monitor.alert) ->
           Printf.sprintf "%d|%s|%s" a.Monitor.al_seq a.Monitor.al_rule
             a.Monitor.al_anomaly.Report.a_tx_hash)
         alerts)
  in
  let fresh_dir () =
    let d = Filename.temp_file "xcw-bench-recovery" "" in
    Sys.remove d;
    d
  in
  let drive ?checkpoint () =
    let mon = Monitor.create ?checkpoint input in
    let t0 = Unix.gettimeofday () in
    let alerts =
      List.concat_map
        (fun (sb, tb) -> Monitor.poll mon ~source_block:sb ~target_block:tb)
        schedule
    in
    (Unix.gettimeofday () -. t0, alerts, mon)
  in
  (* Alternating repetitions; min per mode, [Gc.compact] before each
     timed run so heap drift between runs cannot masquerade as WAL
     cost.  The last durable rep's directory feeds the resume
     measurements. *)
  let plain_s = ref infinity and durable_s = ref infinity in
  let plain_rpc = ref 0.0 and durable_rpc = ref 0.0 in
  let plain_alerts = ref [] and durable_alerts = ref [] in
  let last = ref None in
  for _ = 1 to reps do
    Gc.compact ();
    let ps, pa, pm = drive () in
    plain_s := Float.min !plain_s ps;
    plain_rpc := Monitor.rpc_seconds pm;
    plain_alerts := pa;
    let dir = fresh_dir () in
    let ck = Monitor.Checkpoint.open_ ~snapshot_every ~dir () in
    let store = Monitor.Checkpoint.store ck in
    Gc.compact ();
    let ds, da, dm = drive ~checkpoint:ck () in
    durable_s := Float.min !durable_s ds;
    durable_rpc := Monitor.rpc_seconds dm;
    durable_alerts := da;
    last := Some (dir, store, dm)
  done;
  let dir, store, durable_mon = Option.get !last in
  if render !plain_alerts <> render !durable_alerts then
    failwith "recovery bench: durable alert stream diverged from plain run";
  (* A deployed poll's cost is wall time plus the RPC seconds the
     simulation accumulates instead of sleeping — here against an
     ideal co-located node (the cheapest deployment, so the least
     favourable denominator for the WAL).  The compute-only delta is
     reported alongside. *)
  let plain_total = !plain_s +. !plain_rpc in
  let durable_total = !durable_s +. !durable_rpc in
  let overhead_pct =
    100.0 *. (durable_total -. plain_total) /. plain_total
  in
  let compute_overhead_pct =
    100.0 *. (!durable_s -. !plain_s) /. !plain_s
  in
  let wal_appended = Store.appended_bytes store in
  let wal_live = Store.wal_bytes store in
  (* Time-to-state: both sides end holding the full monitor state of
     the last durable poll.  Resume recovers it from disk without
     touching a node; genesis re-fetches and re-derives it from the
     chains in one catch-up poll.  Both monitors run against
     Nomad-profile nodes (paper Table 2), whose per-fetch latency is
     accumulated by the simulation rather than slept — so each side's
     recovery cost is its wall time plus the RPC seconds a real
     deployment would additionally wait out. *)
  let input_rpc =
    {
      input with
      Detector.i_source_profile = Latency.nomad_profile;
      i_target_profile = Latency.nomad_profile;
    }
  in
  let resume_s = ref infinity and genesis_s = ref infinity in
  let genesis_rpc_s = ref 0.0 in
  let genesis_alerts = ref [] in
  for _ = 1 to reps do
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let ck = Monitor.Checkpoint.open_ ~snapshot_every ~dir () in
    let m = Monitor.create ~checkpoint:ck input_rpc in
    let wall = Unix.gettimeofday () -. t0 in
    (* Recovery performs no fetches, so its simulated RPC cost is 0. *)
    resume_s := Float.min !resume_s (wall +. Monitor.rpc_seconds m);
    if Monitor.alert_seq m <> Monitor.alert_seq durable_mon then
      failwith "recovery bench: alert sequence counter not recovered";
    Monitor.Checkpoint.close ck;
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let g = Monitor.create input_rpc in
    genesis_alerts :=
      Monitor.poll g ~source_block:final_sb ~target_block:final_tb;
    let total = Unix.gettimeofday () -. t0 +. Monitor.rpc_seconds g in
    if total < !genesis_s then begin
      genesis_s := total;
      genesis_rpc_s := Monitor.rpc_seconds g
    end
  done;
  (* The incremental run can additionally alert on transients visible
     only at intermediate cursors, so genesis's one-shot view is a
     subset of the durable stream, not an equal set. *)
  let key (a : Monitor.alert) =
    ( a.Monitor.al_rule,
      Report.class_name a.Monitor.al_anomaly.Report.a_class,
      a.Monitor.al_anomaly.Report.a_tx_hash )
  in
  let durable_keys = List.map key !durable_alerts in
  if
    List.exists
      (fun a -> not (List.mem (key a) durable_keys))
      !genesis_alerts
  then
    failwith
      "recovery bench: genesis re-scan derived alerts absent from the \
       durable stream";
  (* Exactly-once: the resumed monitor's next poll at the final cursors
     must be a live no-op — nothing re-decoded, nothing re-alerted. *)
  let ck = Monitor.Checkpoint.open_ ~snapshot_every ~dir () in
  let resumed = Monitor.create ~checkpoint:ck input_rpc in
  let t0 = Unix.gettimeofday () in
  let dup = Monitor.poll resumed ~source_block:final_sb ~target_block:final_tb in
  let first_poll_s = Unix.gettimeofday () -. t0 in
  Monitor.Checkpoint.close ck;
  if dup <> [] then
    failwith "recovery bench: resumed monitor re-emitted durable alerts";
  let speedup = !genesis_s /. Float.max 1e-9 !resume_s in
  Printf.printf "%30s %10.3f s  (%.3f s compute + %.1f s RPC)\n"
    "plain run (no store)" plain_total !plain_s !plain_rpc;
  Printf.printf "%30s %10.3f s  (%+.2f%% deployed, %+.1f%% compute-only)\n"
    "durable run (WAL per poll)" durable_total overhead_pct
    compute_overhead_pct;
  Printf.printf "%30s %10d B appended, %d B live after snapshots\n"
    "WAL traffic" wal_appended wal_live;
  Printf.printf "%30s %10.3f s  (no node fetches)\n" "checkpoint resume"
    !resume_s;
  Printf.printf "%30s %10.3f s  (%.1f s simulated RPC, %d alerts re-derived)\n"
    "from-genesis re-scan" !genesis_s !genesis_rpc_s
    (List.length !genesis_alerts);
  Printf.printf "%30s %10.3f s  (0 duplicate alerts)\n"
    "first poll after resume" first_poll_s;
  let json =
    Json.Obj
      [
        ("benchmark", Json.String "recovery");
        ("bridge", Json.String "nomad");
        ("scale", Json.Float scale);
        ("seed", Json.Int seed);
        ("polls", Json.Int polls);
        ("reps", Json.Int reps);
        ("snapshot_every", Json.Int snapshot_every);
        ("plain_wall_s", Json.Float !plain_s);
        ("durable_wall_s", Json.Float !durable_s);
        ("poll_rpc_s", Json.Float !plain_rpc);
        ("wal_overhead_pct", Json.Float overhead_pct);
        ("wal_compute_overhead_pct", Json.Float compute_overhead_pct);
        ("wal_appended_bytes", Json.Int wal_appended);
        ("wal_live_bytes", Json.Int wal_live);
        ("alerts", Json.Int (List.length !durable_alerts));
        ("resume_total_s", Json.Float !resume_s);
        ("genesis_total_s", Json.Float !genesis_s);
        ("genesis_rpc_s", Json.Float !genesis_rpc_s);
        ("resume_speedup", Json.Float speedup);
        ("resume_first_poll_s", Json.Float first_poll_s);
        ("streams_identical", Json.Bool true);
        ("resume_duplicates", Json.Int 0);
        ( "note",
          Json.String
            "min over alternating reps, Gc.compact before each timed \
             run; overhead compares the same poll schedule with and \
             without the fsynced per-poll WAL (snapshots included), \
             against the deployed poll cost = wall + simulated RPC \
             seconds of an ideal co-located node (the cheapest \
             deployment, hence the least favourable denominator); \
             resume recovers the state directory to the last durable \
             poll's full state — no node fetches, no rule \
             re-derivation; genesis re-fetches and re-derives that \
             state from Nomad-profile nodes in one catch-up poll, its \
             total = wall + simulated RPC seconds (accumulated, never \
             slept)" );
      ]
  in
  if not smoke then Json.write_file ~path:"BENCH_recovery.json" json;
  Printf.printf
    "BENCH_RECOVERY overhead=%.1f%% resume=%.3fs genesis=%.3fs \
     speedup=%.1fx duplicates=0\n"
    overhead_pct !resume_s !genesis_s speedup;
  if not smoke then Printf.printf "(written to BENCH_recovery.json)\n"

let () =
  if Array.exists (( = ) "recovery") Sys.argv then begin
    Printf.printf "XChainWatcher recovery bench (scale %.3f, seed %d)\n" scale
      seed;
    bench_recovery ();
    exit 0
  end

(* ------------------------------------------------------------------ *)
(* throughput: interned int-array tuples vs the boxed [const array]
   reference ([Xcw_datalog.Boxed]) on a Nomad-shaped fact base.

   The workload is the paper's Nomad benign-deposit traffic rendered
   synthetically: one deposit round trip = 2 receipts (the deposit
   transaction on Ethereum and its completion on Moonbeam), each
   contributing 3 facts per side exactly as the decoders emit them.
   1x = 11,874 round trips — Table 3's 7,187 native + 4,223 ERC-20
   deposits + 464 withdrawals.  The timed region is fact loading plus
   full rule evaluation (ingestion throughput, receipts/sec), which is
   what the representation change targets: packed fact load via
   [Facts.to_packed] and int-array joins vs boxed [const list] loads
   and [const] joins over the identical algorithm.

   Two speedups are reported.  [speedup_seq_vs_boxed] isolates the
   representation change alone (sequential vs sequential);
   [speedup_jobs4_vs_boxed] — the headline, since the boxed engine
   predates the domain pool and has no parallel mode — is the
   detector's --jobs 4 configuration against that same baseline, the
   combination the tentpole targets (PR 5 chunking over flat ranges
   with zero boxing).  The --jobs 4 row follows the parallel bench's
   honesty protocol for core-constrained hosts: the measured wall
   (domains time-sharing whatever cores exist) is recorded, and the
   reported receipts/sec uses serial load plus the modeled eval wall —
   the identical partitioning re-timed on a sequential modeling pool
   with its greedy 4-core makespan substituted for the serialized task
   time.  Runnable standalone via [dune exec bench/main.exe
   throughput]; emits BENCH_throughput.json plus a one-line
   BENCH_THROUGHPUT summary. *)

let bench_throughput () =
  let module F = Xcw_core.Facts in
  let module Boxed = Xcw_datalog.Boxed in
  let module Json = Xcw_util.Json in
  let module Pool = Xcw_par.Pool in
  Engine.recommended_gc_setup ();
  section "Throughput: interned columnar tuples vs boxed representation";
  let host_cores = Domain.recommended_domain_count () in
  let rounds_1x = if smoke then 200 else 11_874 in
  let src_token = "0x6b175474e89094c44da98b954eedeac495271d0f" in
  let dst_token = "0xc234a67a4f840e61ade794be47de455361b52413" in
  let bridge_s = "0x88a69b4e698a4b090df6cf5bd7b2d47325ad30a3" in
  let bridge_t = "0xb70588b1a51f847d13158ff18e9cac861df5fb00" in
  let facts_for ~rounds =
    let statics =
      [
        F.Token_mapping
          { src_chain_id = 1; dst_chain_id = 2; src_token; dst_token };
        F.Bridge_controlled_address { chain_id = 1; address = bridge_s };
        F.Bridge_controlled_address { chain_id = 2; address = bridge_t };
        F.Bridge_controlled_address { chain_id = 2; address = Rules.zero_addr };
        F.Cctx_finality { chain_id = 1; finality_seconds = 100 };
        F.Cctx_finality { chain_id = 2; finality_seconds = 50 };
        F.Wrapped_native_token { chain_id = 1; token = src_token };
      ]
    in
    let per_round i =
      let stx = Printf.sprintf "0x%056xaa%06x" i (i land 0xffffff) in
      let dtx = Printf.sprintf "0x%056xbb%06x" i (i land 0xffffff) in
      (* Beneficiary churn: repeat visitors, as on the real bridge. *)
      let ben = Printf.sprintf "0x00000000000000000000000000000000000%05x" (i mod 997) in
      let amount = U256.of_int (1_000_000 + i) in
      [
        F.Sc_token_deposited
          {
            tx_hash = stx; event_index = 1; deposit_id = i; beneficiary = ben;
            dst_token; orig_token = src_token; dst_chain_id = 2; amount;
          };
        F.Erc20_transfer
          {
            tx_hash = stx; chain_id = 1; event_index = 0; contract = src_token;
            from_ = ben; to_ = bridge_s; amount;
          };
        F.Transaction
          {
            timestamp = 1_000 + i; chain_id = 1; tx_hash = stx; from_ = ben;
            to_ = bridge_s; value = U256.zero; status = 1; fee = U256.zero;
          };
        F.Tc_token_deposited
          {
            tx_hash = dtx; event_index = 1; deposit_id = i; beneficiary = ben;
            dst_token; amount;
          };
        F.Erc20_transfer
          {
            tx_hash = dtx; chain_id = 2; event_index = 0; contract = dst_token;
            from_ = Rules.zero_addr; to_ = ben; amount;
          };
        F.Transaction
          {
            (* src_ts + 100s finality <= dst_ts for every round. *)
            timestamp = 2_000 + rounds + i; chain_id = 2; tx_hash = dtx;
            from_ = bridge_t; to_ = bridge_t; value = U256.zero; status = 1;
            fee = U256.zero;
          };
      ]
    in
    statics @ List.concat_map per_round (List.init rounds Fun.id)
  in
  (* Both engines report (load, eval) separately; the receipts/sec
     wall is their sum — interning happens at load time, so excluding
     the load would hide the cost the tentpole shifted there. *)
  let one_boxed facts =
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let db = Boxed.create_db () in
    List.iter
      (fun f ->
        let pred, tuple = F.to_tuple f in
        ignore (Boxed.insert_fact db pred tuple))
      facts;
    let t1 = Unix.gettimeofday () in
    let derived = Boxed.run db Rules.program in
    (t1 -. t0, Unix.gettimeofday () -. t1, derived)
  in
  let one_interned ?mode facts =
    Gc.full_major ();
    let pool =
      match mode with
      | None -> None
      | Some (`Domains k) -> Some (Pool.get ~ndomains:k)
      | Some (`Inline k) -> Some (Pool.sequential ~ndomains:k)
    in
    Option.iter Pool.reset_stats pool;
    let t0 = Unix.gettimeofday () in
    let db = Engine.create_db () in
    ignore (F.load_all db facts);
    let t1 = Unix.gettimeofday () in
    let stats =
      match pool with
      | None -> Engine.run db Rules.program
      | Some pool -> Engine.run ~pool db Rules.program
    in
    let t2 = Unix.gettimeofday () in
    let pstats =
      match pool with
      | Some p -> Pool.stats p
      | None ->
          { Pool.st_batches = 0; st_tasks = 0; st_busy = 0.; st_modeled_wall = 0. }
    in
    (t1 -. t0, t2 -. t1, pstats, stats.Engine.tuples_derived)
  in
  let reps = if smoke then 1 else 2 in
  (* Best-of-[reps] keyed on the figure the row reports (total wall,
     modeled where applicable) — not on element-wise tuple order. *)
  let best ~key f =
    let b = ref (f ()) in
    for _ = 2 to reps do
      let r = f () in
      if key r < key !b then b := r
    done;
    !b
  in
  let row scale_x =
    let rounds = rounds_1x * scale_x in
    let receipts = 2 * rounds in
    let facts = facts_for ~rounds in
    let nfacts = List.length facts in
    subsection
      (Printf.sprintf "%dx Nomad (%d round trips, %d receipts, %d facts)"
         scale_x rounds receipts nfacts);
    let boxed_load, boxed_eval, boxed_derived =
      best ~key:(fun (l, e, _) -> l +. e) (fun () -> one_boxed facts)
    in
    let interned_load, interned_eval, _, interned_derived =
      best ~key:(fun (l, e, _, _) -> l +. e) (fun () -> one_interned facts)
    in
    let dom_load, dom_eval, _, dom_derived =
      best
        ~key:(fun (l, e, _, _) -> l +. e)
        (fun () -> one_interned ~mode:(`Domains 4) facts)
    in
    (* Modeled --jobs 4 total: serial load, plus the inline eval wall
       with the greedy 4-core makespan substituted for serialized task
       time (the parallel bench's protocol for core-constrained hosts). *)
    let j4_load, j4_eval, j4_modeled_eval, j4_derived =
      best
        ~key:(fun (l, _, m, _) -> l +. m)
        (fun () ->
          let l, e, (p : Pool.stats), d =
            one_interned ~mode:(`Inline 4) facts
          in
          (l, e, e -. p.Pool.st_busy +. p.Pool.st_modeled_wall, d))
    in
    let boxed_wall = boxed_load +. boxed_eval in
    let interned_wall = interned_load +. interned_eval in
    let jobs4_wall = j4_load +. j4_modeled_eval in
    let rps wall = float_of_int receipts /. wall in
    let boxed_rps = rps boxed_wall in
    let interned_rps = rps interned_wall in
    let jobs4_rps = rps jobs4_wall in
    let speedup_seq = boxed_wall /. interned_wall in
    let speedup_jobs4 = boxed_wall /. jobs4_wall in
    let identical =
      boxed_derived = interned_derived
      && dom_derived = interned_derived
      && j4_derived = interned_derived
    in
    Printf.printf "%14s %9s %9s %10s %14s %10s\n" "engine" "load s" "eval s"
      "wall s" "receipts/s" "speedup";
    Printf.printf "%14s %9.3f %9.3f %10.3f %14.0f %9.2fx\n" "boxed seq"
      boxed_load boxed_eval boxed_wall boxed_rps 1.0;
    Printf.printf "%14s %9.3f %9.3f %10.3f %14.0f %9.2fx\n" "interned seq"
      interned_load interned_eval interned_wall interned_rps speedup_seq;
    Printf.printf
      "%14s %9.3f %9.3f %10.3f %14.0f %9.2fx  (measured wall %.3fs on %d \
       core(s))\n"
      "interned -j4" j4_load j4_modeled_eval jobs4_wall jobs4_rps
      speedup_jobs4
      (dom_load +. dom_eval)
      host_cores;
    Printf.printf "derived tuples identical across engines: %b\n" identical;
    ( scale_x,
      speedup_seq,
      speedup_jobs4,
      identical,
      Json.Obj
        [
          ("scale_x", Json.Int scale_x);
          ("round_trips", Json.Int rounds);
          ("receipts", Json.Int receipts);
          ("facts", Json.Int nfacts);
          ("boxed_load_s", Json.Float boxed_load);
          ("boxed_eval_s", Json.Float boxed_eval);
          ("boxed_wall_s", Json.Float boxed_wall);
          ("boxed_receipts_per_s", Json.Float boxed_rps);
          ("interned_load_s", Json.Float interned_load);
          ("interned_eval_s", Json.Float interned_eval);
          ("interned_wall_s", Json.Float interned_wall);
          ("interned_receipts_per_s", Json.Float interned_rps);
          ("jobs4_measured_wall_s", Json.Float (dom_load +. dom_eval));
          ("jobs4_inline_eval_s", Json.Float j4_eval);
          ("jobs4_modeled_eval_s", Json.Float j4_modeled_eval);
          ("jobs4_modeled_wall_s", Json.Float jobs4_wall);
          ("jobs4_receipts_per_s", Json.Float jobs4_rps);
          ("speedup_seq_vs_boxed", Json.Float speedup_seq);
          ("speedup_jobs4_vs_boxed", Json.Float speedup_jobs4);
          ("derived_identical", Json.Bool identical);
        ] )
  in
  let rows = List.map row [ 1; 10 ] in
  let seq10, jobs410, identical10 =
    match List.find_opt (fun (s, _, _, _, _) -> s = 10) rows with
    | Some (_, seq, j4, identical, _) -> (seq, j4, identical)
    | None -> (Float.nan, Float.nan, false)
  in
  let all_identical = List.for_all (fun (_, _, _, ok, _) -> ok) rows in
  let json =
    Json.Obj
      [
        ("benchmark", Json.String "throughput");
        ("seed", Json.Int seed);
        ("host_cores", Json.Int host_cores);
        ("rounds_1x", Json.Int rounds_1x);
        ( "note",
          Json.String
            "1x = 11,874 Nomad deposit round trips (Table 3: 7,187 native + \
             4,223 ERC-20 deposits + 464 withdrawals), 2 receipts and 6 \
             facts per round trip; wall = fact load + full rule evaluation \
             (interning happens at load, so load stays in the timed \
             region); speedup_at_10x compares the detector's --jobs 4 \
             configuration against the boxed sequential baseline — the \
             boxed engine predates the domain pool and has no parallel \
             mode — while speedup_seq_vs_boxed isolates the representation \
             change alone; jobs4_receipts_per_s uses the modeled wall \
             (serial load plus inline eval re-timing with the greedy \
             4-core makespan substituted for serialized task time), \
             jobs4_measured_wall_s is the real spawned-domain run on this \
             host's cores" );
        ("speedup_target_at_10x", Json.Float 5.0);
        ("speedup_at_10x", Json.Float jobs410);
        ("speedup_seq_at_10x", Json.Float seq10);
        ("rows", Json.List (List.map (fun (_, _, _, _, j) -> j) rows));
      ]
  in
  if not smoke then Json.write_file ~path:"BENCH_throughput.json" json;
  Printf.printf
    "BENCH_THROUGHPUT speedup_at_10x=%.2f (seq %.2fx, --jobs 4 %.2fx) \
     target_ge=5.0 derived_identical=%b\n"
    jobs410 seq10 jobs410
    (all_identical && identical10);
  if not smoke then Printf.printf "(written to BENCH_throughput.json)\n"

let () =
  if Array.exists (( = ) "throughput") Sys.argv then begin
    Printf.printf "XChainWatcher throughput bench (seed %d)\n" seed;
    bench_throughput ();
    exit 0
  end

(* ------------------------------------------------------------------ *)
(* Scenario construction (shared by several experiments)               *)

let () =
  Printf.printf "XChainWatcher evaluation harness (scale %.3f, seed %d)\n" scale
    seed

let nomad = Xcw_workload.Nomad.build ~seed ~scale ()

let nomad_result =
  Detector.run
    (Detector.default_input ~label:"nomad" ~plugin:Decoder.nomad_plugin
       ~config:nomad.Scenario.config
       ~source_chain:nomad.Scenario.bridge.Bridge.source.Bridge.chain
       ~target_chain:nomad.Scenario.bridge.Bridge.target.Bridge.chain
       ~pricing:nomad.Scenario.pricing)

let ronin = Xcw_workload.Ronin.build ~seed:(seed + 1) ~scale ()

let ronin_result =
  let input =
    Detector.default_input ~label:"ronin" ~plugin:Decoder.ronin_plugin
      ~config:ronin.Scenario.config
      ~source_chain:ronin.Scenario.bridge.Bridge.source.Bridge.chain
      ~target_chain:ronin.Scenario.bridge.Bridge.target.Bridge.chain
      ~pricing:ronin.Scenario.pricing
  in
  Detector.run
    {
      input with
      Detector.i_first_window_withdrawal_id =
        ronin.Scenario.first_window_withdrawal_id;
    }

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)

let () =
  section "Table 1: Timeframes of Relevance for Data Extraction";
  Printf.printf "%-8s %12s %12s %12s %12s %12s\n" "Bridge" "t0" "t1" "t2" "t3"
    "attack";
  List.iter
    (fun tf ->
      Printf.printf "%-8s %12d %12d %12d %12d %12d\n" tf.Timeframes.tf_bridge
        tf.Timeframes.t0 tf.Timeframes.t1 tf.Timeframes.t2 tf.Timeframes.t3
        tf.Timeframes.attack)
    Timeframes.rows;
  Printf.printf "(as in the paper: Nomad attacked 2022-08-02, Ronin 2022-03-22)\n"

(* ------------------------------------------------------------------ *)
(* Table 2 and Figure 4: fact-extraction latency                       *)

(* Re-decode each bridge's chains against RPC nodes with the paper's
   calibrated latency profiles, splitting per token type. *)
let decode_latencies (built : Scenario.built) plugin profile rpc_seed =
  let src_client =
    Client.create ~seed:rpc_seed
      (Rpc.create ~profile ~seed:rpc_seed
         built.Scenario.bridge.Bridge.source.Bridge.chain)
  in
  let dst_client =
    Client.create ~seed:(rpc_seed + 1)
      (Rpc.create ~profile ~seed:(rpc_seed + 1)
         built.Scenario.bridge.Bridge.target.Bridge.chain)
  in
  let src =
    Decoder.decode_chain plugin built.Scenario.config ~role:Decoder.Source
      src_client built.Scenario.bridge.Bridge.source.Bridge.chain
  in
  let dst =
    Decoder.decode_chain plugin built.Scenario.config ~role:Decoder.Target
      dst_client built.Scenario.bridge.Bridge.target.Bridge.chain
  in
  let all = src @ dst in
  let native =
    List.filter_map
      (fun rd ->
        if rd.Decoder.rd_is_native then Some rd.Decoder.rd_latency else None)
      all
  in
  let non_native =
    List.filter_map
      (fun rd ->
        if rd.Decoder.rd_is_native then None else Some rd.Decoder.rd_latency)
      all
  in
  (native, non_native)

let nomad_native_lat, nomad_nonnative_lat =
  decode_latencies nomad Decoder.nomad_plugin Latency.nomad_profile 101

let ronin_native_lat, ronin_nonnative_lat =
  decode_latencies ronin Decoder.ronin_plugin Latency.ronin_profile 202

let print_latency_row bridge kind latencies ~paper_row =
  match latencies with
  | [] -> Printf.printf "%-8s %-11s (no samples)\n" bridge kind
  | _ ->
      let s = Stats.summarize latencies in
      Printf.printf
        "%-8s %-11s %8d %9.4f %9.2f %7.2f %8.2f %7.2f   (paper: %s)\n" bridge
        kind s.Stats.size s.Stats.min s.Stats.max s.Stats.mean s.Stats.median
        s.Stats.std paper_row

let () =
  section "Table 2: Facts extraction latency (seconds) per token type";
  Printf.printf "%-8s %-11s %8s %9s %9s %7s %8s %7s\n" "Bridge" "Token type"
    "size" "min" "max" "avg" "median" "std";
  print_latency_row "Ronin" "native" ronin_native_lat
    ~paper_row:"size 468,997 min 0.18 max 138.15 avg 1.82 med 0.35 std 4.70";
  print_latency_row "Ronin" "non-native" ronin_nonnative_lat
    ~paper_row:"size 347,580 min ~0 max 3.65 avg 0.28 med 0.23 std 0.26";
  print_latency_row "Nomad" "native" nomad_native_lat
    ~paper_row:"size 7,656 min 0.16 max 8.78 avg 0.89 med 0.78 std 0.46";
  print_latency_row "Nomad" "non-native" nomad_nonnative_lat
    ~paper_row:"size 51,702 min ~0 max 5.83 avg 0.26 med 0.19 std 0.28";
  Printf.printf
    "native >> non-native because tx.value needs eth_getTransaction +\n\
     debug_traceTransaction; %.1f%% of Ronin native transfers exceeded 10 s\n\
     (paper: 6.5%%)\n"
    (100.0 *. Stats.fraction_exceeding ronin_native_lat 10.0)

let () =
  section "Figure 4: CDF of transaction receipt processing time";
  let points = [ 0.01; 0.03; 0.1; 0.3; 1.0; 3.0; 10.0; 30.0; 100.0; 140.0 ] in
  Printf.printf "%10s | %8s %8s %8s %8s\n" "seconds" "Nom-nat" "Ron-nat"
    "Nom-non" "Ron-non";
  let cdfs =
    List.map
      (fun series -> Stats.cdf series points)
      [
        nomad_native_lat; ronin_native_lat; nomad_nonnative_lat;
        ronin_nonnative_lat;
      ]
  in
  List.iteri
    (fun i p ->
      Printf.printf "%10.2f | %8.3f %8.3f %8.3f %8.3f\n" p
        (snd (List.nth (List.nth cdfs 0) i))
        (snd (List.nth (List.nth cdfs 1) i))
        (snd (List.nth (List.nth cdfs 2) i))
        (snd (List.nth (List.nth cdfs 3) i)))
    points;
  Printf.printf
    "(paper shape: non-native series saturate by ~1 s; native series have\n\
     a heavy tail, Ronin reaching 138 s)\n"

(* ------------------------------------------------------------------ *)
(* Section 4.2.2: rule-engine runtime                                  *)

let () =
  section "Section 4.2.2: Executing the cross-chain rules";
  let row label (r : Detector.result) paper_tuples paper_seconds =
    Printf.printf
      "%-7s facts %9d (paper >%s)  decode+build %6.2f s  rules %6.3f s (paper %s s)\n\
      \        %d tuples derived in %d rule evaluations over %d iterations\n"
      label r.Detector.report.Report.total_facts paper_tuples
      r.Detector.report.Report.decode_seconds
      r.Detector.report.Report.eval_seconds paper_seconds
      r.Detector.rule_stats.Engine.tuples_derived
      r.Detector.rule_stats.Engine.rules_evaluated
      r.Detector.rule_stats.Engine.iterations
  in
  row "Ronin" ronin_result "1,570,000 at full scale" "3.58";
  row "Nomad" nomad_result "200,000 at full scale" "0.51";
  Printf.printf "%d Datalog rules evaluated (paper: 30)\n" Rules.rule_count

(* ------------------------------------------------------------------ *)
(* Figure 5: cctx latency vs value                                     *)

let () =
  section "Figure 5: CCTX latency vs value transferred (Nomad)";
  let cctxs = nomad_result.Detector.report.Report.cctxs in
  let buckets =
    [
      (1_000, 10_000); (10_000, 100_000); (100_000, 1_000_000);
      (1_000_000, 10_000_000); (10_000_000, 100_000_000);
    ]
  in
  Printf.printf "%-28s | %-30s | %-30s\n" "latency bucket (s)"
    "CCTX_ValidDeposit" "CCTX_ValidWithdrawal";
  List.iter
    (fun (lo, hi) ->
      let pick kind =
        List.filter
          (fun c ->
            c.Report.c_kind = kind
            && Report.cctx_latency c >= lo
            && Report.cctx_latency c < hi)
          cctxs
      in
      let fmt cs =
        if cs = [] then "-"
        else
          let vals = List.map (fun c -> c.Report.c_usd_value) cs in
          Printf.sprintf "%4d cctx  $%.2f..$%.0f" (List.length cs)
            (List.fold_left Float.min Float.infinity vals)
            (List.fold_left Float.max 0.0 vals)
      in
      Printf.printf "%-28s | %-30s | %-30s\n"
        (Printf.sprintf "[%d; %d)" lo hi)
        (fmt (pick `Deposit))
        (fmt (pick `Withdrawal)))
    buckets;
  let dep_lat =
    List.filter_map
      (fun c ->
        if c.Report.c_kind = `Deposit then
          Some (float_of_int (Report.cctx_latency c))
        else None)
      cctxs
  in
  let wdr_lat =
    List.filter_map
      (fun c ->
        if c.Report.c_kind = `Withdrawal then
          Some (float_of_int (Report.cctx_latency c))
        else None)
      cctxs
  in
  if dep_lat <> [] then
    Printf.printf
      "deposit latency: min %.0f s (= 30-min fraud-proof window), median %.0f s\n"
      (List.fold_left Float.min Float.infinity dep_lat)
      (Stats.median dep_lat);
  if wdr_lat <> [] then
    Printf.printf
      "withdrawal latency: min %.0f s, median %.0f s, max %.0f s — far more dispersed\n"
      (List.fold_left Float.min Float.infinity wdr_lat)
      (Stats.median wdr_lat)
      (List.fold_left Float.max 0.0 wdr_lat);
  Printf.printf
    "(paper: all deposits start exactly at the 30-minute mark; the slowest\n\
     withdrawal took more than 5 months)\n"

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)

let print_table3 label (r : Detector.result) paper_rows =
  subsection (Printf.sprintf "%s bridge" label);
  Printf.printf "%-36s %10s %10s   %s\n" "Logical Rule" "captured" "anomalies"
    "paper (captured / anomalies)";
  List.iter2
    (fun row (paper_cap, paper_anom) ->
      Printf.printf "%-36s %10d %10d   %s / %s\n" row.Report.rr_rule
        row.Report.rr_captured
        (List.length row.Report.rr_anomalies)
        paper_cap paper_anom;
      List.iter
        (fun (cls, count, value) ->
          if value > 0.0 then
            Printf.printf "      %-40s %6d  ($%.2f)\n" (Report.class_name cls)
              count value
          else Printf.printf "      %-40s %6d\n" (Report.class_name cls) count)
        (Report.summarize_anomalies row.Report.rr_anomalies))
    r.Detector.report.Report.rows paper_rows

let () =
  section "Table 3: Anomaly detection results (captured records / anomalies)";
  Printf.printf
    "captured columns scale with XCW_SCALE=%.3f; anomaly classes keep the\n\
     paper's exact counts\n"
    scale;
  print_table3 "Nomad" nomad_result
    [
      ("7,187", "0");
      ("4,223", "39 (14 phishing + 25 transfers)");
      ("11,417", "0");
      ("11,404", "19");
      ("464", "0");
      ("4,846", "10 (3 unparseable + 7 attempts)");
      ("4,869", "2 (phishing)");
      ("4,482", "729 + 382 attack events");
    ];
  print_table3 "Ronin" ronin_result
    [
      ("38,462", "0");
      ("5,527", "83 (3 phishing + 80 transfers)");
      ("43,990", "0");
      ("43,979", "10");
      ("0", "0");
      ("35,413", "0 (+2 no-escrow events)");
      ("25,470", "1 (phishing)");
      ("22,830", "12,546");
    ]

(* ------------------------------------------------------------------ *)
(* Table 4                                                             *)

let print_table4 label (r : Detector.result) =
  subsection (Printf.sprintf "%s bridge: origin of CCTX anomalies" label);
  let dissect row_name =
    let row =
      List.find
        (fun row -> row.Report.rr_rule = row_name)
        r.Detector.report.Report.rows
    in
    Printf.printf "%s\n" row_name;
    List.iter
      (fun (cls, count, _) ->
        Printf.printf "    %-44s %6d\n" (Report.class_name cls) count)
      (Report.summarize_anomalies row.Report.rr_anomalies)
  in
  dissect "4. CCTX_ValidDeposit";
  dissect "8. CCTX_ValidWithdrawal"

let () =
  section
    "Table 4: Origin of anomalies in CCTX_ValidDeposit / CCTX_ValidWithdrawal";
  print_table4 "Nomad" nomad_result;
  Printf.printf
    "  (paper Nomad: 5+5 finality, 7 token_mapping, 1+1 invalid beneficiary\n\
    \   on deposits; 729 no-correspondence on T, 3 invalid-beneficiary FPs,\n\
    \   2 token_mapping, 382 attack events on withdrawals)\n";
  print_table4 "Ronin" ronin_result;
  Printf.printf
    "  (paper Ronin: 10+10 finality on deposits; 22+22 finality on\n\
    \   withdrawals, 11,792 no-correspondence on S, 708 pre-window FPs,\n\
    \   2 attack events)\n"

(* ------------------------------------------------------------------ *)
(* Section 5.2.5 / Finding 8: attack identification                    *)

let () =
  section "Section 5.2.5: Forged Withdrawal Attacks";
  let nomad_summary = Detector.attack_summary ~source_chain_id:1 nomad_result in
  Printf.printf
    "Nomad : %d events, %d transactions, %d receiving addresses, $%.2fM stolen\n"
    nomad_summary.Detector.as_events nomad_summary.Detector.as_transactions
    nomad_summary.Detector.as_beneficiaries
    (nomad_summary.Detector.as_total_usd /. 1e6);
  Printf.printf
    "        (paper: 382 events, 382 transactions, 279 addresses, 45 deployer\n\
    \         EOAs, $159.58M — 9 EOAs and 136 transactions more than prior\n\
    \         public datasets)\n";
  let ronin_summary = Detector.attack_summary ~source_chain_id:1 ronin_result in
  Printf.printf "Ronin : %d events, %d transactions, $%.2fM stolen\n"
    ronin_summary.Detector.as_events ronin_summary.Detector.as_transactions
    (ronin_summary.Detector.as_total_usd /. 1e6);
  Printf.printf
    "        (paper: 2 transactions moving $565.64M, no false negatives)\n";
  (* Deployer attribution: trace the Nomad exploit sinks to their
     creating EOAs, as the paper does. *)
  let module Analysis = Xcw_core.Analysis in
  let sinks =
    Analysis.forged_withdrawal_beneficiaries ~source_chain_id:1
      nomad_result.Detector.report
  in
  let deployers =
    Analysis.attribute_deployers
      nomad.Scenario.bridge.Bridge.source.Bridge.chain sinks
  in
  Printf.printf
    "Nomad attribution: %d receiving contracts traced to %d deployer EOAs\n\
    \        (paper: 279 contracts, 45 EOAs — 9 more than Peckshield's 36)\n"
    (List.length sinks) (List.length deployers)

(* ------------------------------------------------------------------ *)
(* Detection latency with the streaming monitor (Figure 1 motivation)  *)

let () =
  section "Streaming detection latency (closing the Figure 1 gap)";
  (* Replay the Ronin timeline through the monitor, polling every six
     simulated hours, and measure how long after the attack the forged
     withdrawals are alerted.  The real team needed six DAYS. *)
  let module Monitor = Xcw_core.Monitor in
  let b = Xcw_workload.Ronin.build ~seed:(seed + 9) ~scale:(Float.min scale 0.02) () in
  let input =
    Detector.default_input ~label:"ronin-monitor" ~plugin:Decoder.ronin_plugin
      ~config:b.Scenario.config
      ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
      ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
      ~pricing:b.Scenario.pricing
  in
  let input =
    {
      input with
      Detector.i_first_window_withdrawal_id =
        b.Scenario.first_window_withdrawal_id;
    }
  in
  let mon = Monitor.create input in
  let src_blocks =
    Chain.all_blocks b.Scenario.bridge.Bridge.source.Bridge.chain
  in
  let dst_blocks =
    Chain.all_blocks b.Scenario.bridge.Bridge.target.Bridge.chain
  in
  let cursor_at blocks t =
    List.fold_left
      (fun acc (blk : Xcw_evm.Types.block) ->
        if blk.Xcw_evm.Types.b_timestamp <= t then
          max acc blk.Xcw_evm.Types.b_number
        else acc)
      0 blocks
  in
  let attack = b.Scenario.attack_time in
  let poll_interval = 6 * 3600 in
  let detected_at = ref None in
  let t = ref (attack - (2 * 86_400)) in
  while !detected_at = None && !t < attack + (2 * 86_400) do
    let alerts =
      Monitor.poll mon ~source_block:(cursor_at src_blocks !t)
        ~target_block:(cursor_at dst_blocks !t)
    in
    let attack_alert =
      List.exists
        (fun (a : Monitor.alert) ->
          a.Monitor.al_rule = "8. CCTX_ValidWithdrawal"
          && a.Monitor.al_anomaly.Report.a_class = Report.No_correspondence
          && a.Monitor.al_anomaly.Report.a_usd_value > 1e6)
        alerts
    in
    if attack_alert && !t >= attack then detected_at := Some !t;
    t := !t + poll_interval
  done;
  (match !detected_at with
  | Some t ->
      Printf.printf
        "attack at t=%d; first alert at poll t=%d — detection latency <= %d s\n\
         (one 6-hour polling interval; the Ronin team needed 6 DAYS, and the\n\
         2024 re-attack still took ~40 minutes to pause)\n"
        attack t (t - attack + poll_interval)
  | None -> Printf.printf "attack not detected (unexpected)\n");
  Printf.printf "monitor polls: %d, cached facts: %d\n" (Monitor.polls mon)
    (Monitor.facts_cached mon)

(* ------------------------------------------------------------------ *)
(* Salami-slicing sweep (Section 6 future work, implemented)           *)

let () =
  section "Salami-slicing scan over the Nomad deposit relation";
  let module Analysis = Xcw_core.Analysis in
  let candidates =
    Analysis.salami_candidates ~min_events:10 ~max_single_usd:1_000.0
      ~min_total_usd:10_000.0 nomad_result.Detector.db nomad.Scenario.pricing
  in
  Printf.printf
    "%d sender/token pairs split >= $10K into >= 10 sub-$1K deposits\n(the scenario plants exactly one such slicer)\n"
    (List.length candidates);
  List.iteri
    (fun i c ->
      if i < 5 then
        Printf.printf "  %s: %d deposits, $%.0f total (max single $%.0f)\n"
          (String.sub c.Analysis.sal_sender 0 10)
          c.Analysis.sal_events c.Analysis.sal_total_usd
          c.Analysis.sal_max_single_usd)
    candidates;
  Printf.printf
    "(benign heavy users can match this pattern — the paper defers the\n\
     threshold calibration to future work; the scan itself is implemented)\n"

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)

let () =
  section "Figure 6: Fraud-proof window violations (Nomad deposits)";
  let violations =
    Engine.facts nomad_result.Detector.db Rules.r_deposit_finality_violation
  in
  Printf.printf "%d invalid cctxs accepted by the bridge (paper: 5):\n"
    (List.length violations);
  List.iter
    (fun t ->
      match (t.(4), t.(5), t.(6)) with
      | Ast.Int src_ts, Ast.Int dst_ts, Ast.Int fin ->
          Printf.printf
            "  relayed after %5d s < window %d s  (fastest paper case: 87 s)\n"
            (dst_ts - src_ts) fin
      | _ -> ())
    (List.sort
       (fun a b ->
         match (a.(4), a.(5), b.(4), b.(5)) with
         | Ast.Int a4, Ast.Int a5, Ast.Int b4, Ast.Int b5 ->
             compare (a5 - a4) (b5 - b4)
         | _ -> 0)
       violations)

(* ------------------------------------------------------------------ *)
(* Figure 7                                                            *)

let () =
  section "Figure 7: Matched vs unmatched withdrawal events on T (Nomad)";
  let db = nomad_result.Detector.db in
  let matched_ts =
    List.filter_map
      (fun t -> match t.(9) with Ast.Int ts -> Some ts | _ -> None)
      (Engine.facts db Rules.r_cctx_valid_withdrawal)
  in
  let unmatched_ts =
    List.filter_map
      (fun t -> match t.(1) with Ast.Int ts -> Some ts | _ -> None)
      (Engine.facts db Rules.r_unmatched_tc_erc20_withdrawal)
    @ List.filter_map
        (fun t -> match t.(1) with Ast.Int ts -> Some ts | _ -> None)
        (Engine.facts db Rules.r_unmatched_tc_native_withdrawal)
  in
  let t1, _ = nomad.Scenario.window in
  let stop = nomad.Scenario.attack_time + (21 * 86_400) in
  let width = 14 * 86_400 in
  let m = Stats.time_buckets matched_ts ~start:t1 ~stop ~width in
  let u = Stats.time_buckets unmatched_ts ~start:t1 ~stop ~width in
  Printf.printf "%12s %9s %10s\n" "window start" "matched" "unmatched";
  List.iter2
    (fun (ts, cm) (_, cu) ->
      let marker =
        if
          ts <= nomad.Scenario.attack_time
          && nomad.Scenario.attack_time < ts + width
        then "  <-- ATTACK (unmatched spike)"
        else ""
      in
      Printf.printf "%12d %9d %10d%s\n" ts cm cu marker)
    m u;
  Printf.printf
    "(paper: 313 unmatched events trying to withdraw $24.7M in the 24 h\n\
     before the attack; low-value unmatched events throughout normal\n\
     operation)\n"

(* ------------------------------------------------------------------ *)
(* Table 5 and Figure 8                                                *)

let print_table5 label (built : Scenario.built) =
  subsection label;
  let stuck = built.Scenario.incomplete_withdrawals in
  let before = List.filter (fun i -> i.Scenario.iw_before_attack) stuck in
  let after = List.filter (fun i -> not i.Scenario.iw_before_attack) stuck in
  let count p xs = List.length (List.filter p xs) in
  let zero i = i.Scenario.iw_balance_eth = 0.0 in
  let below i = i.Scenario.iw_balance_eth < 0.0011 in
  let usd xs = List.fold_left (fun a i -> a +. i.Scenario.iw_usd) 0.0 xs in
  let benef xs = List.map (fun i -> i.Scenario.iw_beneficiary) xs in
  let tally xs =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun b ->
        Hashtbl.replace tbl b
          (1 + Option.value (Hashtbl.find_opt tbl b) ~default:0))
      (benef xs);
    tbl
  in
  let t = tally stuck in
  let multi = Hashtbl.fold (fun _ n acc -> if n > 1 then acc + 1 else acc) t 0 in
  let once = Hashtbl.fold (fun _ n acc -> if n = 1 then acc + 1 else acc) t 0 in
  Printf.printf "%-56s %8s %8s %8s\n" "" "before" "after" "total";
  Printf.printf "%-56s %8d %8d %8d\n" "Unmatched withdrawal events in T"
    (List.length before) (List.length after) (List.length stuck);
  Printf.printf "%-56s %8d %8d %8d\n"
    "Addresses with balance 0 at withdrawal date" (count zero before)
    (count zero after) (count zero stuck);
  Printf.printf "%-56s %8d %8d %8d\n" "Addresses with balance < 0.0011 ETH"
    (count below before) (count below after) (count below stuck);
  Printf.printf "%-56s %7.2fM %7.2fM %7.2fM\n" "Total value (USD)"
    (usd before /. 1e6) (usd after /. 1e6) (usd stuck /. 1e6);
  Printf.printf "%-56s %26d\n" "Addresses that tried withdrawing more than once"
    multi;
  Printf.printf "%-56s %26d\n" "Addresses that tried withdrawing exactly once"
    once;
  (* The "still today" row: balances read from current chain state. *)
  let module Analysis = Xcw_core.Analysis in
  let today =
    Analysis.beneficiary_balances built.Scenario.bridge.Bridge.source.Bridge.chain
      (List.sort_uniq Address.compare (benef stuck))
  in
  Printf.printf "%-56s %26d\n"
    "Addresses with balance 0 at withdrawal date and still today"
    today.Analysis.bs_zero_balance;
  (* Pearson correlation between attempts and amount withdrawn (paper:
     -0.017, negligible). *)
  let attempts, amounts =
    Hashtbl.fold
      (fun b n (xs, ys) ->
        let total =
          List.fold_left
            (fun a i ->
              if Address.equal i.Scenario.iw_beneficiary b then
                a +. i.Scenario.iw_usd
              else a)
            0.0 stuck
        in
        (float_of_int n :: xs, total :: ys))
      t ([], [])
  in
  if List.length attempts > 2 then
    Printf.printf
      "Pearson(attempts, amount) = %+.3f (paper: -0.017, negligible)\n"
      (Stats.pearson attempts amounts)

let () =
  section "Table 5: Balance analysis of destination addresses on Ethereum";
  print_table5
    "Nomad (paper: 729 events, 121 zero-balance, 231 < 0.0011 ETH, $3.62M)"
    nomad;
  print_table5
    "Ronin (paper: 11,794 events, 6,054 zero-balance, 7,469 < 0.0011 ETH, $1.18M)"
    ronin;
  Printf.printf
    "\nAcross both bridges ~half the beneficiaries held zero ETH at request\n\
     time (paper: 49%% zero balance; 61%% below the 0.0011 ETH gas minimum)\n"

let () =
  section "Figure 8: Distribution of non-zero beneficiary balances (ETH)";
  let histogram label (built : Scenario.built) =
    subsection label;
    List.iter
      (fun (phase, pred) ->
        let balances =
          List.filter_map
            (fun i ->
              if pred i && i.Scenario.iw_balance_eth > 0.0 then
                Some i.Scenario.iw_balance_eth
              else None)
            built.Scenario.incomplete_withdrawals
        in
        Printf.printf "  %s (N = %d):\n" phase (List.length balances);
        if balances <> [] then
          List.iter
            (fun (upper, count) ->
              if count > 0 then
                Printf.printf "    <= %12.7f ETH : %s (%d)\n" upper
                  (String.make (min 60 count) '#')
                  count)
            (Stats.log_histogram balances ~lo_exp:(-7) ~hi_exp:3
               ~buckets_per_decade:1))
      [
        ("before attack", fun i -> i.Scenario.iw_before_attack);
        ("after attack", fun i -> not i.Scenario.iw_before_attack);
      ]
  in
  histogram "Nomad (paper: (a) N=446, (b) N=162)" nomad;
  histogram "Ronin (paper: (a) N=3608, (b) N=154)" ronin;
  Printf.printf
    "(paper: mass around 10^-4..10^-1 ETH, with users holding >10 and even\n\
     200 ETH also failing to withdraw)\n"

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)

let () =
  section "Figure 1: Ronin bridge function calls around the attack (6 h buckets)";
  let attack = ronin.Scenario.attack_time in
  let discovery = ronin.Scenario.discovery_time in
  let start = attack - (2 * 86_400) and stop = discovery + (2 * 86_400) in
  let dep =
    Stats.time_buckets ronin.Scenario.deposit_call_times ~start ~stop
      ~width:(6 * 3600)
  in
  let wdr =
    Stats.time_buckets ronin.Scenario.withdrawal_call_times ~start ~stop
      ~width:(6 * 3600)
  in
  Printf.printf "%12s %9s %12s\n" "bucket" "deposits" "withdrawals";
  List.iter2
    (fun (ts, d) (_, w) ->
      let marker =
        if ts <= attack && attack < ts + (6 * 3600) then "  <-- ATTACK"
        else if ts <= discovery && discovery < ts + (6 * 3600) then
          "  <-- DISCOVERY: deposits drop to zero"
        else ""
      in
      Printf.printf "%12d %9d %12d%s\n" ts d w marker)
    dep wdr;
  Printf.printf
    "(paper: the attack was only discovered six days later, at which point\n\
     deposit calls drop to zero)\n"

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md Section 5)                                     *)

let () =
  section "Ablation: indexed vs nested-loop joins (Datalog engine)";
  let n = 30_000 in
  let db = Engine.create_db () in
  for i = 0 to n - 1 do
    Engine.add_fact db "edge" [ Ast.Int (i mod 1000); Ast.Int i ]
  done;
  let rel = Engine.relation db "edge" in
  let rng = Prng.create 5 in
  let keys = List.init 200 (fun _ -> Prng.int rng 1000) in
  let t0 = Unix.gettimeofday () in
  let hits_indexed =
    List.fold_left
      (fun acc k ->
        acc + List.length (Engine.Relation.lookup rel [ 0 ] [| Ast.pack_int k |]))
      0 keys
  in
  let indexed_time = Unix.gettimeofday () -. t0 in
  let all_tuples = Engine.Relation.to_list rel in
  let t1 = Unix.gettimeofday () in
  let hits_scan =
    List.fold_left
      (fun acc k ->
        acc
        + List.length
            (List.filter (fun t -> t.(0) = Ast.pack_int k) all_tuples))
      0 keys
  in
  let scan_time = Unix.gettimeofday () -. t1 in
  assert (hits_indexed = hits_scan);
  Printf.printf
    "200 point lookups over %d tuples: indexed %.4f s, full scan %.4f s (%.0fx)\n"
    n indexed_time scan_time
    (scan_time /. Float.max 1e-9 indexed_time)

let () =
  section "Ablation: semi-naive vs naive fixpoint evaluation";
  let make_db () =
    let db = Engine.create_db () in
    for i = 0 to 249 do
      Engine.add_fact db "edge" [ Ast.Int i; Ast.Int (i + 1) ]
    done;
    db
  in
  let tc_rules =
    Ast.
      [
        atom "path" [ v "x"; v "y" ] <-- [ pos (atom "edge" [ v "x"; v "y" ]) ];
        atom "path" [ v "x"; v "z" ]
        <-- [
              pos (atom "edge" [ v "x"; v "y" ]);
              pos (atom "path" [ v "y"; v "z" ]);
            ];
      ]
  in
  let time_run naive =
    let db = make_db () in
    let t0 = Unix.gettimeofday () in
    let stats = Engine.run ~naive db { Ast.rules = tc_rules } in
    (Unix.gettimeofday () -. t0, stats.Engine.iterations, Engine.fact_count db "path")
  in
  let semi_t, semi_iters, semi_paths = time_run false in
  let naive_t, naive_iters, naive_paths = time_run true in
  assert (semi_paths = naive_paths);
  Printf.printf
    "transitive closure of a 250-node chain (%d paths):\n\
    \  semi-naive %.3f s (%d iterations)\n\
    \  naive      %.3f s (%d iterations)  -> %.1fx slower\n"
    semi_paths semi_t semi_iters naive_t naive_iters
    (naive_t /. Float.max 1e-9 semi_t)

let () =
  section "Ablation: receipt-first decoding vs always-tracing (paper Section 3.2)";
  (* The deployed decoder traces only native-value transactions.
     Compare total simulated RPC time against a variant that runs
     debug_traceTransaction for every receipt. *)
  let profile = Latency.ronin_profile in
  let rng = Prng.create 99 in
  let n_native = List.length ronin_native_lat in
  let n_non = List.length ronin_nonnative_lat in
  let actual =
    List.fold_left ( +. ) 0.0 (ronin_native_lat @ ronin_nonnative_lat)
  in
  let extra_traces =
    List.init n_non (fun _ -> Latency.trace_fetch profile rng)
    |> List.fold_left ( +. ) 0.0
  in
  Printf.printf
    "Ronin decode, %d native + %d non-native receipts:\n\
    \  receipt-first (deployed): %10.1f simulated RPC seconds\n\
    \  always-trace  (ablated) : %10.1f simulated RPC seconds (+%.0f%%)\n"
    n_native n_non actual
    (actual +. extra_traces)
    (100.0 *. extra_traces /. Float.max 1e-9 actual)

let () =
  section "Ablation: event-index ordering check (rule check 6)";
  (* Disable the ordering constraint in rule 2 and show that a
     transaction whose bridge event precedes the token event — the
     confusion pattern the check exists for — would be accepted. *)
  let db = Engine.create_db () in
  Engine.add_fact db "sc_token_deposited"
    [ Ast.Str "t-good"; Ast.Int 2; Ast.Int 0; Ast.Str "ben"; Ast.Str "dt";
      Ast.Str "st"; Ast.Int 2; Ast.Str "5" ];
  Engine.add_fact db "erc20_transfer"
    [ Ast.Str "t-good"; Ast.Int 1; Ast.Int 1; Ast.Str "st"; Ast.Str "u";
      Ast.Str "bridge"; Ast.Str "5" ];
  Engine.add_fact db "sc_token_deposited"
    [ Ast.Str "t-bad"; Ast.Int 0; Ast.Int 1; Ast.Str "ben"; Ast.Str "dt";
      Ast.Str "st"; Ast.Int 2; Ast.Str "5" ];
  Engine.add_fact db "erc20_transfer"
    [ Ast.Str "t-bad"; Ast.Int 1; Ast.Int 1; Ast.Str "st"; Ast.Str "u";
      Ast.Str "bridge"; Ast.Str "5" ];
  List.iter
    (fun tx ->
      Engine.add_fact db "transaction"
        [ Ast.Int 1000; Ast.Int 1; Ast.Str tx; Ast.Str "u"; Ast.Str "b";
          Ast.Str "0"; Ast.Int 1; Ast.Str "0" ])
    [ "t-good"; "t-bad" ];
  Engine.add_fact db "token_mapping"
    [ Ast.Int 1; Ast.Int 2; Ast.Str "st"; Ast.Str "dt" ];
  Engine.add_fact db "bridge_controlled_address" [ Ast.Int 1; Ast.Str "bridge" ];
  ignore (Engine.run db { Ast.rules = [ List.nth Rules.core_rules 1 ] });
  let with_check = Engine.fact_count db Rules.r_sc_valid_erc20_deposit in
  let rule_no_order =
    match List.nth Rules.core_rules 1 with
    | { Ast.head; body } ->
        {
          Ast.head = { head with Ast.pred = "sc_valid_no_order" };
          body = List.filter (function Ast.Cmp _ -> false | _ -> true) body;
        }
  in
  ignore (Engine.run db { Ast.rules = [ rule_no_order ] });
  let without_check = Engine.fact_count db "sc_valid_no_order" in
  Printf.printf
    "with ordering check: %d valid deposit (the bridge-event-first tx is\n\
     rejected); without it: %d — the malformed transaction would be accepted\n"
    with_check without_check

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let () =
  section "Micro-benchmarks (Bechamel, ns/run)";
  let open Bechamel in
  let keccak_32 =
    let input = String.make 32 'x' in
    Test.make ~name:"keccak256 (32 B)"
      (Staged.stage (fun () -> Xcw_keccak.Keccak.digest input))
  in
  let keccak_1k =
    let input = String.make 1024 'x' in
    Test.make ~name:"keccak256 (1 KiB)"
      (Staged.stage (fun () -> Xcw_keccak.Keccak.digest input))
  in
  let abi_event =
    let ev = Xcw_chain.Erc20.transfer_event in
    let a = Address.of_seed "bench-a" and b = Address.of_seed "bench-b" in
    let values =
      Xcw_abi.Abi.Value.
        [
          Address (Address.to_bytes a); Address (Address.to_bytes b);
          Uint (U256.of_int 123_456);
        ]
    in
    Test.make ~name:"ABI event encode+decode"
      (Staged.stage (fun () ->
           let topics, data = Xcw_abi.Abi.Event.encode_log ev values in
           ignore (Xcw_abi.Abi.Event.decode_log ev topics data)))
  in
  let uint_mul =
    let x = U256.of_string "123456789123456789123456789" in
    Test.make ~name:"uint256 multiply" (Staged.stage (fun () -> U256.mul x x))
  in
  let uint_divmod =
    let x = U256.of_string "340282366920938463463374607431768211455" in
    let y = U256.of_string "12345678901234567" in
    Test.make ~name:"uint256 divmod" (Staged.stage (fun () -> U256.divmod x y))
  in
  let rlp_tx =
    let open Xcw_rlp.Rlp in
    Test.make ~name:"RLP encode tx-shaped list"
      (Staged.stage (fun () ->
           encode
             (List
                [
                  String (String.make 20 'a'); of_int 42;
                  of_uint256 (U256.of_int 1_000_000);
                  String (String.make 68 'd');
                ])))
  in
  let datalog_1k =
    Test.make ~name:"Datalog: 1k-fact deposit join"
      (Staged.stage (fun () ->
           let db = Engine.create_db () in
           for i = 0 to 999 do
             let tx = Ast.Str (Printf.sprintf "tx%d" i) in
             Engine.add_fact db "sc_token_deposited"
               [ tx; Ast.Int 2; Ast.Int i; Ast.Str "ben"; Ast.Str "dt";
                 Ast.Str "st"; Ast.Int 2; Ast.Str "5" ];
             Engine.add_fact db "erc20_transfer"
               [ tx; Ast.Int 1; Ast.Int 1; Ast.Str "st"; Ast.Str "u";
                 Ast.Str "bridge"; Ast.Str "5" ];
             Engine.add_fact db "transaction"
               [ Ast.Int 1000; Ast.Int 1; tx; Ast.Str "u"; Ast.Str "b";
                 Ast.Str "0"; Ast.Int 1; Ast.Str "0" ]
           done;
           Engine.add_fact db "token_mapping"
             [ Ast.Int 1; Ast.Int 2; Ast.Str "st"; Ast.Str "dt" ];
           Engine.add_fact db "bridge_controlled_address"
             [ Ast.Int 1; Ast.Str "bridge" ];
           ignore (Engine.run db { Ast.rules = [ List.nth Rules.core_rules 1 ] })))
  in
  let tests =
    [ keccak_32; keccak_1k; abi_event; uint_mul; uint_divmod; rlp_tx; datalog_1k ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg
      [ Toolkit.Instance.monotonic_clock ]
      (Test.make_grouped ~name:"xcw" tests)
  in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> Printf.printf "%-40s %14.1f ns/run\n" name est
      | _ -> Printf.printf "%-40s (no estimate)\n" name)
    (List.sort compare rows)

let () = monitor_steady_state ()
let () = bench_faults ()

let () =
  Printf.printf
    "\nDone. See EXPERIMENTS.md for the paper-vs-measured record of every\n\
     table and figure.\n"
