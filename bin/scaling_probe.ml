(* Scratch: Engine.run scaling on synthetic bridge-shaped fact bases. *)
module Engine = Xcw_datalog.Engine
module Rules = Xcw_core.Rules
open Xcw_datalog.Ast

let () =
  List.iter
    (fun n ->
      let db = Engine.create_db () in
      Engine.add_fact db "token_mapping" [ Int 1; Int 2; Str "st"; Str "dt" ];
      Engine.add_fact db "bridge_controlled_address" [ Int 1; Str "bridge" ];
      Engine.add_fact db "bridge_controlled_address" [ Int 2; Str "bridgeT" ];
      Engine.add_fact db "bridge_controlled_address" [ Int 2; Str Rules.zero_addr ];
      Engine.add_fact db "cctx_finality" [ Int 1; Int 100 ];
      Engine.add_fact db "cctx_finality" [ Int 2; Int 50 ];
      Engine.add_fact db "wrapped_native_token" [ Int 1; Str "weth" ];
      for i = 0 to n - 1 do
        let stx = Str (Printf.sprintf "s%d" i) and dtx = Str (Printf.sprintf "d%d" i) in
        let amt = Str (string_of_int (1000 + i)) in
        let ben = Str (Printf.sprintf "u%d" (i mod 500)) in
        Engine.add_fact db "sc_token_deposited" [ stx; Int 1; Int i; ben; Str "dt"; Str "st"; Int 2; amt ];
        Engine.add_fact db "erc20_transfer" [ stx; Int 1; Int 0; Str "st"; ben; Str "bridge"; amt ];
        Engine.add_fact db "transaction" [ Int (1000 + i); Int 1; stx; ben; Str "bridge"; Str "0"; Int 1; Str "0" ];
        Engine.add_fact db "tc_token_deposited" [ dtx; Int 1; Int i; ben; Str "dt"; amt ];
        Engine.add_fact db "erc20_transfer" [ dtx; Int 2; Int 0; Str "dt"; Str Rules.zero_addr; ben; amt ];
        Engine.add_fact db "transaction" [ Int (2000 + i); Int 2; dtx; Str "relay"; Str "bridgeT"; Str "0"; Int 1; Str "0" ]
      done;
      let t0 = Unix.gettimeofday () in
      let stats = Engine.run db Rules.program in
      Printf.printf "n=%7d facts=%7d eval=%6.2fs derived=%d\n%!" n
        (6 * n) (Unix.gettimeofday () -. t0) stats.Engine.tuples_derived)
    [ 20_000; 40_000; 80_000 ]
