(* Scratch profiler: time each rule individually on the Ronin fact base. *)
module Engine = Xcw_datalog.Engine
module Rules = Xcw_core.Rules
module Detector = Xcw_core.Detector
module Decoder = Xcw_core.Decoder
module Scenario = Xcw_workload.Scenario
module Bridge = Xcw_bridge.Bridge

let () =
  let scale =
    match Sys.getenv_opt "XCW_SCALE" with Some s -> float_of_string s | None -> 0.05
  in
  let b = Xcw_workload.Ronin.build ~seed:43 ~scale () in
  let input =
    Detector.default_input ~label:"ronin" ~plugin:Decoder.ronin_plugin
      ~config:b.Scenario.config
      ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
      ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
      ~pricing:b.Scenario.pricing
  in
  (* decode only *)
  let t0 = Unix.gettimeofday () in
  let r = Detector.run { input with Detector.i_first_window_withdrawal_id = b.Scenario.first_window_withdrawal_id } in
  Printf.printf "full run: %.2fs (eval %.2fs, facts %d)\n%!" (Unix.gettimeofday () -. t0) r.Detector.report.Xcw_core.Report.eval_seconds r.Detector.report.Xcw_core.Report.total_facts;
  (* now time rule-by-rule on a fresh db *)
  let db2 = Engine.create_db () in
  (* copy EDB facts only: rebuild from decode *)
  let src_client = Xcw_rpc.Client.create (Xcw_rpc.Rpc.create b.Scenario.bridge.Bridge.source.Bridge.chain) in
  let dst_client = Xcw_rpc.Client.create (Xcw_rpc.Rpc.create b.Scenario.bridge.Bridge.target.Bridge.chain) in
  let src = Decoder.decode_chain Decoder.ronin_plugin b.Scenario.config ~role:Decoder.Source src_client b.Scenario.bridge.Bridge.source.Bridge.chain in
  let dst = Decoder.decode_chain Decoder.ronin_plugin b.Scenario.config ~role:Decoder.Target dst_client b.Scenario.bridge.Bridge.target.Bridge.chain in
  ignore (Xcw_core.Facts.load_all db2 (Xcw_core.Config.to_facts b.Scenario.config));
  List.iter
    (fun rd -> ignore (Xcw_core.Facts.load_all db2 rd.Decoder.rd_facts))
    (src @ dst);
  List.iter
    (fun rule ->
      let t = Unix.gettimeofday () in
      ignore (Engine.run db2 { Xcw_datalog.Ast.rules = [ rule ] });
      let dt = Unix.gettimeofday () -. t in
      if dt > 0.2 then
        Format.printf "%.3fs  %a@." dt Xcw_datalog.Ast.pp_rule rule)
    Rules.all_rules
