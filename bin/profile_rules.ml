(* Per-rule profiler built on the Xcw_obs registry: a single evaluation
   run records every rule's wall time into labelled histograms and every
   stratum into spans; this program only formats what the registry
   collected.  XCW_SCALE scales the Ronin fact base (default 0.05). *)
module Engine = Xcw_datalog.Engine
module Rules = Xcw_core.Rules
module Decoder = Xcw_core.Decoder
module Scenario = Xcw_workload.Scenario
module Bridge = Xcw_bridge.Bridge
module Metrics = Xcw_obs.Metrics
module Span = Xcw_obs.Span

let () =
  let scale =
    match Sys.getenv_opt "XCW_SCALE" with Some s -> float_of_string s | None -> 0.05
  in
  let b = Xcw_workload.Ronin.build ~seed:43 ~scale () in
  Engine.recommended_gc_setup ();
  (* Decode the scenario (fault-free, colocated) into a fresh fact base. *)
  let client chain = Xcw_rpc.Client.create (Xcw_rpc.Rpc.create chain) in
  let src_chain = b.Scenario.bridge.Bridge.source.Bridge.chain in
  let dst_chain = b.Scenario.bridge.Bridge.target.Bridge.chain in
  let src =
    Decoder.decode_chain Decoder.ronin_plugin b.Scenario.config
      ~role:Decoder.Source (client src_chain) src_chain
  in
  let dst =
    Decoder.decode_chain Decoder.ronin_plugin b.Scenario.config
      ~role:Decoder.Target (client dst_chain) dst_chain
  in
  let db = Engine.create_db () in
  ignore (Xcw_core.Facts.load_all db (Xcw_core.Config.to_facts b.Scenario.config));
  List.iter
    (fun rd -> ignore (Xcw_core.Facts.load_all db rd.Decoder.rd_facts))
    (src @ dst);
  (* One run against a dedicated registry and tracer. *)
  let reg = Metrics.create () in
  let tracer = Span.create () in
  Span.set_default tracer;
  let t0 = Unix.gettimeofday () in
  let stats = Engine.run ~metrics:reg db Rules.program in
  let total = Unix.gettimeofday () -. t0 in
  Printf.printf "evaluation: %.3fs — %d rule evaluations, %d tuples derived\n"
    total stats.Engine.rules_evaluated stats.Engine.tuples_derived;
  let rules = Array.of_list Rules.all_rules in
  let rows =
    Metrics.snapshot reg
    |> List.filter_map (fun (m : Metrics.metric) ->
           if m.Metrics.m_name <> "xcw_datalog_rule_seconds" then None
           else
             match
               (List.assoc_opt "rule" m.Metrics.m_labels, m.Metrics.m_value)
             with
             | Some label, Metrics.V_histogram h ->
                 let idx =
                   int_of_string (String.sub label 0 (String.index label ':'))
                 in
                 Some (idx, h.Metrics.h_sum, h.Metrics.h_count)
             | _ -> None)
    |> List.sort (fun (_, a, _) (_, b, _) -> compare (b : float) a)
  in
  print_newline ();
  List.iter
    (fun (idx, sum, count) ->
      if idx >= 0 && idx < Array.length rules then
        Format.printf "%.3fs (%d evals)  %a@." sum count Xcw_datalog.Ast.pp_rule
          rules.(idx))
    rows;
  print_newline ();
  List.iter
    (fun (r : Span.record) ->
      if r.Span.sp_name = "datalog.stratum" then
        Printf.printf "stratum %-3s %-11s %.3fs\n"
          (Option.value ~default:"?" (List.assoc_opt "stratum" r.Span.sp_attrs))
          (if List.assoc_opt "recursive" r.Span.sp_attrs = Some "true" then
             "(recursive)"
           else "")
          r.Span.sp_duration)
    (Span.records tracer)
