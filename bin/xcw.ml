(* The XChainWatcher command-line interface.

   Subcommands:
   - [detect]     generate a bridge scenario and run anomaly detection
   - [fleet]      supervise a whole fleet of bridges at once
   - [rules]      print the cross-chain Datalog rules
   - [config]     print a bridge's static configuration (JSON)
   - [timeframes] print the data-extraction timeframes (Table 1)

   Examples:
     xcw detect --bridge nomad --scale 0.05 --report report.json
     xcw detect --bridge ronin --latency realistic
     xcw detect --attack forged-proof --seed 3
     xcw detect --exit stale-root
     xcw fleet --bridges nomad,ronin,generic,attack-forged-proof --generics 4
     xcw fleet --bridges exit,exit-slashing-evasion --rounds 12
     xcw rules *)

module Detector = Xcw_core.Detector
module Decoder = Xcw_core.Decoder
module Report = Xcw_core.Report
module Rules = Xcw_core.Rules
module Config = Xcw_core.Config
module Latency = Xcw_rpc.Latency
module Scenario = Xcw_workload.Scenario
module Attacks = Xcw_workload.Attacks
module Generic = Xcw_workload.Generic
module Bridge = Xcw_bridge.Bridge
module Metrics = Xcw_obs.Metrics
module Span = Xcw_obs.Span
module Sink = Xcw_obs.Sink
module Supervisor = Xcw_fleet.Supervisor
module Bus = Xcw_fleet.Bus
module Presets = Xcw_fleet.Presets
open Cmdliner

type bridge_kind = Nomad | Ronin

let bridge_conv =
  let parse = function
    | "nomad" -> Ok Nomad
    | "ronin" -> Ok Ronin
    | s -> Error (`Msg (Printf.sprintf "unknown bridge %S (nomad|ronin)" s))
  in
  let print fmt b =
    Format.pp_print_string fmt (match b with Nomad -> "nomad" | Ronin -> "ronin")
  in
  Arg.conv (parse, print)

let bridge_arg =
  Arg.(
    required
    & opt (some bridge_conv) None
    & info [ "b"; "bridge" ] ~docv:"BRIDGE" ~doc:"Bridge scenario: nomad or ronin.")

(* [detect] accepts either --bridge or --attack, so its bridge flag is
   optional and the pairing is validated in the command body. *)
let opt_bridge_arg =
  Arg.(
    value
    & opt (some bridge_conv) None
    & info [ "b"; "bridge" ] ~docv:"BRIDGE"
        ~doc:"Bridge scenario: nomad or ronin.  Exactly one of $(b,--bridge), \
              $(b,--attack) and $(b,--exit) must be given.")

let attack_conv =
  let parse s =
    match Attacks.class_of_string s with
    | Some c -> Ok c
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown attack class %S \
                 (forged-proof|validator-takeover|unauthorized-mint|inconsistent-event)"
                s))
  in
  let print fmt c = Format.pp_print_string fmt (Attacks.class_slug c) in
  Arg.conv (parse, print)

let attack_arg =
  Arg.(
    value
    & opt (some attack_conv) None
    & info [ "attack" ] ~docv:"CLASS"
        ~doc:
          "Attack-pack scenario from the 2023 hack corpus: inject $(docv) \
           (forged-proof, validator-takeover, unauthorized-mint or \
           inconsistent-event) into benign generic-bridge traffic and \
           detect it.  Mutually exclusive with $(b,--bridge).")

let exit_conv =
  let parse = function
    | "benign" -> Ok `Benign
    | s -> (
        match Report.acc_class_of_slug s with
        | Some c -> Ok (`Class c)
        | None ->
            Error
              (`Msg
                 (Printf.sprintf
                    "unknown exit lane %S \
                     (benign|stale-root|forged-exit-proof|root-divergence|net-outflow|slashing-evasion)"
                    s)))
  in
  let print fmt = function
    | `Benign -> Format.pp_print_string fmt "benign"
    | `Class c -> Format.pp_print_string fmt (Report.acc_class_slug c)
  in
  Arg.conv (parse, print)

let exit_arg =
  Arg.(
    value
    & opt (some exit_conv) None
    & info [ "exit" ] ~docv:"LANE"
        ~doc:
          "Exit-bridge scenario with pessimistic accounting (DESIGN.md \
           §15): $(docv) is benign (deposit/seal/sign/claim traffic only) \
           or an injected accounting-violation class (stale-root, \
           forged-exit-proof, root-divergence, net-outflow or \
           slashing-evasion).  Mutually exclusive with $(b,--bridge) and \
           $(b,--attack).")

let scale_arg =
  Arg.(
    value & opt float 0.05
    & info [ "scale" ] ~docv:"S"
        ~doc:
          "Benign-traffic volume as a fraction of the paper's counts; \
           injected anomalies keep their exact paper counts.")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"N" ~doc:"Deterministic scenario seed.")

let latency_arg =
  Arg.(
    value
    & opt (enum [ ("colocated", `Colocated); ("realistic", `Realistic) ]) `Colocated
    & info [ "latency" ] ~docv:"PROFILE"
        ~doc:
          "Simulated RPC latency profile: colocated (negligible) or \
           realistic (the paper's calibrated per-bridge node latencies).")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE" ~doc:"Write the full report as JSON to $(docv).")

let dataset_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dataset" ] ~docv:"FILE"
        ~doc:"Write the labeled cctx dataset as JSON to $(docv).")

let rules_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rules" ] ~docv:"FILE"
        ~doc:
          "Load the cross-chain rules from a Souffle-style .dl file \
           instead of the compiled-in set (see rules/cross_chain_rules.dl).")

let load_rules = function
  | None -> Xcw_core.Rules.program
  | Some path ->
      let ic = open_in path in
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      close_in ic;
      { Xcw_datalog.Ast.rules = Xcw_datalog.Parser.parse_program src }

let dataset_csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dataset-csv" ] ~docv:"FILE"
        ~doc:"Write the labeled cctx dataset as CSV to $(docv).")

let dump_facts_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-facts" ] ~docv:"DIR"
        ~doc:
          "Write the full fact base (input and derived relations) as \
           tab-separated .facts files in $(docv) — Souffle's input \
           format, for cross-validation against the original artifact.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write every metric recorded during the run (RPC, decoder, \
           Datalog engine, monitor) as a Prometheus text exposition to \
           $(docv).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the recorded spans (one JSON object per line: name, \
           attributes, start, duration, nesting depth) to $(docv).")

let endpoints_arg =
  Arg.(
    value & opt int 1
    & info [ "endpoints" ] ~docv:"N"
        ~doc:
          "Independent RPC endpoints per chain.  Above 1 every read goes \
           through a Byzantine-tolerant k-of-n quorum pool that \
           cross-validates responses by content.")

let quorum_arg =
  Arg.(
    value & opt int 2
    & info [ "quorum" ] ~docv:"K"
        ~doc:
          "Endpoints that must agree on a response's exact content before \
           the pool serves it (ignored with a single endpoint).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for Datalog rule evaluation and log decoding.  \
           The default 1 runs the sequential code paths untouched; any \
           value produces an identical report (the cross-chain program's \
           strata are non-recursive, so even derivation order is \
           reproduced bit-for-bit).")

let apply_jobs input jobs =
  if jobs < 1 then begin
    Format.eprintf "xcw: --jobs %d must be at least 1@." jobs;
    exit 2
  end;
  if jobs = 1 then input else { input with Detector.i_ndomains = jobs }

let byzantine_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "byzantine" ] ~docv:"IDX"
        ~doc:
          "Make endpoint $(docv) (0-based, on both chains) a lying node: it \
           answers every request but corrupts roughly 30% of its responses \
           in each Byzantine mode.  Requires --endpoints > 1.")

(* Thread the quorum flags into a detector input; exits with a usage
   error when the combination cannot form a valid pool. *)
let apply_quorum input endpoints quorum byzantine =
  if endpoints <= 1 then input
  else begin
    if quorum < 1 || quorum > endpoints then begin
      Format.eprintf "xcw: --quorum %d out of range for %d endpoints@." quorum
        endpoints;
      exit 2
    end;
    (match byzantine with
    | Some j when j < 0 || j >= endpoints ->
        Format.eprintf "xcw: --byzantine %d out of range for %d endpoints@." j
          endpoints;
        exit 2
    | _ -> ());
    let efs =
      match byzantine with
      | None -> []
      | Some j ->
          List.init endpoints (fun i ->
              if i = j then Some Xcw_rpc.Fault.byzantine else None)
    in
    {
      input with
      Detector.i_endpoints = endpoints;
      i_quorum = quorum;
      i_source_endpoint_faults = efs;
      i_target_endpoint_faults = efs;
    }
  end

let pp_pool_health label (h : Xcw_rpc.Pool.health) =
  let state_name = function
    | Xcw_rpc.Pool.Active -> "active"
    | Xcw_rpc.Pool.Probation -> "probation"
    | Xcw_rpc.Pool.Quarantined -> "quarantined"
  in
  Format.printf
    "%s pool (quorum %d/%d): %d requests, %d disagreements, %d refusals@."
    label h.Xcw_rpc.Pool.ph_quorum
    (List.length h.Xcw_rpc.Pool.ph_endpoints)
    h.Xcw_rpc.Pool.ph_requests h.Xcw_rpc.Pool.ph_disagreements
    h.Xcw_rpc.Pool.ph_refusals;
  List.iter
    (fun (er : Xcw_rpc.Pool.endpoint_report) ->
      Format.printf
        "  endpoint %d: %-11s trust %.3f  (%d agreed, %d disagreed, %d \
         errors, %d quarantines)@."
        er.Xcw_rpc.Pool.er_index
        (state_name er.Xcw_rpc.Pool.er_state)
        er.Xcw_rpc.Pool.er_trust er.Xcw_rpc.Pool.er_agreements
        er.Xcw_rpc.Pool.er_disagreements er.Xcw_rpc.Pool.er_errors
        er.Xcw_rpc.Pool.er_quarantines)
    h.Xcw_rpc.Pool.ph_endpoints;
  match h.Xcw_rpc.Pool.ph_suspects with
  | [] -> ()
  | s ->
      Format.printf "  suspected Byzantine endpoint(s): %s@."
        (String.concat ", " (List.map string_of_int s))

(* Flush the default registry / tracer after a subcommand body ran. *)
let write_observability metrics_file trace_file =
  Option.iter
    (fun path ->
      Sink.write_prometheus_file ~path (Metrics.snapshot (Metrics.default ()));
      Format.printf "metrics written to %s@." path)
    metrics_file;
  Option.iter
    (fun path ->
      Sink.write_spans_file ~path (Span.records (Span.default ()));
      Format.printf "trace written to %s@." path)
    trace_file

let build_scenario kind scale seed =
  match kind with
  | Nomad -> (Xcw_workload.Nomad.build ~seed ~scale (), Decoder.nomad_plugin)
  | Ronin -> (Xcw_workload.Ronin.build ~seed ~scale (), Decoder.ronin_plugin)

let detect_cmd =
  let run kind attack exit_lane scale seed latency endpoints quorum byzantine
      jobs report_file dataset_file dataset_csv_file rules_file dump_facts_dir
      metrics_file trace_file =
    let module Exit_bridge = Xcw_workload.Exit_bridge in
    let reseed_exit (base : Exit_bridge.base) =
      {
        base with
        Exit_bridge.b_seed = seed;
        b_base = { base.Exit_bridge.b_base with Generic.g_seed = seed };
      }
    in
    let built, plugin, label =
      match (kind, attack, exit_lane) with
      | Some _, Some _, _ | Some _, _, Some _ | _, Some _, Some _ ->
          Format.eprintf
            "xcw: --bridge, --attack and --exit are mutually exclusive@.";
          exit 2
      | None, None, None ->
          Format.eprintf
            "xcw: one of --bridge, --attack or --exit is required@.";
          exit 2
      | Some kind, None, None ->
          let built, plugin = build_scenario kind scale seed in
          (built, plugin, (match kind with Nomad -> "nomad" | Ronin -> "ronin"))
      | None, Some cls, None ->
          let spec = Attacks.default_spec cls in
          let spec =
            {
              spec with
              Attacks.a_base = { spec.Attacks.a_base with Generic.g_seed = seed };
            }
          in
          let inj = Attacks.build spec in
          ( inj.Attacks.inj_built,
            Decoder.ronin_plugin,
            "attack-" ^ Attacks.class_slug cls )
      | None, None, Some `Benign ->
          ( Exit_bridge.build_benign (reseed_exit Exit_bridge.default_base),
            Decoder.ronin_plugin,
            "exit" )
      | None, None, Some (`Class cls) ->
          let spec = Exit_bridge.default_spec cls in
          let spec =
            { spec with Exit_bridge.e_base = reseed_exit spec.Exit_bridge.e_base }
          in
          ( (Exit_bridge.build spec).Exit_bridge.inj_built,
            Decoder.ronin_plugin,
            "exit-" ^ Report.acc_class_slug cls )
    in
    let profile =
      match (latency, kind) with
      | `Colocated, _ -> Latency.colocated_profile
      | `Realistic, Some Nomad -> Latency.nomad_profile
      | `Realistic, _ -> Latency.ronin_profile
    in
    let input =
      Detector.default_input ~label ~plugin ~config:built.Scenario.config
        ~source_chain:built.Scenario.bridge.Bridge.source.Bridge.chain
        ~target_chain:built.Scenario.bridge.Bridge.target.Bridge.chain
        ~pricing:built.Scenario.pricing
    in
    let input =
      {
        input with
        Detector.i_source_profile = profile;
        i_target_profile = profile;
        i_first_window_withdrawal_id = built.Scenario.first_window_withdrawal_id;
        i_program = load_rules rules_file;
      }
    in
    let input = apply_quorum input endpoints quorum byzantine in
    let input = apply_jobs input jobs in
    let result = Detector.run input in
    Format.printf "%a@." Report.pp result.Detector.report;
    Option.iter
      (fun (sh, th) ->
        Format.printf "@.";
        pp_pool_health "source" sh;
        pp_pool_health "target" th)
      result.Detector.pool_health;
    let summary = Detector.attack_summary ~source_chain_id:1 result in
    if summary.Detector.as_events > 0 then
      Format.printf
        "@.ATTACK SIGNATURE: %d forged withdrawal event(s) across %d \
         transaction(s), $%.2fM with no correspondence on the other chain@."
        summary.Detector.as_events summary.Detector.as_transactions
        (summary.Detector.as_total_usd /. 1e6);
    Option.iter
      (fun f ->
        let oc = open_out f in
        output_string oc (Xcw_util.Json.to_string (Report.to_json result.Detector.report));
        close_out oc;
        Format.printf "report written to %s@." f)
      report_file;
    Option.iter
      (fun f ->
        let oc = open_out f in
        output_string oc (Report.dataset_json result.Detector.report);
        close_out oc;
        Format.printf "cctx dataset written to %s@." f)
      dataset_file;
    Option.iter
      (fun f ->
        let oc = open_out f in
        output_string oc (Report.dataset_csv result.Detector.report);
        close_out oc;
        Format.printf "cctx dataset (CSV) written to %s@." f)
      dataset_csv_file;
    Option.iter
      (fun dir ->
        Xcw_datalog.Engine.dump_facts result.Detector.db ~dir;
        Format.printf "fact base dumped to %s/*.facts@." dir)
      dump_facts_dir;
    write_observability metrics_file trace_file
  in
  Cmd.v
    (Cmd.info "detect" ~doc:"Generate a bridge scenario and run anomaly detection")
    Term.(
      const run $ opt_bridge_arg $ attack_arg $ exit_arg $ scale_arg $ seed_arg
      $ latency_arg $ endpoints_arg $ quorum_arg $ byzantine_arg $ jobs_arg
      $ report_arg $ dataset_arg $ dataset_csv_arg $ rules_file_arg
      $ dump_facts_arg $ metrics_arg $ trace_arg)

let state_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "Durable state directory.  Polls are checkpointed to a \
           crash-safe WAL + snapshot store under $(docv); re-running \
           with the same directory recovers the last durable state and \
           resumes instead of starting over.  Alerts already durable at \
           the crash boundary are re-delivered once on startup \
           (dedupable by their sequence number).")

let monitor_cmd =
  let run kind scale seed interval_hours endpoints quorum byzantine jobs
      state_dir metrics_file trace_file =
    let built, plugin = build_scenario kind scale seed in
    let module Monitor = Xcw_core.Monitor in
    let module Chain = Xcw_chain.Chain in
    let input =
      Detector.default_input
        ~label:(match kind with Nomad -> "nomad" | Ronin -> "ronin")
        ~plugin ~config:built.Scenario.config
        ~source_chain:built.Scenario.bridge.Bridge.source.Bridge.chain
        ~target_chain:built.Scenario.bridge.Bridge.target.Bridge.chain
        ~pricing:built.Scenario.pricing
    in
    let input =
      {
        input with
        Detector.i_first_window_withdrawal_id =
          built.Scenario.first_window_withdrawal_id;
      }
    in
    let input = apply_quorum input endpoints quorum byzantine in
    let input = apply_jobs input jobs in
    let ckpt =
      Option.map (fun dir -> Monitor.Checkpoint.open_ ~dir ()) state_dir
    in
    let mon = Monitor.create ?checkpoint:ckpt input in
    (match Monitor.replayed mon with
    | [] -> ()
    | replay ->
        Format.printf
          "recovered %d durable poll(s); re-delivering %d alert(s) from \
           the last durable poll (dedup by seq <= %d)@."
          (Monitor.polls mon) (List.length replay) (Monitor.alert_seq mon));
    let src_blocks =
      Chain.all_blocks built.Scenario.bridge.Bridge.source.Bridge.chain
    in
    let dst_blocks =
      Chain.all_blocks built.Scenario.bridge.Bridge.target.Bridge.chain
    in
    let cursor_at blocks t =
      List.fold_left
        (fun acc (blk : Xcw_evm.Types.block) ->
          if blk.Xcw_evm.Types.b_timestamp <= t then
            max acc blk.Xcw_evm.Types.b_number
          else acc)
        0 blocks
    in
    let t1, t2 = built.Scenario.window in
    let interval = interval_hours * 3600 in
    let t = ref t1 in
    let total_alerts = ref 0 in
    Format.printf
      "replaying the %s timeline through the streaming monitor (poll every %d h)@."
      input.Detector.i_label interval_hours;
    while !t <= t2 do
      let alerts =
        Monitor.poll mon
          ~source_block:(cursor_at src_blocks !t)
          ~target_block:(cursor_at dst_blocks !t)
      in
      List.iter
        (fun (a : Monitor.alert) ->
          incr total_alerts;
          if a.Monitor.al_anomaly.Report.a_usd_value > 10_000.0 then
            Format.printf "t=%d ALERT [%s] %s: %s ($%.0f)@." !t
              a.Monitor.al_rule
              (Report.class_name a.Monitor.al_anomaly.Report.a_class)
              a.Monitor.al_anomaly.Report.a_tx_hash
              a.Monitor.al_anomaly.Report.a_usd_value)
        alerts;
      t := !t + interval
    done;
    Format.printf
      "@.%d alerts over %d polls (only alerts above $10K were printed)@."
      !total_alerts (Monitor.polls mon);
    Option.iter
      (fun (sh, th) ->
        Format.printf "@.";
        pp_pool_health "source" sh;
        pp_pool_health "target" th)
      (Monitor.pool_health mon);
    Option.iter Monitor.Checkpoint.close ckpt;
    write_observability metrics_file trace_file
  in
  let interval_arg =
    Arg.(
      value & opt int 24
      & info [ "interval" ] ~docv:"HOURS" ~doc:"Polling interval in hours.")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Replay a scenario through the streaming monitor, printing alerts")
    Term.(
      const run $ bridge_arg $ scale_arg $ seed_arg $ interval_arg
      $ endpoints_arg $ quorum_arg $ byzantine_arg $ jobs_arg
      $ state_dir_arg $ metrics_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* fleet: run N bridge monitors under one supervisor                   *)

let fleet_state_name = function
  | Supervisor.Active -> "active"
  | Supervisor.Degraded -> "degraded"
  | Supervisor.Probation -> "probation"
  | Supervisor.Parked { until; term } ->
      Printf.sprintf "parked(until r%d, term %d)" until term

let print_fleet_table (h : Supervisor.health) =
  List.iter
    (fun (lh : Supervisor.lane_health) ->
      Format.printf "  [%d] %-24s %-10s polls %-3d alerts %-4d lag %-5d%s@."
        lh.Supervisor.lh_index lh.Supervisor.lh_name
        (fleet_state_name lh.Supervisor.lh_state)
        lh.Supervisor.lh_polls lh.Supervisor.lh_alerts lh.Supervisor.lh_lag
        (match lh.Supervisor.lh_last_error with
        | Some e when lh.Supervisor.lh_failures > 0 || lh.Supervisor.lh_trips > 0
          ->
            "  last: " ^ e
        | _ -> ""))
    h.Supervisor.fh_lanes

let fleet_cmd =
  let run bridges generics scale seed rounds sync_rounds jobs fault_lanes
      byz_lanes budget window state_dir metrics_file trace_file =
    let kinds =
      List.map
        (fun slug ->
          match Presets.kind_of_string slug with
          | Ok k -> k
          | Error msg ->
              Format.eprintf "xcw: %s@." msg;
              exit 2)
        (String.split_on_char ',' bridges |> List.filter (( <> ) ""))
    in
    let kinds =
      kinds @ List.init generics (fun _ -> Presets.Generic_kind Generic.default_spec)
    in
    if kinds = [] then begin
      Format.eprintf "xcw: empty fleet (--bridges or --generics required)@.";
      exit 2
    end;
    let n = List.length kinds in
    let check_lane what = function
      | j when j < 0 || j >= n ->
          Format.eprintf "xcw: %s %d out of range for %d lanes@." what j n;
          exit 2
      | _ -> ()
    in
    List.iter (check_lane "--fault-lane") fault_lanes;
    List.iter (check_lane "--byzantine-lane") byz_lanes;
    (* Unique lane names: duplicate kinds get a #k suffix. *)
    let seen = Hashtbl.create 8 in
    let lanes =
      List.mapi
        (fun i kind ->
          let label = Presets.kind_slug kind in
          let name =
            match Hashtbl.find_opt seen label with
            | None ->
                Hashtbl.replace seen label 1;
                label
            | Some k ->
                Hashtbl.replace seen label (k + 1);
                Printf.sprintf "%s#%d" label (k + 1)
          in
          let tweak input =
            let input =
              { input with Detector.i_rpc_seed = seed + (i * 101) }
            in
            let input =
              if List.mem i fault_lanes then
                {
                  input with
                  Detector.i_source_fault = Some Xcw_rpc.Fault.moderate;
                  i_target_fault = Some Xcw_rpc.Fault.moderate;
                }
              else input
            in
            if List.mem i byz_lanes then
              (* Two liars out of three put the 2-of-3 quorum past its
                 f < k guarantee: when the independently-seeded liars
                 happen to agree they outvote the honest endpoint, so the
                 lane's own stream corrupts (false alerts, divergence
                 stalls) — but the damage stays in-lane; the rest of the
                 fleet keeps its cadence and its exact solo streams. *)
              let efs =
                [ None; Some Xcw_rpc.Fault.byzantine; Some Xcw_rpc.Fault.byzantine ]
              in
              {
                input with
                Detector.i_endpoints = 3;
                i_quorum = 2;
                i_source_endpoint_faults = efs;
                i_target_endpoint_faults = efs;
              }
            else input
          in
          Presets.lane ~scale ~seed:(seed + (i * 17)) ~rounds_to_sync:sync_rounds
            ~name ~tweak kind)
        kinds
    in
    let sup =
      Supervisor.create ~ndomains:jobs ~dedup_window:window
        ?poll_budget:budget ?state_dir lanes
    in
    Format.printf "fleet of %d bridge lane(s), %d round(s), --jobs %d@." n
      rounds jobs;
    (match Supervisor.replayed sup with
    | [] -> ()
    | replay ->
        Format.printf
          "recovered %d durable round(s); re-delivering %d alert(s) from \
           the last durable round (dedup by fa_seq)@."
          (Supervisor.rounds sup) (List.length replay));
    for _ = 1 to rounds do
      let emitted = Supervisor.poll sup in
      let h = Supervisor.health sup in
      Format.printf "@.round %d/%d  emitted +%d  collapsed %d  parked %d  lag %d@."
        h.Supervisor.fh_rounds rounds (List.length emitted)
        h.Supervisor.fh_collapsed h.Supervisor.fh_parked h.Supervisor.fh_lag;
      print_fleet_table h;
      List.iter
        (fun (fa : Bus.fleet_alert) ->
          let a = fa.Bus.fa_alert.Xcw_core.Monitor.al_anomaly in
          if a.Report.a_usd_value > 10_000.0 then
            Format.printf "  ALERT #%d [%s] %s %s: %s ($%.0f)@." fa.Bus.fa_seq
              fa.Bus.fa_bridge fa.Bus.fa_alert.Xcw_core.Monitor.al_rule
              (Report.class_name a.Report.a_class)
              a.Report.a_tx_hash a.Report.a_usd_value)
        emitted
    done;
    let h = Supervisor.health sup in
    Format.printf
      "@.alert bus: %d emitted, %d cross-bridge duplicates collapsed@."
      h.Supervisor.fh_emitted h.Supervisor.fh_collapsed;
    List.iter
      (fun (fa : Bus.fleet_alert) ->
        if List.length fa.Bus.fa_origins > 1 then
          Format.printf "  #%d first seen on %s, also raised by %s@."
            fa.Bus.fa_seq fa.Bus.fa_bridge
            (String.concat ", "
               (List.tl fa.Bus.fa_origins
               |> List.map (fun (o : Bus.origin) ->
                      Printf.sprintf "%s (round %d)" o.Bus.o_bridge o.Bus.o_round))))
      (Supervisor.alerts sup);
    write_observability metrics_file trace_file
  in
  let bridges_arg =
    Arg.(
      value
      & opt string "nomad,ronin,generic,attack-forged-proof"
      & info [ "bridges" ] ~docv:"LIST"
          ~doc:
            "Comma-separated lane kinds: nomad, ronin, generic, \
             attack-<class> (e.g. attack-forged-proof), exit, or \
             exit-<class> (e.g. exit-slashing-evasion).  Each lane gets \
             its own scenario seed.")
  in
  let generics_arg =
    Arg.(
      value & opt int 0
      & info [ "generics" ] ~docv:"N"
          ~doc:"Append $(docv) extra generic-bridge lanes to the fleet.")
  in
  let rounds_arg =
    Arg.(
      value & opt int 12
      & info [ "rounds" ] ~docv:"N" ~doc:"Fleet poll rounds to run.")
  in
  let sync_rounds_arg =
    Arg.(
      value & opt int 8
      & info [ "sync-rounds" ] ~docv:"N"
          ~doc:
            "Rounds over which each lane's schedule replays its scenario \
             window before holding at the chain heads.")
  in
  let fleet_jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains polling lanes concurrently.  Fleet output is \
             identical at any value (lanes are polled in index order and \
             merged deterministically).")
  in
  let fault_lane_arg =
    Arg.(
      value & opt_all int []
      & info [ "fault-lane" ] ~docv:"IDX"
          ~doc:
            "Inject the moderate RPC fault plan into lane $(docv) \
             (repeatable).  The lane degrades and catches up; the rest \
             of the fleet keeps its cadence.")
  in
  let byz_lane_arg =
    Arg.(
      value & opt_all int []
      & info [ "byzantine-lane" ] ~docv:"IDX"
          ~doc:
            "Give lane $(docv) a 3-endpoint/2-quorum pool with two \
             Byzantine endpoints — past the f < k guarantee, so \
             agreeing lies can outvote the honest endpoint.  The lane's \
             own stream corrupts or stalls; the rest of the fleet is \
             untouched (repeatable).")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"BLOCKS"
          ~doc:
            "Per-round poll budget: each lane's cursors advance at most \
             $(docv) blocks per side per round.")
  in
  let window_arg =
    Arg.(
      value & opt int 16
      & info [ "dedup-window" ] ~docv:"ROUNDS"
          ~doc:
            "Alert-bus dedup horizon: identical signatures from several \
             bridges within $(docv) rounds collapse into one alert.")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run a configured fleet of bridge monitors under one supervisor \
          with per-bridge fault isolation and a unified alert bus")
    Term.(
      const run $ bridges_arg $ generics_arg $ scale_arg $ seed_arg
      $ rounds_arg $ sync_rounds_arg $ fleet_jobs_arg $ fault_lane_arg
      $ byz_lane_arg $ budget_arg $ window_arg $ state_dir_arg
      $ metrics_arg $ trace_arg)

let rules_cmd =
  let run () =
    Format.printf "XChainWatcher cross-chain rules (%d total)@.@." Rules.rule_count;
    List.iter
      (fun r -> Format.printf "%a@.@." Xcw_datalog.Ast.pp_rule r)
      Rules.all_rules
  in
  Cmd.v
    (Cmd.info "rules" ~doc:"Print the cross-chain Datalog rules")
    Term.(const run $ const ())

let config_cmd =
  let run kind scale seed =
    let built, _ = build_scenario kind scale seed in
    print_endline (Config.to_string built.Scenario.config)
  in
  Cmd.v
    (Cmd.info "config" ~doc:"Print a bridge's static configuration as JSON")
    Term.(const run $ bridge_arg $ scale_arg $ seed_arg)

let timeframes_cmd =
  let run () =
    List.iter
      (fun tf -> Format.printf "%a@." Xcw_workload.Timeframes.pp tf)
      Xcw_workload.Timeframes.rows
  in
  Cmd.v
    (Cmd.info "timeframes" ~doc:"Print the data-extraction timeframes (Table 1)")
    Term.(const run $ const ())

let () =
  let doc = "logic-driven anomaly detection for cross-chain bridges" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "xcw" ~version:"1.0.0" ~doc)
          [
            detect_cmd; monitor_cmd; fleet_cmd; rules_cmd; config_cmd;
            timeframes_cmd;
          ]))
