(* Scratch: load vs eval breakdown, boxed vs interned, on the
   throughput bench's Nomad-shaped workload. *)
module Engine = Xcw_datalog.Engine
module Boxed = Xcw_datalog.Boxed
module F = Xcw_core.Facts
module Rules = Xcw_core.Rules
module U256 = Xcw_uint256.Uint256

let facts_for ~rounds =
  let src_token = "0x6b175474e89094c44da98b954eedeac495271d0f" in
  let dst_token = "0xc234a67a4f840e61ade794be47de455361b52413" in
  let bridge_s = "0x88a69b4e698a4b090df6cf5bd7b2d47325ad30a3" in
  let bridge_t = "0xb70588b1a51f847d13158ff18e9cac861df5fb00" in
  let statics =
    [
      F.Token_mapping { src_chain_id = 1; dst_chain_id = 2; src_token; dst_token };
      F.Bridge_controlled_address { chain_id = 1; address = bridge_s };
      F.Bridge_controlled_address { chain_id = 2; address = bridge_t };
      F.Bridge_controlled_address { chain_id = 2; address = Rules.zero_addr };
      F.Cctx_finality { chain_id = 1; finality_seconds = 100 };
      F.Cctx_finality { chain_id = 2; finality_seconds = 50 };
      F.Wrapped_native_token { chain_id = 1; token = src_token };
    ]
  in
  let per_round i =
    let stx = Printf.sprintf "0x%056xaa%06x" i (i land 0xffffff) in
    let dtx = Printf.sprintf "0x%056xbb%06x" i (i land 0xffffff) in
    let ben = Printf.sprintf "0x00000000000000000000000000000000000%05x" (i mod 997) in
    let amount = U256.of_int (1_000_000 + i) in
    [
      F.Sc_token_deposited
        { tx_hash = stx; event_index = 1; deposit_id = i; beneficiary = ben;
          dst_token; orig_token = src_token; dst_chain_id = 2; amount };
      F.Erc20_transfer
        { tx_hash = stx; chain_id = 1; event_index = 0; contract = src_token;
          from_ = ben; to_ = bridge_s; amount };
      F.Transaction
        { timestamp = 1_000 + i; chain_id = 1; tx_hash = stx; from_ = ben;
          to_ = bridge_s; value = U256.zero; status = 1; fee = U256.zero };
      F.Tc_token_deposited
        { tx_hash = dtx; event_index = 1; deposit_id = i; beneficiary = ben;
          dst_token; amount };
      F.Erc20_transfer
        { tx_hash = dtx; chain_id = 2; event_index = 0; contract = dst_token;
          from_ = Rules.zero_addr; to_ = ben; amount };
      F.Transaction
        { timestamp = 2_000 + rounds + i; chain_id = 2; tx_hash = dtx;
          from_ = bridge_t; to_ = bridge_t; value = U256.zero; status = 1;
          fee = U256.zero };
    ]
  in
  statics @ List.concat_map per_round (List.init rounds Fun.id)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let () =
  Engine.recommended_gc_setup ();
  let rounds = int_of_string Sys.argv.(1) in
  let facts = facts_for ~rounds in
  Gc.full_major ();
  let t_load_i, idb =
    time (fun () ->
        let db = Engine.create_db () in
        ignore (F.load_all db facts);
        db)
  in
  let g0 = Gc.quick_stat () in
  let t_eval_i, istats = time (fun () -> Engine.run idb Rules.program) in
  let g1 = Gc.quick_stat () in
  Printf.printf
    "eval gc: minor_words=%.0fM promoted=%.0fM minor_cols=%d major_cols=%d\n%!"
    ((g1.Gc.minor_words -. g0.Gc.minor_words) /. 1e6)
    ((g1.Gc.promoted_words -. g0.Gc.promoted_words) /. 1e6)
    (g1.Gc.minor_collections - g0.Gc.minor_collections)
    (g1.Gc.major_collections - g0.Gc.major_collections);
  let t_eval_i2, _ = time (fun () -> Engine.run idb Rules.program) in
  Printf.printf "interned re-run (joins only, no inserts): %.3fs\n%!" t_eval_i2;
  Gc.full_major ();
  let t_load_b, bdb =
    time (fun () ->
        let db = Boxed.create_db () in
        List.iter
          (fun f ->
            let pred, tuple = F.to_tuple f in
            ignore (Boxed.insert_fact db pred tuple))
          facts;
        db)
  in
  let t_eval_b, bderived = time (fun () -> Boxed.run bdb Rules.program) in
  Printf.printf
    "rounds=%d facts=%d\n\
     interned: load=%.3fs eval=%.3fs derived=%d\n\
     boxed:    load=%.3fs eval=%.3fs derived=%d\n"
    rounds (List.length facts) t_load_i t_eval_i
    istats.Engine.tuples_derived t_load_b t_eval_b bderived;
  (* Per-rule cost of the interned pass, from the default registry. *)
  let module M = Xcw_obs.Metrics in
  let rows =
    List.filter_map
      (fun (m : M.metric) ->
        match (m.M.m_name, m.M.m_value) with
        | "xcw_datalog_rule_seconds", M.V_histogram h ->
            Some (h.M.h_sum, m.M.m_labels)
        | _ -> None)
      (M.snapshot (M.default ()))
  in
  List.iter
    (fun (s, labels) ->
      Printf.printf "  %7.3fs %s\n" s
        (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)))
    (List.sort (fun (a, _) (b, _) -> compare b a) rows)
