#!/usr/bin/env bash
# Stress run of the differential suites: parallel sequential-equivalence,
# datalog incremental properties, the boxed-vs-interned representation
# differential (random programs through both engines — same relations,
# derived counts and TSV bytes at --jobs 1/2/4), the RPC fault/quorum
# net, the attack-pack cross-product (class x fault/quorum x jobs,
# plus the twin-differential generator properties), the exit-bridge
# accounting net (Merkle proof-mutation properties plus its own class
# x fault/quorum x jobs cross-product), and the fleet suite
# (bus dedup, breaker lifecycle, solo-vs-fleet isolation differential,
# --jobs determinism over random traffic), each at XCW_STRESS x their
# default qcheck case counts (default 10x) — plus the full-matrix fleet
# bench (4/8/16 bridges x clean/moderate/mixed fault plans via
# XCW_FLEET_FULL=1) and, via the @crash alias, the exhaustive
# durable-store crash sweep (XCW_CRASH_FULL=1: every WAL/snapshot write
# point of a 3-lane fleet, restarted stream asserted byte-identical to
# the uninterrupted run).
#
# Equivalent to `dune build @stress`; this wrapper exists so the knob is
# discoverable and overridable:
#
#   tools/stress.sh            # 10x case counts
#   XCW_STRESS=50 tools/stress.sh
#
# Deliberately not part of the default `dune runtest` — at 10x counts the
# differential properties take minutes, which is the point: they explore
# far more random programs, op scripts and fault plans than the tier-1
# gate can afford.
set -eu
cd "$(dirname "$0")/.."

export XCW_STRESS="${XCW_STRESS:-10}"
echo "stress: running differential suites at ${XCW_STRESS}x case counts"
exec dune build @stress
