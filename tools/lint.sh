#!/usr/bin/env bash
# Format lint: ocamlformat in check mode over every OCaml source in
# lib/, bin/, bench/ and test/.  Invoked via `dune build @lint` (and
# from @runtest); skips successfully when ocamlformat is not installed,
# so minimal build environments are not broken by an optional tool.
set -u

if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "lint: ocamlformat not found; skipping the format check"
  exit 0
fi

status=0
while IFS= read -r f; do
  if ! ocamlformat --check "$f" >/dev/null 2>&1; then
    echo "lint: $f is not formatted (fix with: ocamlformat -i $f)"
    status=1
  fi
done < <(find lib bin bench test \( -name '*.ml' -o -name '*.mli' \) | sort)

if [ "$status" -eq 0 ]; then
  echo "lint: all sources formatted"
fi
exit $status
