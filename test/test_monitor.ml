(* Tests for the streaming monitor: incremental decoding, alert
   de-duplication, and detection latency on an attack scenario — the
   observability gap of Figure 1 closed to one polling interval. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Chain = Xcw_chain.Chain
module Bridge = Xcw_bridge.Bridge
module Detector = Xcw_core.Detector
module Monitor = Xcw_core.Monitor
module Report = Xcw_core.Report
module T = Xcw_testlib

let u = U256.of_int

(* Shared scenario infrastructure lives in test/testlib (also used by
   the fault-injection suite). *)
let make_bridge = T.make_bridge
let monitor_input = T.monitor_input ?label:None
let user_with_tokens = T.user_with_tokens
let cur = T.cur

let no_alerts_on_benign_traffic =
  Alcotest.test_case "benign flows raise no alerts across polls" `Quick
    (fun () ->
      let b, m = make_bridge () in
      let mon = Monitor.create (monitor_input b) in
      let user = user_with_tokens b m "mon-u1" (u 1000) in
      let d =
        Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
          ~amount:(u 400) ~beneficiary:user
      in
      ignore (Bridge.complete_deposit b ~deposit:d);
      let sb, tb = cur b in
      let alerts = Monitor.poll mon ~source_block:sb ~target_block:tb in
      Alcotest.(check int) "no alerts after a completed deposit" 0
        (List.length alerts);
      (* A withdrawal round-trip is clean too. *)
      let w =
        Bridge.request_withdrawal b ~user ~dst_token:m.Bridge.m_dst_token
          ~amount:(u 100) ~beneficiary:user
      in
      ignore (Bridge.execute_withdrawal b ~withdrawal:w);
      let sb, tb = cur b in
      let alerts2 = Monitor.poll mon ~source_block:sb ~target_block:tb in
      Alcotest.(check int) "no alerts after a completed withdrawal" 0
        (List.length alerts2))

let attack_detected_at_next_poll =
  Alcotest.test_case "a forged withdrawal is alerted at the next poll" `Quick
    (fun () ->
      let b, m = make_bridge () in
      let mon = Monitor.create (monitor_input b) in
      let user = user_with_tokens b m "mon-u2" (u 100_000) in
      let d =
        Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
          ~amount:(u 100_000) ~beneficiary:user
      in
      ignore (Bridge.complete_deposit b ~deposit:d);
      let sb, tb = cur b in
      Alcotest.(check int) "clean before attack" 0
        (List.length (Monitor.poll mon ~source_block:sb ~target_block:tb));
      (* The attack. *)
      Bridge.compromise_validators b ~keys:2;
      let attacker = Address.of_seed "mon-attacker" in
      Chain.fund b.Bridge.source.Bridge.chain attacker (U256.of_tokens ~decimals:18 1);
      Chain.advance_time b.Bridge.source.Bridge.chain 600;
      ignore
        (Bridge.forged_withdrawal b ~attacker ~src_token:m.Bridge.m_src_token
           ~amount:(u 100_000) ~withdrawal_id:777);
      let sb, tb = cur b in
      let alerts = Monitor.poll mon ~source_block:sb ~target_block:tb in
      Alcotest.(check int) "exactly one alert" 1 (List.length alerts);
      let a = List.hd alerts in
      Alcotest.(check string) "rule 8" "8. CCTX_ValidWithdrawal" a.Monitor.al_rule;
      Alcotest.(check bool) "classified as no-correspondence" true
        (a.Monitor.al_anomaly.Report.a_class = Report.No_correspondence);
      Alcotest.(check (float 1.0)) "valued" 100_000.0
        a.Monitor.al_anomaly.Report.a_usd_value;
      (* The same anomaly is not re-alerted. *)
      let alerts2 = Monitor.poll mon ~source_block:sb ~target_block:tb in
      Alcotest.(check int) "no duplicate alerts" 0 (List.length alerts2))

let transient_unmatched_not_poisoning =
  Alcotest.test_case
    "a deposit pending relay alerts once, then the match clears state"
    `Quick (fun () ->
      (* A deposit observed before its completion looks unmatched; the
         monitor's non-monotonic re-evaluation must retract it silently
         once the relay lands (alerts are only for NEW anomalies;
         retractions simply disappear from the report). *)
      let b, m = make_bridge () in
      let mon = Monitor.create (monitor_input b) in
      let user = user_with_tokens b m "mon-u3" (u 500) in
      let d =
        Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
          ~amount:(u 500) ~beneficiary:user
      in
      let sb, tb = cur b in
      let alerts1 = Monitor.poll mon ~source_block:sb ~target_block:tb in
      (* The pending deposit IS reported as unmatched at this point. *)
      Alcotest.(check int) "pending deposit alerted" 1 (List.length alerts1);
      ignore (Bridge.complete_deposit b ~deposit:d);
      let sb, tb = cur b in
      ignore (Monitor.poll mon ~source_block:sb ~target_block:tb);
      match Monitor.last_report mon with
      | Some report ->
          Alcotest.(check int) "report is clean after the match" 0
            (Report.total_anomalies report)
      | None -> Alcotest.fail "no report")

let incremental_decode_caches =
  Alcotest.test_case "receipts are decoded exactly once across polls" `Quick
    (fun () ->
      let b, m = make_bridge () in
      let mon = Monitor.create (monitor_input b) in
      let user = user_with_tokens b m "mon-u4" (u 100) in
      ignore
        (Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
           ~amount:(u 100) ~beneficiary:user);
      let sb, tb = cur b in
      ignore (Monitor.poll mon ~source_block:sb ~target_block:tb);
      let facts_after_first = Monitor.facts_cached mon in
      ignore (Monitor.poll mon ~source_block:sb ~target_block:tb);
      Alcotest.(check int) "no re-decoding" facts_after_first
        (Monitor.facts_cached mon);
      Alcotest.(check int) "two polls" 2 (Monitor.polls mon))

let block_cursor_respected =
  Alcotest.test_case "receipts beyond the cursor stay invisible" `Quick
    (fun () ->
      let b, m = make_bridge () in
      let mon = Monitor.create (monitor_input b) in
      let user = user_with_tokens b m "mon-u5" (u 100) in
      let sb0, tb0 = cur b in
      ignore
        (Bridge.direct_token_transfer_to_bridge b ~user
           ~src_token:m.Bridge.m_src_token ~amount:(u 100));
      (* Poll with the OLD cursor: the anomaly is not yet visible. *)
      let alerts = Monitor.poll mon ~source_block:sb0 ~target_block:tb0 in
      Alcotest.(check int) "not seen yet" 0 (List.length alerts);
      let sb, tb = cur b in
      let alerts2 = Monitor.poll mon ~source_block:sb ~target_block:tb in
      Alcotest.(check int) "seen at the new cursor" 1 (List.length alerts2))

let final_report_matches_batch_detector =
  Alcotest.test_case "monitor's final report equals the batch detector's"
    `Quick (fun () ->
      let b, m = make_bridge () in
      let input = monitor_input b in
      let mon = Monitor.create input in
      let user = user_with_tokens b m "mon-u6" (u 10_000) in
      (* Mixed traffic: a complete round-trip, a stuck withdrawal and a
         direct transfer. *)
      let d =
        Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
          ~amount:(u 5_000) ~beneficiary:user
      in
      ignore (Bridge.complete_deposit b ~deposit:d);
      Chain.advance_time b.Bridge.target.Bridge.chain 600;
      let w =
        Bridge.request_withdrawal b ~user ~dst_token:m.Bridge.m_dst_token
          ~amount:(u 1_000) ~beneficiary:user
      in
      ignore (Bridge.execute_withdrawal b ~withdrawal:w);
      ignore
        (Bridge.request_withdrawal b ~user ~dst_token:m.Bridge.m_dst_token
           ~amount:(u 500) ~beneficiary:user);
      ignore
        (Bridge.direct_token_transfer_to_bridge b ~user
           ~src_token:m.Bridge.m_src_token ~amount:(u 100));
      (* Poll in two steps, then compare against a one-shot detector. *)
      let sb, tb = cur b in
      ignore (Monitor.poll mon ~source_block:(sb / 2) ~target_block:(tb / 2));
      ignore (Monitor.poll mon ~source_block:sb ~target_block:tb);
      let batch = Detector.run input in
      match Monitor.last_report mon with
      | Some streamed ->
          Alcotest.(check bool) "identical reports" true
            (T.report_signature streamed
            = T.report_signature batch.Xcw_core.Detector.report)
      | None -> Alcotest.fail "no report")

let cursor_out_of_order_regression =
  Alcotest.test_case "cursor does not skip out-of-order receipts" `Quick
    (fun () ->
      (* Regression: the old cursor advanced by [seen + decoded count],
         so a receipt above the block cursor sitting BEFORE already-
         decoded ones in list order was skipped forever.  Blocks
         [1;2;10;3;4]: polling up to block 4 must decode indices
         0,1,3,4 and still deliver index 2 when the cursor reaches
         block 10. *)
      let blocks = [| 1; 2; 10; 3; 4 |] in
      let c = Monitor.Cursor.create () in
      let take up_to =
        Monitor.Cursor.take c
          ~block_of:(fun i -> blocks.(i))
          ~len:(Array.length blocks) ~up_to
      in
      Alcotest.(check (list int)) "blocks <= 4 decoded" [ 0; 1; 3; 4 ] (take 4);
      Alcotest.(check int) "four decoded" 4 (Monitor.Cursor.decoded_count c);
      Alcotest.(check (list int)) "repolling decodes nothing" [] (take 4);
      Alcotest.(check (list int)) "the held-back receipt arrives later" [ 2 ]
        (take 10);
      Alcotest.(check int) "all decoded exactly once" 5
        (Monitor.Cursor.decoded_count c))

(* Randomized differential test: on arbitrary generic-bridge traffic,
   the incremental monitor and a from-scratch monitor must emit the
   same alerts at every staged poll and converge to the batch
   detector's report. *)
let prop_incremental_equals_scratch =
  QCheck.Test.make ~count:8
    ~name:"incremental monitor = from-scratch monitor = batch detector"
    (T.arb_ops ~max_len:6)
    (fun ops ->
      let b, m = make_bridge () in
      let input = monitor_input b in
      let inc = Monitor.create ~incremental:true input in
      let scr = Monitor.create ~incremental:false input in
      let user = user_with_tokens b m "mon-prop" (u 1_000_000) in
      T.seed_completed_deposit b m user;
      let ok = ref true in
      List.iteri
        (fun i op ->
          T.apply_op b m user i op;
          let sb, tb = cur b in
          let a1 = Monitor.poll inc ~source_block:sb ~target_block:tb in
          let a2 = Monitor.poll scr ~source_block:sb ~target_block:tb in
          if T.alert_keys a1 <> T.alert_keys a2 then ok := false)
        ops;
      let batch = Detector.run input in
      (match (Monitor.last_report inc, Monitor.last_report scr) with
      | Some r1, Some r2 ->
          if T.report_signature r1 <> T.report_signature r2 then ok := false;
          if T.report_signature r1 <> T.report_signature batch.Detector.report
          then ok := false
      | _ -> ok := false);
      !ok)

let () =
  Alcotest.run "monitor"
    [
      ( "streaming",
        [
          no_alerts_on_benign_traffic;
          attack_detected_at_next_poll;
          transient_unmatched_not_poisoning;
          incremental_decode_caches;
          block_cursor_respected;
          final_report_matches_batch_detector;
          cursor_out_of_order_regression;
          QCheck_alcotest.to_alcotest prop_incremental_equals_scratch;
        ] );
    ]
