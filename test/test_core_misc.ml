(* Tests for Config (JSON round-trip, fact generation), Pricing, and
   the workload generators' determinism. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Chain = Xcw_chain.Chain
module Bridge = Xcw_bridge.Bridge
module Events = Xcw_bridge.Events
module Config = Xcw_core.Config
module Facts = Xcw_core.Facts
module Pricing = Xcw_core.Pricing
module Scenario = Xcw_workload.Scenario

let sample_config () =
  {
    Config.bridge_name = "sample";
    source_chain_id = 1;
    target_chain_id = 100;
    bridge_controlled =
      [ (1, Address.of_seed "b1"); (100, Address.of_seed "b2"); (100, Address.zero) ];
    token_mappings =
      [
        {
          Config.src_chain_id = 1;
          dst_chain_id = 100;
          src_token = Address.of_seed "tok-s";
          dst_token = Address.of_seed "tok-t";
        };
      ];
    finality = [ (1, 78); (100, 45) ];
    wrapped_native = [ (1, Address.of_seed "weth"); (100, Address.of_seed "wnat") ];
  }

let config_json_roundtrip =
  Alcotest.test_case "config JSON round-trip" `Quick (fun () ->
      let c = sample_config () in
      let c' = Config.of_string (Config.to_string c) in
      Alcotest.(check string) "name" c.Config.bridge_name c'.Config.bridge_name;
      Alcotest.(check int) "mappings" 1 (List.length c'.Config.token_mappings);
      Alcotest.(check bool) "identical" true (c = c'))

let config_fact_counts =
  Alcotest.test_case "static loader emits one fact per config entry" `Quick
    (fun () ->
      let facts = Config.to_facts (sample_config ()) in
      let count pred =
        List.length (List.filter (fun f -> Facts.relation_name f = pred) facts)
      in
      Alcotest.(check int) "bridge addresses" 3 (count Facts.r_bridge_controlled_address);
      Alcotest.(check int) "mappings" 1 (count Facts.r_token_mapping);
      Alcotest.(check int) "finality" 2 (count Facts.r_cctx_finality);
      Alcotest.(check int) "wrapped" 2 (count Facts.r_wrapped_native_token))

let config_rejects_bad_json =
  Alcotest.test_case "config loader rejects malformed JSON" `Quick (fun () ->
      (try
         ignore (Config.of_string "{}");
         Alcotest.fail "expected Config_error"
       with Config.Config_error _ -> ());
      try
        ignore (Config.of_string "not json at all");
        Alcotest.fail "expected Parse_error"
      with Xcw_util.Json.Parse_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Pricing                                                             *)

let pricing_basics =
  Alcotest.test_case "usd_value scales by decimals and price" `Quick
    (fun () ->
      let p = Pricing.create () in
      Pricing.register p ~chain_id:1 ~token:"0xAA" ~usd_per_token:2.0 ~decimals:6;
      Alcotest.(check (float 1e-6)) "3 tokens" 6.0
        (Pricing.usd_value p ~chain_id:1 ~token:"0xaa" (U256.of_int 3_000_000));
      Alcotest.(check (float 1e-6)) "unknown token is zero" 0.0
        (Pricing.usd_value p ~chain_id:1 ~token:"0xbb" (U256.of_int 1_000_000));
      Alcotest.(check bool) "reputable" true (Pricing.is_reputable p ~chain_id:1 ~token:"0xAA");
      Alcotest.(check bool) "chain-scoped" false
        (Pricing.is_reputable p ~chain_id:2 ~token:"0xaa"))

let pricing_native =
  Alcotest.test_case "native pricing uses 18 decimals" `Quick (fun () ->
      let p = Pricing.create ~native_price:2000.0 () in
      Alcotest.(check (float 1e-6)) "1.5 ETH" 3000.0
        (Pricing.usd_value_native p (U256.of_tokens ~decimals:17 15)))

let pricing_str_amounts =
  Alcotest.test_case "usd_value_str parses decimal strings" `Quick (fun () ->
      let p = Pricing.create () in
      Pricing.register p ~chain_id:1 ~token:"0xcc" ~usd_per_token:1.0 ~decimals:18;
      Alcotest.(check (float 1e-6)) "5 tokens" 5.0
        (Pricing.usd_value_str p ~chain_id:1 ~token:"0xcc" "5000000000000000000"))

(* ------------------------------------------------------------------ *)
(* Workload determinism                                                *)

let nomad_deterministic =
  Alcotest.test_case "Nomad scenario is seed-deterministic" `Slow (fun () ->
      let b1 = Xcw_workload.Nomad.build ~seed:3 ~scale:0.005 () in
      let b2 = Xcw_workload.Nomad.build ~seed:3 ~scale:0.005 () in
      let sig_of (b : Scenario.built) =
        ( Chain.transaction_count b.Scenario.bridge.Bridge.source.Bridge.chain,
          Chain.transaction_count b.Scenario.bridge.Bridge.target.Bridge.chain,
          b.Scenario.ground_truth.Scenario.gt_erc20_deposits,
          List.length b.Scenario.incomplete_withdrawals )
      in
      Alcotest.(check bool) "identical signatures" true (sig_of b1 = sig_of b2);
      (* Chains are byte-identical: same last block hash. *)
      let last_hash (b : Scenario.built) =
        match Chain.all_blocks b.Scenario.bridge.Bridge.source.Bridge.chain |> List.rev with
        | blk :: _ -> blk.Xcw_evm.Types.b_hash
        | [] -> ""
      in
      Alcotest.(check bool) "identical chains" true (last_hash b1 = last_hash b2))

let nomad_seeds_differ =
  Alcotest.test_case "different seeds give different scenarios" `Slow
    (fun () ->
      let b1 = Xcw_workload.Nomad.build ~seed:3 ~scale:0.005 () in
      let b2 = Xcw_workload.Nomad.build ~seed:4 ~scale:0.005 () in
      let last_hash (b : Scenario.built) =
        match Chain.all_blocks b.Scenario.bridge.Bridge.source.Bridge.chain |> List.rev with
        | blk :: _ -> blk.Xcw_evm.Types.b_hash
        | [] -> ""
      in
      Alcotest.(check bool) "chains differ" false (last_hash b1 = last_hash b2))

let scaled_counts =
  Alcotest.test_case "Scenario.scaled keeps exact zeros and minimums" `Quick
    (fun () ->
      Alcotest.(check int) "zero stays zero" 0 (Scenario.scaled 0.1 0);
      Alcotest.(check int) "small counts keep min" 1 (Scenario.scaled 0.001 5);
      Alcotest.(check int) "scaling rounds" 50 (Scenario.scaled 0.1 500))

let token_units_positive =
  QCheck.Test.make ~name:"token_units never returns zero" ~count:200
    QCheck.(pair (float_range 0.000001 10_000_000.0) (int_range 0 18))
    (fun (usd, decimals) ->
      let spec =
        {
          Scenario.ts_name = "X";
          ts_symbol = "X";
          ts_decimals = decimals;
          ts_usd = 1.0;
          ts_weight = 1;
        }
      in
      not (U256.is_zero (Scenario.token_units spec usd)))

let ronin_ground_truth_exact_counts =
  Alcotest.test_case "Ronin injects the paper's exact anomaly counts" `Slow
    (fun () ->
      let b = Xcw_workload.Ronin.build ~seed:5 ~scale:0.005 () in
      let g = b.Scenario.ground_truth in
      Alcotest.(check int) "10 deposit finality" 10 g.Scenario.gt_deposit_finality_violations;
      Alcotest.(check int) "22 withdrawal finality" 22 g.Scenario.gt_withdrawal_finality_violations;
      Alcotest.(check int) "3 phishing" 3 g.Scenario.gt_phishing_transfers;
      Alcotest.(check int) "80 direct" 80 g.Scenario.gt_direct_transfers;
      Alcotest.(check int) "2 attack events" 2 g.Scenario.gt_attack_events;
      Alcotest.(check int) "2 rogue withdraw events" 2 g.Scenario.gt_withdrawal_mapping_violations;
      Alcotest.(check bool) "attack > $100M" true (g.Scenario.gt_attack_usd > 1.0e8))

let nomad_ground_truth_exact_counts =
  Alcotest.test_case "Nomad injects the paper's exact anomaly counts" `Slow
    (fun () ->
      let b = Xcw_workload.Nomad.build ~seed:5 ~scale:0.005 () in
      let g = b.Scenario.ground_truth in
      Alcotest.(check int) "14 phishing" 14 g.Scenario.gt_phishing_transfers;
      Alcotest.(check int) "25 direct" 25 g.Scenario.gt_direct_transfers;
      Alcotest.(check int) "5 finality" 5 g.Scenario.gt_deposit_finality_violations;
      Alcotest.(check int) "3 unparseable" 3 g.Scenario.gt_unparseable_beneficiaries;
      Alcotest.(check int) "7 failed exploits" 7 g.Scenario.gt_failed_exploits;
      Alcotest.(check int) "7 fake-mapping deposits" 7 g.Scenario.gt_deposit_mapping_violations;
      Alcotest.(check int) "2 fake-mapping withdrawals" 2 g.Scenario.gt_withdrawal_mapping_violations;
      Alcotest.(check int) "1 right-padded deposit" 1 g.Scenario.gt_invalid_beneficiary_deposits;
      Alcotest.(check int) "2 outbound phishing" 2 g.Scenario.gt_transfer_from_bridge;
      Alcotest.(check int) "382 attack events" 382 g.Scenario.gt_attack_events;
      Alcotest.(check int) "45 EOAs" 45 g.Scenario.gt_attack_deployer_eoas;
      Alcotest.(check int) "279 sinks" 279 g.Scenario.gt_attack_beneficiaries)

(* ------------------------------------------------------------------ *)
(* Report exports                                                      *)

module Report = Xcw_core.Report

let sample_report () =
  let anomaly cls =
    {
      Report.a_class = cls;
      a_tx_hash = "0xabc";
      a_chain_id = 1;
      a_usd_value = 12.5;
      a_detail = "detail";
    }
  in
  {
    Report.bridge_name = "sample";
    rows =
      [
        {
          Report.rr_rule = "1. SC_ValidNativeTokenDeposit";
          rr_captured = 3;
          rr_anomalies = [ anomaly Report.Phishing_token_transfer ];
        };
      ];
    cctxs =
      [
        {
          Report.c_kind = `Deposit;
          c_src_tx = "0x1";
          c_dst_tx = "0x2";
          c_id = 7;
          c_amount = "1000";
          c_token = "0xtok";
          c_beneficiary = "0xben";
          c_usd_value = 42.0;
          c_start_ts = 100;
          c_end_ts = 1900;
        };
      ];
    attack_rows = [];
    acc_rows = [];
    total_facts = 10;
    decode_seconds = 0.1;
    eval_seconds = 0.2;
    simulated_rpc_seconds = 0.3;
  }

let report_json_valid =
  Alcotest.test_case "report JSON is well-formed and carries the rows" `Quick
    (fun () ->
      let j = Xcw_util.Json.of_string (Xcw_util.Json.to_string (Report.to_json (sample_report ()))) in
      match Xcw_util.Json.member "rules" j with
      | Some (Xcw_util.Json.List [ _ ]) -> ()
      | _ -> Alcotest.fail "missing rules array")

let dataset_csv_shape =
  Alcotest.test_case "dataset CSV has a header plus one row per cctx" `Quick
    (fun () ->
      let csv = Report.dataset_csv (sample_report ()) in
      let lines = String.split_on_char '\n' (String.trim csv) in
      Alcotest.(check int) "2 lines" 2 (List.length lines);
      Alcotest.(check bool) "header" true
        (String.length (List.hd lines) > 0
        && String.sub (List.hd lines) 0 4 = "kind");
      Alcotest.(check bool) "latency column = 1800" true
        (let last = List.nth lines 1 in
         match List.rev (String.split_on_char ',' last) with
         | lat :: _ -> lat = "1800"
         | [] -> false))

let dataset_json_roundtrip =
  Alcotest.test_case "dataset JSON parses back" `Quick (fun () ->
      let j = Xcw_util.Json.of_string (Report.dataset_json (sample_report ())) in
      match Xcw_util.Json.member "cctxs" j with
      | Some (Xcw_util.Json.List [ c ]) ->
          Alcotest.(check (option string)) "kind"
            (Some "deposit")
            (match Xcw_util.Json.member "kind" c with
            | Some (Xcw_util.Json.String s) -> Some s
            | _ -> None)
      | _ -> Alcotest.fail "missing cctxs")

let anomaly_helpers =
  Alcotest.test_case "total/of-class helpers" `Quick (fun () ->
      let r = sample_report () in
      Alcotest.(check int) "total" 1 (Report.total_anomalies r);
      Alcotest.(check int) "by class" 1
        (List.length (Report.anomalies_of_class r Report.Phishing_token_transfer));
      Alcotest.(check int) "other class empty" 0
        (List.length (Report.anomalies_of_class r Report.No_correspondence)))

let () =
  Alcotest.run "core-misc"
    [
      ("config", [ config_json_roundtrip; config_fact_counts; config_rejects_bad_json ]);
      ("pricing", [ pricing_basics; pricing_native; pricing_str_amounts ]);
      ( "report",
        [ report_json_valid; dataset_csv_shape; dataset_json_roundtrip; anomaly_helpers ] );
      ( "workload",
        [
          nomad_deterministic;
          nomad_seeds_differ;
          scaled_counts;
          ronin_ground_truth_exact_counts;
          nomad_ground_truth_exact_counts;
          QCheck_alcotest.to_alcotest token_units_positive;
        ] );
    ]
