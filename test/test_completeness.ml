(* Detector completeness: inject exactly one anomaly (of a randomly
   chosen class) into otherwise protocol-clean traffic, and the
   detector must flag it with the correct classification — and flag
   nothing else.  Together with the soundness suite (benign => zero
   anomalies) this pins the detector's behaviour from both sides. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Chain = Xcw_chain.Chain
module Erc20 = Xcw_chain.Erc20
module Bridge = Xcw_bridge.Bridge
module Events = Xcw_bridge.Events
module Detector = Xcw_core.Detector
module Decoder = Xcw_core.Decoder
module Report = Xcw_core.Report
module Pricing = Xcw_core.Pricing
module Generic = Xcw_workload.Generic
module Scenario = Xcw_workload.Scenario

type injection =
  | Inj_direct_transfer
  | Inj_phishing_token
  | Inj_forged_withdrawal
  | Inj_finality_violation
  | Inj_incomplete_withdrawal
  | Inj_fake_mapping_deposit
  | Inj_failed_exploit

let injections =
  [
    Inj_direct_transfer; Inj_phishing_token; Inj_forged_withdrawal;
    Inj_finality_violation; Inj_incomplete_withdrawal;
    Inj_fake_mapping_deposit; Inj_failed_exploit;
  ]

let expected_class = function
  | Inj_direct_transfer -> Report.Direct_transfer_to_bridge
  | Inj_phishing_token -> Report.Phishing_token_transfer
  | Inj_forged_withdrawal -> Report.No_correspondence
  | Inj_finality_violation -> Report.Finality_violation
  | Inj_incomplete_withdrawal -> Report.No_correspondence
  | Inj_fake_mapping_deposit -> Report.Token_mapping_violation
  | Inj_failed_exploit -> Report.Failed_exploit_attempt

(* How many classified anomalies one injection legitimately yields:
   finality violations are flagged on both chains. *)
let expected_count = function Inj_finality_violation -> 2 | _ -> 1

let inject (b : Scenario.built) injection =
  let bridge = b.Scenario.bridge in
  let src = bridge.Bridge.source and dst = bridge.Bridge.target in
  let rt = List.hd b.Scenario.tokens in
  let token = rt.Scenario.rt_mapping.Bridge.m_src_token in
  let actor = Address.of_seed "completeness-actor" in
  Chain.fund src.Bridge.chain actor (U256.of_tokens ~decimals:18 10);
  Chain.fund dst.Bridge.chain actor (U256.of_tokens ~decimals:18 10);
  (* Synchronize the two chain clocks so cross-chain timing in the
     injection is controlled by the injection alone. *)
  let t0 = max (Chain.now src.Bridge.chain) (Chain.now dst.Bridge.chain) + 3600 in
  Chain.set_time src.Bridge.chain t0;
  Chain.set_time dst.Bridge.chain t0;
  let amount = U256.of_int 5_000 in
  let mint () =
    ignore
      (Chain.submit_tx src.Bridge.chain ~from_:src.Bridge.operator ~to_:token
         ~input:(Erc20.mint_calldata ~to_:actor ~amount)
         ())
  in
  match injection with
  | Inj_direct_transfer ->
      mint ();
      ignore
        (Bridge.direct_token_transfer_to_bridge bridge ~user:actor
           ~src_token:token ~amount)
  | Inj_phishing_token ->
      let fake =
        Erc20.deploy src.Bridge.chain ~from_:actor ~name:"USD Coin"
          ~symbol:"USDC" ~decimals:6 ~owner:actor
      in
      ignore
        (Chain.submit_tx src.Bridge.chain ~from_:actor ~to_:fake
           ~input:(Erc20.mint_calldata ~to_:actor ~amount)
           ());
      ignore
        (Bridge.direct_token_transfer_to_bridge bridge ~user:actor
           ~src_token:fake ~amount)
  | Inj_forged_withdrawal ->
      (* Ensure escrow exists, then compromise and steal it. *)
      mint ();
      let d =
        Bridge.deposit_erc20 bridge ~user:actor ~src_token:token ~amount
          ~beneficiary:actor
      in
      ignore (Bridge.complete_deposit bridge ~deposit:d);
      Bridge.compromise_validators bridge ~keys:9;
      Chain.advance_time src.Bridge.chain 600;
      let r =
        Bridge.forged_withdrawal bridge ~attacker:actor ~src_token:token
          ~amount ~withdrawal_id:987_654
      in
      assert (r.Xcw_evm.Types.r_status = Xcw_evm.Types.Success)
  | Inj_finality_violation ->
      (match bridge.Bridge.acceptance with
      | Bridge.Multisig m -> m.enforce_source_finality <- false
      | Bridge.Optimistic o -> o.enforce_window <- false);
      mint ();
      let d =
        Bridge.deposit_erc20 bridge ~user:actor ~src_token:token ~amount
          ~beneficiary:actor
      in
      ignore (Bridge.complete_deposit bridge ~override_delay:5 ~deposit:d)
  | Inj_incomplete_withdrawal ->
      mint ();
      let d =
        Bridge.deposit_erc20 bridge ~user:actor ~src_token:token ~amount
          ~beneficiary:actor
      in
      ignore (Bridge.complete_deposit bridge ~deposit:d);
      Chain.advance_time dst.Bridge.chain 3600;
      let w =
        Bridge.request_withdrawal bridge ~user:actor
          ~dst_token:rt.Scenario.rt_mapping.Bridge.m_dst_token ~amount
          ~beneficiary:actor
      in
      assert (w.Bridge.w_withdrawal_id <> None)
      (* ...and never execute it on S. *)
  | Inj_fake_mapping_deposit ->
      let fake_dst =
        Erc20.deploy dst.Bridge.chain ~from_:dst.Bridge.operator
          ~name:"Fake Wrapped" ~symbol:"FAKE" ~decimals:18
          ~owner:dst.Bridge.bridge_addr
      in
      ignore
        (Bridge.register_raw_mapping bridge
           ~src_token:(Address.of_seed "unused-src") ~dst_token:fake_dst);
      ignore
        (Bridge.relay_fake_deposit bridge ~beneficiary:actor
           ~dst_token:fake_dst ~amount ~deposit_id:777_777)
  | Inj_failed_exploit ->
      let fake =
        Erc20.deploy dst.Bridge.chain ~from_:actor ~name:"Wrapped ETH"
          ~symbol:"WETH" ~decimals:18 ~owner:actor
      in
      let input =
        Bridge.sel_request_withdrawal
        ^ Xcw_abi.Abi.encode
            [ Xcw_abi.Abi.Type.Address; Xcw_abi.Abi.Type.uint256;
              Xcw_abi.Abi.Type.bytes32 ]
            [
              Xcw_abi.Abi.Value.Address fake;
              Xcw_abi.Abi.Value.Uint amount;
              Xcw_abi.Abi.Value.Fixed_bytes
                (String.make 12 '\000' ^ Address.to_bytes actor);
            ]
      in
      let r =
        Chain.submit_tx dst.Bridge.chain ~from_:actor ~to_:dst.Bridge.bridge_addr
          ~input ()
      in
      assert (r.Xcw_evm.Types.r_status = Xcw_evm.Types.Reverted)

let detect (b : Scenario.built) =
  Detector.run
    (Detector.default_input ~label:"completeness"
       ~plugin:Decoder.ronin_plugin ~config:b.Scenario.config
       ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
       ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
       ~pricing:b.Scenario.pricing)

let run_one ~seed injection =
  let spec =
    {
      Generic.default_spec with
      Generic.g_seed = seed;
      g_erc20_deposits = 6;
      g_native_deposits = 2;
      g_withdrawals = 2;
      g_via_aggregator = 1;
      (* The unmapped-withdrawal probe must revert (Nomad-era check). *)
      g_acceptance = `Multisig;
    }
  in
  let b = Generic.build spec in
  inject b injection;
  let result = detect b in
  let cls = expected_class injection in
  let flagged = Report.anomalies_of_class result.Detector.report cls in
  let total = Report.total_anomalies result.Detector.report in
  (List.length flagged, total)

let injection_name = function
  | Inj_direct_transfer -> "direct transfer"
  | Inj_phishing_token -> "phishing token"
  | Inj_forged_withdrawal -> "forged withdrawal"
  | Inj_finality_violation -> "finality violation"
  | Inj_incomplete_withdrawal -> "incomplete withdrawal"
  | Inj_fake_mapping_deposit -> "fake mapping deposit"
  | Inj_failed_exploit -> "failed exploit probe"

let unit_cases =
  List.map
    (fun injection ->
      Alcotest.test_case
        (Printf.sprintf "%s: flagged with the right class, nothing else"
           (injection_name injection))
        `Quick
        (fun () ->
          let flagged, total = run_one ~seed:99 injection in
          Alcotest.(check int) "correctly classified" (expected_count injection) flagged;
          Alcotest.(check int) "no collateral anomalies" (expected_count injection) total))
    injections

let prop_completeness =
  QCheck.Test.make
    ~name:"every injected anomaly class is flagged, for any seed" ~count:21
    QCheck.(pair (int_range 1 1_000_000) (int_bound (List.length injections - 1)))
    (fun (seed, idx) ->
      let injection = List.nth injections idx in
      let flagged, total = run_one ~seed injection in
      flagged = expected_count injection && total = expected_count injection)

let () =
  Alcotest.run "completeness"
    [
      ("injections", unit_cases);
      ("property", [ QCheck_alcotest.to_alcotest prop_completeness ]);
    ]
