(* Tests for the post-detection analyses: deployer attribution,
   beneficiary balance summaries, and salami-slicing detection. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Chain = Xcw_chain.Chain
module Engine = Xcw_datalog.Engine
module Analysis = Xcw_core.Analysis
module Pricing = Xcw_core.Pricing
module Rules = Xcw_core.Rules
open Xcw_datalog.Ast

let _u = U256.of_int

(* ------------------------------------------------------------------ *)
(* Deployer attribution                                                *)

let deployer_attribution =
  Alcotest.test_case "contracts trace back to their deployer EOAs" `Quick
    (fun () ->
      let c =
        Chain.create ~chain_id:1 ~name:"s" ~finality_seconds:60
          ~genesis_time:1_650_000_000
      in
      let eoa1 = Address.of_seed "an-eoa1" and eoa2 = Address.of_seed "an-eoa2" in
      let c1 = Chain.deploy c ~from_:eoa1 ~label:"sink1" (fun _ -> ()) in
      let c2 = Chain.deploy c ~from_:eoa1 ~label:"sink2" (fun _ -> ()) in
      let c3 = Chain.deploy c ~from_:eoa2 ~label:"sink3" (fun _ -> ()) in
      let plain_eoa = Address.of_seed "an-eoa3" in
      let deployers = Analysis.attribute_deployers c [ c1; c2; c3; plain_eoa ] in
      Alcotest.(check int) "two unique deployers" 2 (List.length deployers);
      Alcotest.(check bool) "eoa1 found" true
        (List.exists (Address.equal eoa1) deployers);
      Alcotest.(check bool) "eoa2 found" true
        (List.exists (Address.equal eoa2) deployers);
      Alcotest.(check bool) "plain EOA not attributed" true
        (not (List.exists (Address.equal plain_eoa) deployers)))

let nomad_attack_deployers =
  Alcotest.test_case "Nomad scenario: 45 deployer EOAs recovered" `Slow
    (fun () ->
      let module Scenario = Xcw_workload.Scenario in
      let module Bridge = Xcw_bridge.Bridge in
      let b = Xcw_workload.Nomad.build ~seed:77 ~scale:0.005 () in
      let result =
        Xcw_core.Detector.run
          (Xcw_core.Detector.default_input ~label:"nomad"
             ~plugin:Xcw_core.Decoder.nomad_plugin ~config:b.Scenario.config
             ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
             ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
             ~pricing:b.Scenario.pricing)
      in
      let beneficiaries =
        Analysis.forged_withdrawal_beneficiaries ~source_chain_id:1
          result.Xcw_core.Detector.report
      in
      Alcotest.(check int) "279 receiving contracts" 279 (List.length beneficiaries);
      let deployers =
        Analysis.attribute_deployers b.Scenario.bridge.Bridge.source.Bridge.chain
          beneficiaries
      in
      Alcotest.(check int) "45 deployer EOAs" 45 (List.length deployers))

(* ------------------------------------------------------------------ *)
(* Balance summary                                                     *)

let balance_summary =
  Alcotest.test_case "balance summary counts zero and sub-gas balances"
    `Quick (fun () ->
      let c =
        Chain.create ~chain_id:1 ~name:"s" ~finality_seconds:60
          ~genesis_time:1_650_000_000
      in
      let a1 = Address.of_seed "bal-1" (* zero *) in
      let a2 = Address.of_seed "bal-2" in
      Chain.fund c a2 (U256.of_float (0.0005 *. 1e18)) (* below gas minimum *);
      let a3 = Address.of_seed "bal-3" in
      Chain.fund c a3 (U256.of_float (2.0 *. 1e18));
      let s = Analysis.beneficiary_balances c [ a1; a2; a3 ] in
      Alcotest.(check int) "total" 3 s.Analysis.bs_total;
      Alcotest.(check int) "zero" 1 s.Analysis.bs_zero_balance;
      Alcotest.(check int) "below minimum (includes zero)" 2
        s.Analysis.bs_below_gas_minimum)

(* ------------------------------------------------------------------ *)
(* Salami slicing                                                      *)

let add_valid_deposit db ~tx ~ts ~ben ~token ~amt =
  Engine.add_fact db Rules.r_sc_valid_erc20_deposit
    [ Str tx; Int ts; Int 1; Int 2; Str token; Str "dst"; Str ben; Str amt; Int 0 ]

let pricing_one_dollar token =
  let p = Pricing.create () in
  Pricing.register p ~chain_id:1 ~token ~usd_per_token:1.0 ~decimals:0;
  p

let salami_detected =
  Alcotest.test_case "many small deposits from one sender are flagged" `Quick
    (fun () ->
      let db = Engine.create_db () in
      let token = "0xsalami-token" in
      (* 20 deposits of $500 each = $10K total, each under the $1K
         threshold. *)
      for k = 1 to 20 do
        add_valid_deposit db
          ~tx:(Printf.sprintf "0xs%d" k)
          ~ts:(1000 + k) ~ben:"0xslicer" ~token ~amt:"500"
      done;
      (* A single large benign deposit from someone else. *)
      add_valid_deposit db ~tx:"0xbig" ~ts:5000 ~ben:"0xwhale" ~token
        ~amt:"100000";
      let candidates =
        Analysis.salami_candidates (db) (pricing_one_dollar token)
      in
      match candidates with
      | [ c ] ->
          Alcotest.(check string) "the slicer" "0xslicer" c.Analysis.sal_sender;
          Alcotest.(check int) "20 events" 20 c.Analysis.sal_events;
          Alcotest.(check (float 1.0)) "total" 10_000.0 c.Analysis.sal_total_usd
      | l -> Alcotest.fail (Printf.sprintf "expected 1 candidate, got %d" (List.length l)))

let salami_thresholds_respected =
  Alcotest.test_case "few or large transfers are not flagged" `Quick
    (fun () ->
      let db = Engine.create_db () in
      let token = "0xtok" in
      (* Only 5 small deposits: below min_events. *)
      for k = 1 to 5 do
        add_valid_deposit db
          ~tx:(Printf.sprintf "0xf%d" k)
          ~ts:(1000 + k) ~ben:"0xfew" ~token ~amt:"900"
      done;
      (* 15 deposits but each is large (above max_single). *)
      for k = 1 to 15 do
        add_valid_deposit db
          ~tx:(Printf.sprintf "0xl%d" k)
          ~ts:(2000 + k) ~ben:"0xlarge" ~token ~amt:"5000"
      done;
      Alcotest.(check int) "no candidates" 0
        (List.length (Analysis.salami_candidates db (pricing_one_dollar token))))

let salami_prop_threshold_monotone =
  QCheck.Test.make
    ~name:"raising min_events never yields more candidates" ~count:50
    QCheck.(pair (int_range 5 30) (int_range 1 20))
    (fun (n_events, bump) ->
      let db = Engine.create_db () in
      let token = "0xtok" in
      for k = 1 to n_events do
        add_valid_deposit db
          ~tx:(Printf.sprintf "0xp%d" k)
          ~ts:(1000 + k) ~ben:"0xsender" ~token ~amt:"500"
      done;
      let p = pricing_one_dollar token in
      let low = Analysis.salami_candidates ~min_events:5 db p in
      let high = Analysis.salami_candidates ~min_events:(5 + bump) db p in
      List.length high <= List.length low)

let () =
  Alcotest.run "analysis"
    [
      ("attribution", [ deployer_attribution; nomad_attack_deployers ]);
      ("balances", [ balance_summary ]);
      ( "salami",
        [
          salami_detected;
          salami_thresholds_respected;
          QCheck_alcotest.to_alcotest salami_prop_threshold_monotone;
        ] );
    ]
