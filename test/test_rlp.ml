(* RLP encoding tests against the canonical examples from the Ethereum
   wiki, plus round-trip properties. *)

open Xcw_rlp

let hex = Xcw_util.Hex.encode

let enc v = hex (Rlp.encode v)

let case name expected v =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name expected (enc v))

(* Canonical vectors from the Ethereum RLP specification. *)
let dog = case "dog" "83646f67" (Rlp.String "dog")
let cat_dog =
  case "[cat, dog]" "c88363617483646f67"
    (Rlp.List [ Rlp.String "cat"; Rlp.String "dog" ])
let empty_string = case "empty string" "80" (Rlp.String "")
let empty_list = case "empty list" "c0" (Rlp.List [])
let integer_0 = case "integer 0" "80" (Rlp.of_int 0)
let integer_15 = case "integer 15" "0f" (Rlp.of_int 15)
let integer_1024 = case "integer 1024" "820400" (Rlp.of_int 1024)
let set_theoretic =
  (* [ [], [[]], [ [], [[]] ] ] *)
  case "set-theoretic representation of three" "c7c0c1c0c3c0c1c0"
    Rlp.(List [ List []; List [ List [] ]; List [ List []; List [ List [] ] ] ])
let lorem =
  case "56-byte string uses long form"
    "b8384c6f72656d20697073756d20646f6c6f722073697420616d65742c20636f6e7365637465747572206164697069736963696e6720656c6974"
    (Rlp.String "Lorem ipsum dolor sit amet, consectetur adipisicing elit")

let single_byte_below_0x80 =
  case "single byte 0x7f encodes as itself" "7f" (Rlp.String "\x7f")

let single_byte_0x80 =
  case "single byte 0x80 gets a length prefix" "8180" (Rlp.String "\x80")

let uint256_encoding =
  Alcotest.test_case "uint256 strips leading zeros" `Quick (fun () ->
      let u = Xcw_uint256.Uint256.of_int 1024 in
      Alcotest.(check string) "1024" "820400" (enc (Rlp.of_uint256 u));
      Alcotest.(check string) "zero" "80" (enc (Rlp.of_uint256 Xcw_uint256.Uint256.zero)))

let decode_rejects_trailing =
  Alcotest.test_case "decode rejects trailing bytes" `Quick (fun () ->
      try
        ignore (Rlp.decode (Rlp.encode (Rlp.String "dog") ^ "x"));
        Alcotest.fail "expected Decode_error"
      with Rlp.Decode_error _ -> ())

let decode_rejects_noncanonical =
  Alcotest.test_case "decode rejects non-canonical single byte" `Quick
    (fun () ->
      (* 0x81 0x05 encodes byte 5 with a superfluous prefix. *)
      try
        ignore (Rlp.decode "\x81\x05");
        Alcotest.fail "expected Decode_error"
      with Rlp.Decode_error _ -> ())

(* Generator of random RLP values. *)
let gen_rlp =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n = 0 then map (fun s -> Rlp.String s) (string_size (0 -- 80))
          else
            frequency
              [
                (2, map (fun s -> Rlp.String s) (string_size (0 -- 80)));
                (1, map (fun xs -> Rlp.List xs) (list_size (0 -- 4) (self (n / 2))));
              ])
        (min n 8))

let prop_roundtrip =
  QCheck.Test.make ~name:"rlp decode . encode = id" ~count:300
    (QCheck.make gen_rlp)
    (fun v -> Rlp.decode (Rlp.encode v) = v)

let prop_int_roundtrip =
  QCheck.Test.make ~name:"int round-trip" ~count:300
    QCheck.(int_bound 1_000_000_000)
    (fun n -> Rlp.to_int (Rlp.decode (Rlp.encode (Rlp.of_int n))) = n)

let prop_encode_injective =
  QCheck.Test.make ~name:"encoding is injective" ~count:200
    (QCheck.pair (QCheck.make gen_rlp) (QCheck.make gen_rlp))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      Rlp.encode a <> Rlp.encode b)

let () =
  Alcotest.run "rlp"
    [
      ( "vectors",
        [
          dog;
          cat_dog;
          empty_string;
          empty_list;
          integer_0;
          integer_15;
          integer_1024;
          set_theoretic;
          lorem;
          single_byte_below_0x80;
          single_byte_0x80;
          uint256_encoding;
          decode_rejects_trailing;
          decode_rejects_noncanonical;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_int_roundtrip; prop_encode_injective ] );
    ]
