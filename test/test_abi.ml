(* ABI encoding/decoding tests: known Solidity encodings, event
   topic/data coding, address padding strictness (paper Section 5.2.2),
   and round-trip properties over random typed values. *)

open Xcw_abi

module U256 = Xcw_uint256.Uint256

let hex = Xcw_util.Hex.encode
let unhex = Xcw_util.Hex.decode

let addr1 = Abi.Value.address_of_hex "0x1111111111111111111111111111111111111111"
let addr2 = Abi.Value.address_of_hex "0x2222222222222222222222222222222222222222"

(* ------------------------------------------------------------------ *)
(* Static encodings (cross-checked with solidity abi.encode)           *)

let encode_uint =
  Alcotest.test_case "encode uint256 69" `Quick (fun () ->
      Alcotest.(check string)
        "69"
        "0000000000000000000000000000000000000000000000000000000000000045"
        (hex (Abi.encode [ Abi.Type.uint256 ] [ Abi.Value.Uint (U256.of_int 69) ])))

let encode_bool =
  Alcotest.test_case "encode bool true" `Quick (fun () ->
      Alcotest.(check string)
        "true"
        "0000000000000000000000000000000000000000000000000000000000000001"
        (hex (Abi.encode [ Abi.Type.Bool ] [ Abi.Value.Bool true ])))

let encode_address =
  Alcotest.test_case "encode address left-pads to 32 bytes" `Quick (fun () ->
      Alcotest.(check string)
        "address"
        "0000000000000000000000001111111111111111111111111111111111111111"
        (hex (Abi.encode [ Abi.Type.Address ] [ addr1 ])))

let encode_dynamic_bytes =
  Alcotest.test_case "encode dynamic bytes" `Quick (fun () ->
      (* offset (0x20), length (3), payload right-padded *)
      Alcotest.(check string)
        "bytes"
        ("0000000000000000000000000000000000000000000000000000000000000020"
       ^ "0000000000000000000000000000000000000000000000000000000000000003"
       ^ "6162630000000000000000000000000000000000000000000000000000000000")
        (hex (Abi.encode [ Abi.Type.Bytes ] [ Abi.Value.Bytes "abc" ])))

let encode_mixed_static_dynamic =
  Alcotest.test_case "head/tail layout for (uint256, string, bool)" `Quick
    (fun () ->
      (* Mirrors the canonical example: heads are word 0 (uint), word 1
         (offset to string = 3*32 = 0x60), word 2 (bool). *)
      let encoded =
        Abi.encode
          [ Abi.Type.uint256; Abi.Type.String_t; Abi.Type.Bool ]
          [ Abi.Value.Uint (U256.of_int 42); Abi.Value.String_v "hi"; Abi.Value.Bool true ]
      in
      Alcotest.(check string)
        "layout"
        ("000000000000000000000000000000000000000000000000000000000000002a"
       ^ "0000000000000000000000000000000000000000000000000000000000000060"
       ^ "0000000000000000000000000000000000000000000000000000000000000001"
       ^ "0000000000000000000000000000000000000000000000000000000000000002"
       ^ "6869000000000000000000000000000000000000000000000000000000000000")
        (hex encoded))

let encode_uint_array =
  Alcotest.test_case "encode uint256[]" `Quick (fun () ->
      let encoded =
        Abi.encode
          [ Abi.Type.Array Abi.Type.uint256 ]
          [ Abi.Value.Array [ Abi.Value.uint_of_int 1; Abi.Value.uint_of_int 2 ] ]
      in
      Alcotest.(check string)
        "array"
        ("0000000000000000000000000000000000000000000000000000000000000020"
       ^ "0000000000000000000000000000000000000000000000000000000000000002"
       ^ "0000000000000000000000000000000000000000000000000000000000000001"
       ^ "0000000000000000000000000000000000000000000000000000000000000002")
        (hex encoded))

let selector_transfer =
  Alcotest.test_case "transfer selector is a9059cbb" `Quick (fun () ->
      Alcotest.(check string)
        "selector" "a9059cbb"
        (hex (Abi.selector "transfer(address,uint256)")))

let selector_balance_of =
  Alcotest.test_case "balanceOf selector is 70a08231" `Quick (fun () ->
      Alcotest.(check string)
        "selector" "70a08231"
        (hex (Abi.selector "balanceOf(address)")))

(* ------------------------------------------------------------------ *)
(* Address padding (paper Section 5.2.2)                               *)

let strict_rejects_right_padded =
  Alcotest.test_case "strict decoding rejects right-padded addresses" `Quick
    (fun () ->
      (* A 32-byte word with the address in the HIGH 20 bytes (the user
         error from the paper: right-padded instead of left-padded). *)
      let word = unhex "1111111111111111111111111111111111111111" ^ String.make 12 '\000' in
      try
        ignore (Abi.decode_address_word ~padding:`Strict word);
        Alcotest.fail "expected Decode_error"
      with Abi.Decode_error _ -> ())

let lenient_accepts_right_padded =
  Alcotest.test_case "lenient decoding accepts right-padded addresses" `Quick
    (fun () ->
      let raw = unhex "1111111111111111111111111111111111111111" in
      let word = raw ^ String.make 12 '\000' in
      Alcotest.(check string)
        "recovered" raw
        (Abi.decode_address_word ~padding:`Lenient word))

let both_reject_garbage =
  Alcotest.test_case "unpadded 32-byte strings rejected either way" `Quick
    (fun () ->
      let word = String.make 32 '\xab' in
      List.iter
        (fun padding ->
          try
            ignore (Abi.decode_address_word ~padding word);
            Alcotest.fail "expected Decode_error"
          with Abi.Decode_error _ -> ())
        [ `Strict; `Lenient ])

(* ------------------------------------------------------------------ *)
(* Events                                                              *)

let transfer_event =
  Abi.Event.
    {
      name = "Transfer";
      params =
        [
          param ~indexed:true "from" Abi.Type.Address;
          param ~indexed:true "to" Abi.Type.Address;
          param "value" Abi.Type.uint256;
        ];
    }

let event_topic0 =
  Alcotest.test_case "Transfer topic0 matches keccak of signature" `Quick
    (fun () ->
      Alcotest.(check string)
        "topic0" "ddf252ad1be2c89b69c2b068fc378daa952ba7f163c4a11628f55a4df523b3ef"
        (hex (Abi.Event.topic0 transfer_event)))

let event_encode_decode =
  Alcotest.test_case "event log round-trip" `Quick (fun () ->
      let values = [ addr1; addr2; Abi.Value.Uint (U256.of_int 12345) ] in
      let topics, data = Abi.Event.encode_log transfer_event values in
      Alcotest.(check int) "3 topics" 3 (List.length topics);
      Alcotest.(check int) "empty-ish data" 32 (String.length data);
      let decoded = Abi.Event.decode_log transfer_event topics data in
      Alcotest.(check int) "3 params" 3 (List.length decoded);
      match decoded with
      | [ ("from", f); ("to", t); ("value", Abi.Value.Uint v) ] ->
          Alcotest.(check string) "from" (Abi.Value.to_address_hex addr1)
            (Abi.Value.to_address_hex f);
          Alcotest.(check string) "to" (Abi.Value.to_address_hex addr2)
            (Abi.Value.to_address_hex t);
          Alcotest.(check string) "value" "12345" (U256.to_decimal_string v)
      | _ -> Alcotest.fail "unexpected decode shape")

let event_wrong_topic0 =
  Alcotest.test_case "decode_log rejects a foreign topic0" `Quick (fun () ->
      let values = [ addr1; addr2; Abi.Value.Uint U256.one ] in
      let topics, data = Abi.Event.encode_log transfer_event values in
      let bad_topics = String.make 32 '\x01' :: List.tl topics in
      try
        ignore (Abi.Event.decode_log transfer_event bad_topics data);
        Alcotest.fail "expected Decode_error"
      with Abi.Decode_error _ -> ())

let nested_dynamic_roundtrips =
  Alcotest.test_case "nested dynamic structures round-trip" `Quick (fun () ->
      let cases =
        [
          ( [ Abi.Type.Array Abi.Type.String_t ],
            [ Abi.Value.Array
                [ Abi.Value.String_v "hello"; Abi.Value.String_v "";
                  Abi.Value.String_v (String.make 40 'x') ] ] );
          ( [ Abi.Type.Tuple [ Abi.Type.uint256; Abi.Type.Bytes ] ],
            [ Abi.Value.Tuple
                [ Abi.Value.uint_of_int 9; Abi.Value.Bytes "payload" ] ] );
          ( [ Abi.Type.Array (Abi.Type.Array Abi.Type.uint256) ],
            [ Abi.Value.Array
                [ Abi.Value.Array [ Abi.Value.uint_of_int 1 ];
                  Abi.Value.Array
                    [ Abi.Value.uint_of_int 2; Abi.Value.uint_of_int 3 ] ] ] );
          ( [ Abi.Type.Fixed_array (Abi.Type.uint256, 3); Abi.Type.Bool ],
            [ Abi.Value.Array
                [ Abi.Value.uint_of_int 10; Abi.Value.uint_of_int 20;
                  Abi.Value.uint_of_int 30 ];
              Abi.Value.Bool false ] );
        ]
      in
      List.iter
        (fun (tys, vals) ->
          Alcotest.(check bool)
            (String.concat "," (List.map Abi.Type.to_string tys))
            true
            (Abi.decode tys (Abi.encode tys vals) = vals))
        cases)

let bridge_event_topic0s_distinct =
  Alcotest.test_case "bridge event signatures are pairwise distinct" `Quick
    (fun () ->
      let module Events = Xcw_bridge.Events in
      let topics =
        [
          Abi.Event.topic0 (Events.sc_token_deposited Events.B_address);
          Abi.Event.topic0 (Events.sc_token_deposited Events.B_bytes32);
          Abi.Event.topic0 Events.tc_token_deposited;
          Abi.Event.topic0 (Events.tc_token_withdrew Events.B_address);
          Abi.Event.topic0 (Events.tc_token_withdrew Events.B_bytes32);
          Abi.Event.topic0 Events.sc_token_withdrew;
          Abi.Event.topic0 Xcw_chain.Erc20.transfer_event;
          Abi.Event.topic0 Xcw_chain.Weth.deposit_event;
          Abi.Event.topic0 Xcw_chain.Weth.withdrawal_event;
        ]
      in
      Alcotest.(check int) "all distinct" (List.length topics)
        (List.length (List.sort_uniq compare topics)))

(* ------------------------------------------------------------------ *)
(* Round-trip properties                                               *)

let gen_value_of_type ty =
  let open QCheck.Gen in
  let gen_addr = map (fun s -> Abi.Value.Address s) (string_size ~gen:char (return 20)) in
  let gen_uint =
    map (fun i -> Abi.Value.Uint (U256.of_int (abs i))) (int_bound 1000000000)
  in
  match ty with
  | Abi.Type.Address -> gen_addr
  | Abi.Type.Bool -> map (fun b -> Abi.Value.Bool b) bool
  | Abi.Type.Bytes -> map (fun s -> Abi.Value.Bytes s) (string_size (0 -- 100))
  | Abi.Type.String_t -> map (fun s -> Abi.Value.String_v s) (string_size (0 -- 100))
  | Abi.Type.Fixed_bytes n ->
      map (fun s -> Abi.Value.Fixed_bytes s) (string_size ~gen:char (return n))
  | _ -> gen_uint

let arb_typed_tuple =
  let open QCheck.Gen in
  let gen_ty =
    oneofl
      [
        Abi.Type.Address;
        Abi.Type.uint256;
        Abi.Type.Bool;
        Abi.Type.Bytes;
        Abi.Type.String_t;
        Abi.Type.Fixed_bytes 32;
        Abi.Type.Fixed_bytes 4;
      ]
  in
  let gen =
    list_size (1 -- 6) gen_ty >>= fun tys ->
    let rec gen_vals = function
      | [] -> return []
      | ty :: rest ->
          gen_value_of_type ty >>= fun value ->
          gen_vals rest >>= fun values -> return (value :: values)
    in
    gen_vals tys >>= fun vals -> return (tys, vals)
  in
  QCheck.make gen

let prop_encode_decode_roundtrip =
  QCheck.Test.make ~name:"abi decode . encode = id on typed tuples" ~count:300
    arb_typed_tuple
    (fun (tys, vals) ->
      (* Zero address words decode as Address; avoid Address values whose
         padding check could fire: addresses here are arbitrary 20-byte
         strings, which always decode under left-padding. *)
      Abi.decode tys (Abi.encode tys vals) = vals)

let prop_event_roundtrip =
  QCheck.Test.make ~name:"event log round-trip (uint payload)" ~count:200
    QCheck.(pair (make Gen.(string_size ~gen:char (return 20))) (pair (make Gen.(string_size ~gen:char (return 20))) (int_bound 1000000)))
    (fun (a, (b, amount)) ->
      let values =
        [ Abi.Value.Address a; Abi.Value.Address b; Abi.Value.Uint (U256.of_int (abs amount)) ]
      in
      let topics, data = Abi.Event.encode_log transfer_event values in
      let decoded = Abi.Event.decode_log transfer_event topics data in
      List.map snd decoded = values)

let () =
  Alcotest.run "abi"
    [
      ( "encoding",
        [
          encode_uint;
          encode_bool;
          encode_address;
          encode_dynamic_bytes;
          encode_mixed_static_dynamic;
          encode_uint_array;
          selector_transfer;
          selector_balance_of;
        ] );
      ( "addresses",
        [ strict_rejects_right_padded; lenient_accepts_right_padded; both_reject_garbage ] );
      ( "events",
        [ event_topic0; event_encode_decode; event_wrong_topic0;
          nested_dynamic_roundtrips; bridge_event_topic0s_distinct ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_encode_decode_roundtrip; prop_event_roundtrip ] );
    ]
