(* Unit tests for the Byzantine-tolerant quorum pool: construction
   invariants, agreement and parallel-latency accounting, per-mode liar
   identification, the quarantine/probation state machine, and the
   honest-laggard head tolerance. *)

module U256 = Xcw_uint256.Uint256
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain
module Bridge = Xcw_bridge.Bridge
module Rpc = Xcw_rpc.Rpc
module Fault = Xcw_rpc.Fault
module Pool = Xcw_rpc.Pool
module T = Xcw_testlib

let u = U256.of_int

let chain_with_txs () =
  let b, m = T.make_bridge () in
  let user = T.user_with_tokens b m "pool-unit" (u 1_000_000) in
  T.seed_completed_deposit b m user;
  let c = b.Bridge.source.Bridge.chain in
  (* Pick a transaction that recorded a call trace (deploys do not), so
     the trace-corruption modes have something to lie about. *)
  let traced =
    List.find
      (fun (r : Types.receipt) -> Chain.trace c r.Types.r_tx_hash <> None)
      (Chain.all_receipts c)
  in
  (c, traced.Types.r_tx_hash)

(* Endpoint [j] gets the j-th plan of [plans] ([None] = faultless). *)
let mk_pool ?policy ~plans c =
  let policy =
    match policy with
    | Some p -> p
    | None -> { Pool.default_policy with Pool.q_quorum = 2 }
  in
  let eps =
    List.mapi
      (fun j fault ->
        match fault with
        | None -> Rpc.create ~seed:(500 + (j * 7919)) c
        | Some f -> Rpc.create ~seed:(500 + (j * 7919)) ~fault:f c)
      plans
  in
  Pool.create ~policy eps

let ep_report pool i = List.nth (Pool.health pool).Pool.ph_endpoints i
let state pool i = (ep_report pool i).Pool.er_state

let create_validates =
  Alcotest.test_case "create rejects empty pools and impossible quorums"
    `Quick (fun () ->
      let c, _ = chain_with_txs () in
      let expect_invalid f =
        match f () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument"
      in
      expect_invalid (fun () -> Pool.create []);
      expect_invalid (fun () ->
          Pool.create
            ~policy:{ Pool.default_policy with Pool.q_quorum = 4 }
            (List.init 3 (fun j -> Rpc.create ~seed:j c)));
      expect_invalid (fun () ->
          Pool.create
            ~policy:{ Pool.default_policy with Pool.q_quorum = 0 }
            [ Rpc.create ~seed:1 c ]))

let honest_agreement =
  Alcotest.test_case "faultless endpoints agree; latency is the slowest leg"
    `Quick (fun () ->
      let c, tx = chain_with_txs () in
      let pool = mk_pool ~plans:[ None; None; None ] c in
      (match (Pool.eth_get_transaction_receipt pool tx).Rpc.value with
      | Ok (Some r) ->
          Alcotest.(check bool) "the chain's receipt" true
            (r.Types.r_tx_hash = tx)
      | _ -> Alcotest.fail "expected the receipt");
      ignore (Pool.eth_block_number pool);
      ignore (Pool.eth_get_logs pool Rpc.default_filter);
      let per_ep = List.map Rpc.total_latency (Pool.endpoints pool) in
      let max_ep = List.fold_left Float.max 0. per_ep in
      let sum_ep = List.fold_left ( +. ) 0. per_ep in
      (* Parallel fan-out: at least as slow as any single endpoint,
         strictly cheaper than serializing all three. *)
      Alcotest.(check bool) "latency >= slowest endpoint" true
        (Pool.total_latency pool >= max_ep -. 1e-9);
      Alcotest.(check bool) "latency < sum of endpoints" true
        (Pool.total_latency pool < sum_ep);
      let h = Pool.health pool in
      Alcotest.(check int) "no disagreements" 0 h.Pool.ph_disagreements;
      Alcotest.(check int) "no refusals" 0 h.Pool.ph_refusals;
      Alcotest.(check (list int)) "no suspects" [] h.Pool.ph_suspects;
      List.iter
        (fun (er : Pool.endpoint_report) ->
          Alcotest.(check bool) "active" true (er.Pool.er_state = Pool.Active);
          Alcotest.(check (float 1e-9)) "full trust" 1.0 er.Pool.er_trust)
        h.Pool.ph_endpoints)

(* One liar per Byzantine mode: the pool keeps serving honest data and
   pins the disagreements on the right endpoint. *)
let liar_identified name plan do_call =
  Alcotest.test_case name `Quick (fun () ->
      let c, tx = chain_with_txs () in
      let pool = mk_pool ~plans:[ None; None; Some plan ] c in
      for _ = 1 to 4 do
        match (do_call pool tx).Rpc.value with
        | Ok _ -> ()
        | Error e ->
            Alcotest.failf "quorum should hold: %s" (Fault.error_to_string e)
      done;
      let h = Pool.health pool in
      Alcotest.(check (list int)) "endpoint 2 is the suspect" [ 2 ]
        h.Pool.ph_suspects;
      Alcotest.(check bool) "its trust dropped" true
        ((ep_report pool 2).Pool.er_trust < 1.0);
      Alcotest.(check int) "honest endpoint 0 clean" 0
        (ep_report pool 0).Pool.er_disagreements;
      Alcotest.(check int) "honest endpoint 1 clean" 0
        (ep_report pool 1).Pool.er_disagreements;
      Alcotest.(check bool) "ground truth: the liar really lied" true
        (Rpc.byzantine_injections (List.nth (Pool.endpoints pool) 2) > 0))

let forger_identified =
  liar_identified "a status forger is identified"
    { Fault.none with Fault.f_byz_receipt_forge = 1.0 }
    (fun pool tx -> Pool.eth_get_transaction_receipt pool tx)

let mutator_identified =
  liar_identified "a log mutator is identified"
    { Fault.none with Fault.f_byz_log_mutate = 1.0 }
    (fun pool tx -> Pool.eth_get_transaction_receipt pool tx)

let dropper_identified =
  liar_identified "a log dropper is identified"
    { Fault.none with Fault.f_byz_log_drop = 1.0 }
    (fun pool _ -> Pool.eth_get_logs pool Rpc.default_filter)

let truncator_identified =
  liar_identified "a trace truncator is identified"
    { Fault.none with Fault.f_byz_trace_truncate = 1.0 }
    (fun pool tx -> Pool.debug_trace_transaction pool tx)

let equivocator_identified =
  liar_identified "a head equivocator is identified"
    { Fault.none with Fault.f_byz_head_equivocate = 1.0 }
    (fun pool _ -> Pool.observe_head pool ~head:100)

(* The full quarantine lifecycle, request by request.  Policy: 3
   strikes to quarantine, a 4-request first term (doubling on relapse),
   2 clean reads to graduate probation. *)
let quarantine_lifecycle =
  Alcotest.test_case
    "strikes -> quarantine -> probation -> relapse -> readmission" `Quick
    (fun () ->
      let c, tx = chain_with_txs () in
      let policy =
        {
          Pool.q_quorum = 2;
          q_suspicion_limit = 3;
          q_quarantine_requests = 4;
          q_probation_agreements = 2;
          q_head_tolerance = 3;
        }
      in
      let liar = { Fault.none with Fault.f_byz_receipt_forge = 1.0 } in
      let pool = mk_pool ~policy ~plans:[ None; None; Some liar ] c in
      let addr = Xcw_evm.Address.of_seed "pool-quarantine" in
      let receipt () = ignore (Pool.eth_get_transaction_receipt pool tx) in
      let balance () = ignore (Pool.eth_get_balance pool addr) in
      (* Requests 1-3: forged receipts -> three strikes -> quarantined. *)
      receipt ();
      receipt ();
      Alcotest.(check bool) "still active after two strikes" true
        (state pool 2 = Pool.Active);
      receipt ();
      Alcotest.(check bool) "quarantined on the third strike" true
        (state pool 2 = Pool.Quarantined);
      Alcotest.(check int) "first quarantine" 1
        (ep_report pool 2).Pool.er_quarantines;
      (* Requests 4-6: the liar sits out; term not yet served. *)
      balance ();
      balance ();
      balance ();
      Alcotest.(check bool) "still quarantined mid-term" true
        (state pool 2 = Pool.Quarantined);
      (* Request 7: term served -> probation; a clean read counts. *)
      balance ();
      Alcotest.(check bool) "released to probation" true
        (state pool 2 = Pool.Probation);
      (* Request 8: lying on probation -> immediate re-quarantine with a
         doubled term (8 requests, ending after request 16). *)
      receipt ();
      Alcotest.(check bool) "probation relapse re-quarantines" true
        (state pool 2 = Pool.Quarantined);
      Alcotest.(check int) "second quarantine" 2
        (ep_report pool 2).Pool.er_quarantines;
      (* Requests 9-15: sitting out the doubled term. *)
      for _ = 9 to 15 do
        balance ()
      done;
      Alcotest.(check bool) "doubled term still running" true
        (state pool 2 = Pool.Quarantined);
      (* Requests 16-17: probation again, two clean reads -> active. *)
      balance ();
      Alcotest.(check bool) "probation after the doubled term" true
        (state pool 2 = Pool.Probation);
      balance ();
      Alcotest.(check bool) "readmitted after a clean streak" true
        (state pool 2 = Pool.Active);
      (* The record survives readmission. *)
      let er = ep_report pool 2 in
      Alcotest.(check bool) "trust still below par" true
        (er.Pool.er_trust < 1.0);
      Alcotest.(check (list int)) "history keeps it on the suspect list"
        [ 2 ] (Pool.health pool).Pool.ph_suspects)

(* Honest stale-head lag within the tolerance is not suspicious; only
   the equivocator (whose deviation is always >= 8 blocks) is. *)
let laggard_not_punished =
  Alcotest.test_case "head tolerance spares laggards, flags equivocators"
    `Quick (fun () ->
      let c, _ = chain_with_txs () in
      let laggard = { Fault.none with Fault.f_stale_head_lag = 2 } in
      let liar = { Fault.none with Fault.f_byz_head_equivocate = 1.0 } in
      let pool = mk_pool ~plans:[ None; Some laggard; Some liar ] c in
      for _ = 1 to 6 do
        match (Pool.observe_head pool ~head:50).Rpc.value with
        | Ok _ -> ()
        | Error e ->
            Alcotest.failf "head quorum should hold: %s"
              (Fault.error_to_string e)
      done;
      Alcotest.(check int) "laggard never flagged" 0
        (ep_report pool 1).Pool.er_disagreements;
      Alcotest.(check (list int)) "only the equivocator is suspect" [ 2 ]
        (Pool.health pool).Pool.ph_suspects)

(* Availability failures are never suspicious: a flaky-but-honest
   endpoint keeps its trust while its errors are counted separately. *)
let availability_errors_not_suspicious =
  Alcotest.test_case "availability failures accrue errors, not suspicion"
    `Quick (fun () ->
      let c, tx = chain_with_txs () in
      let flaky =
        {
          Fault.none with
          Fault.f_receipt = { Fault.p_transient = 1.0; p_timeout = 0.0 };
        }
      in
      let pool = mk_pool ~plans:[ None; None; Some flaky ] c in
      for _ = 1 to 4 do
        match (Pool.eth_get_transaction_receipt pool tx).Rpc.value with
        | Ok _ -> ()
        | Error e ->
            Alcotest.failf "two honest endpoints still make quorum: %s"
              (Fault.error_to_string e)
      done;
      let er = ep_report pool 2 in
      Alcotest.(check int) "no disagreements" 0 er.Pool.er_disagreements;
      Alcotest.(check bool) "errors counted" true (er.Pool.er_errors > 0);
      Alcotest.(check (float 1e-9)) "trust intact" 1.0 er.Pool.er_trust;
      Alcotest.(check (list int)) "no suspects" []
        (Pool.health pool).Pool.ph_suspects)

let () =
  Alcotest.run "pool"
    [
      ( "quorum",
        [
          create_validates;
          honest_agreement;
          forger_identified;
          mutator_identified;
          dropper_identified;
          truncator_identified;
          equivocator_identified;
          quarantine_lifecycle;
          laggard_not_punished;
          availability_errors_not_suspicious;
        ] );
    ]
