(* End-to-end integration test for the Ronin scenario: multisig
   acceptance, pre-window false positives via withdrawal-id numbering,
   finality violations on both flows, the unmapped-token Withdraw bug,
   and the March 2022 forged-withdrawal attack. *)

module Detector = Xcw_core.Detector
module Report = Xcw_core.Report
module Decoder = Xcw_core.Decoder
module Ronin = Xcw_workload.Ronin
module Scenario = Xcw_workload.Scenario
module Bridge = Xcw_bridge.Bridge

let scale = 0.02
let built = lazy (Ronin.build ~seed:7 ~scale ())

let result =
  lazy
    (let b = Lazy.force built in
     let input =
       Detector.default_input ~label:"ronin" ~plugin:Decoder.ronin_plugin
         ~config:b.Scenario.config
         ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
         ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
         ~pricing:b.Scenario.pricing
     in
     Detector.run
       {
         input with
         Detector.i_first_window_withdrawal_id =
           b.Scenario.first_window_withdrawal_id;
       })

let row name =
  let r = Lazy.force result in
  List.find (fun row -> row.Report.rr_rule = name) r.Detector.report.Report.rows

let count_class row_name cls =
  let r = row row_name in
  List.length (List.filter (fun a -> a.Report.a_class = cls) r.Report.rr_anomalies)

let gt () = (Lazy.force built).Scenario.ground_truth

let check_int = Alcotest.(check int)

let captured_counts =
  Alcotest.test_case "captured records match injected traffic" `Quick
    (fun () ->
      let g = gt () in
      check_int "rule 1 native deposits" g.Scenario.gt_native_deposits
        (row "1. SC_ValidNativeTokenDeposit").Report.rr_captured;
      check_int "rule 2 erc20 deposits" g.Scenario.gt_erc20_deposits
        (row "2. SC_ValidERC20TokenDeposit").Report.rr_captured;
      check_int "rule 3 tc deposits"
        (g.Scenario.gt_native_deposits + g.Scenario.gt_erc20_deposits)
        (row "3. TC_ValidERC20TokenDeposit").Report.rr_captured;
      check_int "rule 5 native withdrawals: none on Ronin" 0
        (row "5. TC_ValidNativeTokenWithdrawal").Report.rr_captured;
      (* Rule 7 captures: completed withdrawals (incl. 22 violations)
         + pre-window FP executions + the 2 attack transactions. *)
      check_int "rule 7 sc withdrawals"
        (g.Scenario.gt_erc20_withdrawals + g.Scenario.gt_pre_window_fps
       + g.Scenario.gt_attack_events)
        (row "7. SC_ValidERC20TokenWithdrawal").Report.rr_captured)

let deposit_finality_violations =
  Alcotest.test_case "10 deposit finality violations flagged both sides" `Quick
    (fun () ->
      let g = gt () in
      check_int "finality" (2 * g.Scenario.gt_deposit_finality_violations)
        (count_class "4. CCTX_ValidDeposit" Report.Finality_violation);
      check_int "deposit finality count is 10" 10
        g.Scenario.gt_deposit_finality_violations)

let withdrawal_finality_violations =
  Alcotest.test_case "22 withdrawal finality violations flagged both sides"
    `Quick (fun () ->
      let g = gt () in
      check_int "ground truth is 22" 22 g.Scenario.gt_withdrawal_finality_violations;
      check_int "flagged" (2 * g.Scenario.gt_withdrawal_finality_violations)
        (count_class "8. CCTX_ValidWithdrawal" Report.Finality_violation))

let pre_window_fps =
  Alcotest.test_case "pre-window executions classified as FPs" `Quick
    (fun () ->
      let g = gt () in
      Alcotest.(check bool) "some pre-window fps injected" true
        (g.Scenario.gt_pre_window_fps > 0);
      check_int "classified" g.Scenario.gt_pre_window_fps
        (count_class "8. CCTX_ValidWithdrawal" Report.Pre_window_fp))

let transfers_to_bridge =
  Alcotest.test_case "83 transfers to bridge: 3 phishing + 80 direct" `Quick
    (fun () ->
      check_int "phishing" 3
        (count_class "2. SC_ValidERC20TokenDeposit" Report.Phishing_token_transfer);
      check_int "direct" 80
        (count_class "2. SC_ValidERC20TokenDeposit" Report.Direct_transfer_to_bridge))

let outbound_phishing =
  Alcotest.test_case "1 fabricated transfer out of the bridge" `Quick
    (fun () ->
      check_int "phishing out" 1
        (count_class "7. SC_ValidERC20TokenWithdrawal" Report.Phishing_token_transfer))

let unmapped_withdraw_events =
  Alcotest.test_case "2 unmapped-token Withdraw events without escrow" `Quick
    (fun () ->
      check_int "event without escrow" 2
        (count_class "6. TC_ValidERC20TokenWithdrawal" Report.Event_without_escrow))

let attack_identified =
  Alcotest.test_case "the Ronin attack: 2 forged withdrawals, one EOA" `Quick
    (fun () ->
      let g = gt () in
      let r = Lazy.force result in
      let summary = Detector.attack_summary ~source_chain_id:1 r in
      check_int "2 events" 2 summary.Detector.as_events;
      check_int "ground truth agrees" g.Scenario.gt_attack_events
        summary.Detector.as_events;
      Alcotest.(check bool)
        (Printf.sprintf "stolen USD within 2%% (%.0f vs %.0f)"
           summary.Detector.as_total_usd g.Scenario.gt_attack_usd)
        true
        (g.Scenario.gt_attack_usd > 0.0
        && Float.abs (summary.Detector.as_total_usd -. g.Scenario.gt_attack_usd)
           /. g.Scenario.gt_attack_usd
           < 0.02);
      (* The attack is in the hundreds of millions, as in the paper
         (scaled scenario still seeds full-size escrow). *)
      Alcotest.(check bool) "> $100M" true (g.Scenario.gt_attack_usd > 1.0e8))

let unmatched_withdrawals =
  Alcotest.test_case "incomplete withdrawals all surface as unmatched" `Quick
    (fun () ->
      let g = gt () in
      check_int "T-side no correspondence + S-side attack"
        (g.Scenario.gt_incomplete_erc20_withdrawals + g.Scenario.gt_attack_events)
        (count_class "8. CCTX_ValidWithdrawal" Report.No_correspondence))

let total_anomalies_accounted =
  Alcotest.test_case "every anomaly is classified (no unexplained ones)" `Quick
    (fun () ->
      let g = gt () in
      let r = Lazy.force result in
      let total = Report.total_anomalies r.Detector.report in
      let expected =
        g.Scenario.gt_phishing_transfers + g.Scenario.gt_direct_transfers
        + g.Scenario.gt_transfer_from_bridge
        + (2 * g.Scenario.gt_deposit_finality_violations)
        + (2 * g.Scenario.gt_withdrawal_finality_violations)
        + g.Scenario.gt_withdrawal_mapping_violations (* 2 rogue events *)
        + g.Scenario.gt_pre_window_fps
        + g.Scenario.gt_incomplete_erc20_withdrawals
        + g.Scenario.gt_attack_events
      in
      check_int "total anomalies" expected total)

let figure1_shape =
  Alcotest.test_case "deposits stop at discovery (Figure 1 shape)" `Quick
    (fun () ->
      let b = Lazy.force built in
      let after_discovery =
        List.filter
          (fun ts -> ts > b.Scenario.discovery_time)
          b.Scenario.deposit_call_times
      in
      check_int "no deposits after discovery" 0 (List.length after_discovery);
      Alcotest.(check bool) "withdrawal calls continue to t2" true
        (List.exists
           (fun ts -> ts > b.Scenario.discovery_time)
           b.Scenario.withdrawal_call_times))

let () =
  Alcotest.run "integration-ronin"
    [
      ( "ronin",
        [
          captured_counts;
          deposit_finality_violations;
          withdrawal_finality_violations;
          pre_window_fps;
          transfers_to_bridge;
          outbound_phishing;
          unmapped_withdraw_events;
          attack_identified;
          unmatched_withdrawals;
          total_anomalies_accounted;
          figure1_shape;
        ] );
    ]
