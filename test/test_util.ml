(* Tests for Xcw_util: hex codecs, PRNG determinism, statistics, JSON. *)

open Xcw_util

(* ------------------------------------------------------------------ *)
(* Hex                                                                 *)

let hex_encode_basic =
  Alcotest.test_case "encode basic bytes" `Quick (fun () ->
      Alcotest.(check string) "empty" "" (Hex.encode "");
      Alcotest.(check string) "00ff" "00ff" (Hex.encode "\x00\xff");
      Alcotest.(check string) "deadbeef" "deadbeef" (Hex.encode "\xde\xad\xbe\xef"))

let hex_decode_basic =
  Alcotest.test_case "decode accepts 0x prefix and mixed case" `Quick
    (fun () ->
      Alcotest.(check string) "prefixed" "\xde\xad" (Hex.decode "0xdead");
      Alcotest.(check string) "uppercase" "\xde\xad" (Hex.decode "DEAD");
      Alcotest.(check string) "plain" "\xde\xad" (Hex.decode "dead"))

let hex_decode_invalid =
  Alcotest.test_case "decode rejects invalid input" `Quick (fun () ->
      Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd-length input")
        (fun () -> ignore (Hex.decode "abc"));
      (try
         ignore (Hex.decode "zz");
         Alcotest.fail "expected Invalid_argument"
       with Invalid_argument _ -> ()))

let hex_is_hex_string =
  Alcotest.test_case "is_hex_string" `Quick (fun () ->
      Alcotest.(check bool) "valid" true (Hex.is_hex_string "0xdeadBEEF");
      Alcotest.(check bool) "odd" false (Hex.is_hex_string "abc");
      Alcotest.(check bool) "bad char" false (Hex.is_hex_string "zz"))

let hex_roundtrip =
  QCheck.Test.make ~name:"hex round-trip" ~count:200
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s -> Hex.decode (Hex.encode s) = s)

let hex_roundtrip_0x =
  QCheck.Test.make ~name:"hex 0x round-trip" ~count:200
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s -> Hex.decode (Hex.encode_0x s) = s)

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)

let prng_deterministic =
  Alcotest.test_case "same seed gives same stream" `Quick (fun () ->
      let a = Prng.create 42 and b = Prng.create 42 in
      for _ = 1 to 100 do
        Alcotest.(check int) "stream" (Prng.int a 1000) (Prng.int b 1000)
      done)

let prng_bounds =
  QCheck.Test.make ~name:"Prng.int stays in bounds" ~count:200
    QCheck.(pair (int_bound 10000) (int_range 1 1000))
    (fun (seed, bound) ->
      let t = Prng.create seed in
      let x = Prng.int t bound in
      x >= 0 && x < bound)

let prng_range_bounds =
  QCheck.Test.make ~name:"Prng.range stays in bounds" ~count:200
    QCheck.(triple (int_bound 10000) (int_range 0 500) (int_range 501 1000))
    (fun (seed, lo, hi) ->
      let t = Prng.create seed in
      let x = Prng.range t lo hi in
      x >= lo && x < hi)

let prng_float_bounds =
  QCheck.Test.make ~name:"Prng.float stays in bounds" ~count:200
    QCheck.(int_bound 10000)
    (fun seed ->
      let t = Prng.create seed in
      let x = Prng.float t 5.0 in
      x >= 0.0 && x < 5.0)

let prng_split_independent =
  Alcotest.test_case "split children do not perturb parent" `Quick (fun () ->
      let a = Prng.create 7 in
      let b = Prng.create 7 in
      let ca = Prng.split a in
      let _cb = Prng.split b in
      (* Draw different amounts from the children... *)
      ignore (Prng.int ca 100);
      ignore (Prng.int ca 100);
      (* ...then parents must still agree. *)
      for _ = 1 to 20 do
        Alcotest.(check int) "parent stream" (Prng.int a 1000) (Prng.int b 1000)
      done)

let prng_exponential_positive =
  QCheck.Test.make ~name:"exponential samples are positive" ~count:200
    QCheck.(int_bound 10000)
    (fun seed ->
      let t = Prng.create seed in
      Prng.exponential t ~mean:3.0 > 0.0)

let prng_pareto_min =
  QCheck.Test.make ~name:"pareto samples are >= x_min" ~count:200
    QCheck.(int_bound 10000)
    (fun seed ->
      let t = Prng.create seed in
      Prng.pareto t ~x_min:2.0 ~alpha:1.2 >= 2.0)

let prng_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:100
    QCheck.(pair (int_bound 10000) (list_of_size Gen.(0 -- 50) int))
    (fun (seed, xs) ->
      let t = Prng.create seed in
      List.sort compare (Prng.shuffle t xs) = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let stats_summary =
  Alcotest.test_case "summarize simple series" `Quick (fun () ->
      let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
      Alcotest.(check int) "size" 5 s.Stats.size;
      Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
      Alcotest.(check (float 1e-9)) "max" 5.0 s.Stats.max;
      Alcotest.(check (float 1e-9)) "mean" 3.0 s.Stats.mean;
      Alcotest.(check (float 1e-9)) "median" 3.0 s.Stats.median;
      Alcotest.(check (float 1e-9)) "std" (sqrt 2.0) s.Stats.std)

let stats_median_even =
  Alcotest.test_case "median interpolates for even sizes" `Quick (fun () ->
      Alcotest.(check (float 1e-9)) "median" 2.5 (Stats.median [ 1.; 2.; 3.; 4. ]))

let stats_percentile =
  Alcotest.test_case "percentile endpoints" `Quick (fun () ->
      let xs = [ 10.; 20.; 30.; 40. ] in
      Alcotest.(check (float 1e-9)) "p0" 10. (Stats.percentile 0. xs);
      Alcotest.(check (float 1e-9)) "p100" 40. (Stats.percentile 100. xs))

let stats_percentile_interpolates =
  Alcotest.test_case "percentile interpolates between ranks" `Quick (fun () ->
      let xs = [ 10.; 20.; 30.; 40. ] in
      (* Rank position for p50 over 4 samples is 1.5: halfway between
         the 2nd and 3rd order statistics. *)
      Alcotest.(check (float 1e-9)) "p50" 25. (Stats.percentile 50. xs);
      Alcotest.(check (float 1e-9)) "p25" 17.5 (Stats.percentile 25. xs);
      (* Input order must not matter. *)
      Alcotest.(check (float 1e-9))
        "unsorted" 25.
        (Stats.percentile 50. [ 40.; 10.; 30.; 20. ]);
      (* Single sample: every percentile is that sample. *)
      Alcotest.(check (float 1e-9)) "single" 7. (Stats.percentile 99. [ 7. ]);
      Alcotest.check_raises "empty input"
        (Invalid_argument "Stats.percentile: empty input") (fun () ->
          ignore (Stats.percentile 50. [])))

let stats_cdf =
  Alcotest.test_case "cdf fractions" `Quick (fun () ->
      let xs = [ 1.; 2.; 3.; 4. ] in
      let pts = Stats.cdf xs [ 0.5; 2.0; 4.0 ] in
      Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
        "cdf"
        [ (0.5, 0.0); (2.0, 0.5); (4.0, 1.0) ]
        pts)

let stats_fraction_exceeding =
  Alcotest.test_case "fraction exceeding threshold" `Quick (fun () ->
      Alcotest.(check (float 1e-9))
        "quarter" 0.25
        (Stats.fraction_exceeding [ 1.; 2.; 3.; 10.5 ] 10.0))

let stats_pearson_perfect =
  Alcotest.test_case "pearson of a perfect linear relation" `Quick (fun () ->
      let xs = [ 1.; 2.; 3.; 4. ] in
      let ys = List.map (fun x -> (2. *. x) +. 1.) xs in
      Alcotest.(check (float 1e-9)) "r" 1.0 (Stats.pearson xs ys);
      let ys_neg = List.map (fun y -> -.y) ys in
      Alcotest.(check (float 1e-9)) "r-neg" (-1.0) (Stats.pearson xs ys_neg))

let stats_pearson_bounds =
  QCheck.Test.make ~name:"pearson in [-1, 1]" ~count:100
    QCheck.(list_of_size Gen.(2 -- 40) (pair (float_bound_exclusive 100.) (float_bound_exclusive 100.)))
    (fun pairs ->
      let xs = List.map fst pairs and ys = List.map snd pairs in
      let r = Stats.pearson xs ys in
      r >= -1.0000001 && r <= 1.0000001)

let stats_cdf_monotone =
  QCheck.Test.make ~name:"cdf is monotone" ~count:100
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let points = List.sort_uniq compare (List.map (fun x -> x +. 0.1) xs) in
      let c = Stats.cdf xs points in
      let rec mono = function
        | (_, a) :: ((_, b) :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono c)

let stats_time_buckets =
  Alcotest.test_case "time_buckets counts per window" `Quick (fun () ->
      let buckets =
        Stats.time_buckets [ 0; 5; 10; 21; 22; 23 ] ~start:0 ~stop:23 ~width:10
      in
      Alcotest.(check (list (pair int int)))
        "buckets"
        [ (0, 2); (10, 1); (20, 3) ]
        buckets)

let stats_log_histogram_total =
  QCheck.Test.make ~name:"log_histogram preserves positive counts" ~count:100
    QCheck.(list_of_size Gen.(0 -- 60) (float_range 0.001 999.0))
    (fun xs ->
      let h = Stats.log_histogram xs ~lo_exp:(-3) ~hi_exp:3 ~buckets_per_decade:4 in
      let total = List.fold_left (fun acc (_, c) -> acc + c) 0 h in
      total = List.length xs)

let stats_log_histogram_clamping =
  Alcotest.test_case "log_histogram clamps to edges, drops non-positive"
    `Quick (fun () ->
      let h =
        Stats.log_histogram
          [ 1e-9; 0.5; 1e9; 0.0; -3.0 ]
          ~lo_exp:(-1) ~hi_exp:1 ~buckets_per_decade:1
      in
      (* Two buckets: (1.0, _) and (10.0, _).  The tiny sample clamps
         into the first, the huge one into the last; zero and negative
         samples are dropped entirely. *)
      Alcotest.(check (list (pair (float 1e-9) int)))
        "buckets"
        [ (1.0, 2); (10.0, 1) ]
        h)

let stats_time_buckets_boundaries =
  Alcotest.test_case "time_buckets boundary timestamps" `Quick (fun () ->
      (* start and stop are inclusive; a timestamp exactly on a window
         edge belongs to the window it opens; out-of-range timestamps
         are dropped. *)
      let buckets =
        Stats.time_buckets [ -1; 0; 9; 10; 20; 29; 30 ] ~start:0 ~stop:29
          ~width:10
      in
      Alcotest.(check (list (pair int int)))
        "buckets"
        [ (0, 2); (10, 1); (20, 2) ]
        buckets)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)

let json_print_basic =
  Alcotest.test_case "serialize basic values" `Quick (fun () ->
      Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
      Alcotest.(check string) "int" "42" (Json.to_string (Json.Int 42));
      Alcotest.(check string) "bool" "true" (Json.to_string (Json.Bool true));
      Alcotest.(check string)
        "obj" {|{"a":1,"b":[true,"x"]}|}
        (Json.to_string
           (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.String "x" ]) ])))

let json_escape =
  Alcotest.test_case "string escaping" `Quick (fun () ->
      Alcotest.(check string)
        "escapes" {|"a\"b\\c\nd"|}
        (Json.to_string (Json.String "a\"b\\c\nd")))

let json_parse_basic =
  Alcotest.test_case "parse basic document" `Quick (fun () ->
      let v = Json.of_string {| {"k": [1, 2.5, null, false, "s"]} |} in
      match Json.member "k" v with
      | Some (Json.List [ Json.Int 1; Json.Float f; Json.Null; Json.Bool false; Json.String "s" ]) ->
          Alcotest.(check (float 1e-9)) "float" 2.5 f
      | _ -> Alcotest.fail "unexpected parse result")

let json_float_string =
  Alcotest.test_case "float_string special cases" `Quick (fun () ->
      Alcotest.(check string) "integral" "3.0" (Json.float_string 3.0);
      Alcotest.(check string) "negative zero" "-0.0" (Json.float_string (-0.0));
      Alcotest.(check string) "nan is null" "null" (Json.float_string nan);
      Alcotest.(check string) "inf is null" "null" (Json.float_string infinity))

let json_float_string_roundtrip =
  QCheck.Test.make ~name:"float_string round-trips finite floats" ~count:500
    QCheck.float
    (fun f ->
      QCheck.assume (Float.is_finite f);
      float_of_string (Json.float_string f) = f)

let json_roundtrip =
  let rec gen_json depth =
    let open QCheck.Gen in
    if depth = 0 then
      oneof
        [
          return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
          map (fun s -> Json.String s) (string_size ~gen:printable (0 -- 20));
        ]
    else
      oneof
        [
          map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
          map (fun xs -> Json.List xs) (list_size (0 -- 4) (gen_json (depth - 1)));
          map
            (fun kvs ->
              (* Keys must be unique for round-trip comparison. *)
              let kvs = List.mapi (fun i (k, v) -> (string_of_int i ^ k, v)) kvs in
              Json.Obj kvs)
            (list_size (0 -- 4)
               (pair (string_size ~gen:printable (0 -- 8)) (gen_json (depth - 1))));
        ]
  in
  QCheck.Test.make ~name:"json print/parse round-trip" ~count:100
    (QCheck.make (gen_json 3))
    (fun j -> Json.of_string (Json.to_string j) = j)

let () =
  Alcotest.run "util"
    [
      ( "hex",
        [
          hex_encode_basic;
          hex_decode_basic;
          hex_decode_invalid;
          hex_is_hex_string;
          QCheck_alcotest.to_alcotest hex_roundtrip;
          QCheck_alcotest.to_alcotest hex_roundtrip_0x;
        ] );
      ( "prng",
        [
          prng_deterministic;
          prng_split_independent;
          QCheck_alcotest.to_alcotest prng_bounds;
          QCheck_alcotest.to_alcotest prng_range_bounds;
          QCheck_alcotest.to_alcotest prng_float_bounds;
          QCheck_alcotest.to_alcotest prng_exponential_positive;
          QCheck_alcotest.to_alcotest prng_pareto_min;
          QCheck_alcotest.to_alcotest prng_shuffle_permutation;
        ] );
      ( "stats",
        [
          stats_summary;
          stats_median_even;
          stats_percentile;
          stats_percentile_interpolates;
          stats_cdf;
          stats_fraction_exceeding;
          stats_pearson_perfect;
          stats_time_buckets;
          stats_time_buckets_boundaries;
          stats_log_histogram_clamping;
          QCheck_alcotest.to_alcotest stats_pearson_bounds;
          QCheck_alcotest.to_alcotest stats_cdf_monotone;
          QCheck_alcotest.to_alcotest stats_log_histogram_total;
        ] );
      ( "json",
        [
          json_print_basic;
          json_escape;
          json_parse_basic;
          json_float_string;
          QCheck_alcotest.to_alcotest json_float_string_roundtrip;
          QCheck_alcotest.to_alcotest json_roundtrip;
        ] );
    ]
