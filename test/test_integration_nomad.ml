(* End-to-end integration test: generate the Nomad scenario (scaled
   down), run the full XChainWatcher pipeline, and assert the detector
   recovers exactly the injected ground truth — soundness (no anomalies
   beyond the injected ones) and completeness (every injected anomaly
   flagged by the right rule with the right classification). *)

module Detector = Xcw_core.Detector
module Report = Xcw_core.Report
module Decoder = Xcw_core.Decoder
module Nomad = Xcw_workload.Nomad
module Scenario = Xcw_workload.Scenario
module Bridge = Xcw_bridge.Bridge

let scale = 0.02
let built = lazy (Nomad.build ~seed:11 ~scale ())

let result =
  lazy
    (let b = Lazy.force built in
     Detector.run
       (Detector.default_input ~label:"nomad"
          ~plugin:Decoder.nomad_plugin ~config:b.Scenario.config
          ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
          ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
          ~pricing:b.Scenario.pricing))

let row name =
  let r = Lazy.force result in
  List.find (fun row -> row.Report.rr_rule = name) r.Detector.report.Report.rows

let count_class row_name cls =
  let r = row row_name in
  List.length (List.filter (fun a -> a.Report.a_class = cls) r.Report.rr_anomalies)

let gt () = (Lazy.force built).Scenario.ground_truth

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)

let captured_counts_match =
  Alcotest.test_case "captured records match injected benign traffic" `Quick
    (fun () ->
      let g = gt () in
      check_int "rule 1 native deposits"
        g.Scenario.gt_native_deposits
        (row "1. SC_ValidNativeTokenDeposit").Report.rr_captured;
      (* Rule 2 captures valid ERC-20 deposits; the right-padded one is
         still structurally valid on S. *)
      check_int "rule 2 erc20 deposits" g.Scenario.gt_erc20_deposits
        (row "2. SC_ValidERC20TokenDeposit").Report.rr_captured;
      (* Rule 3 captures all completed deposits on T plus the 7
         fake-mapping mints. *)
      check_int "rule 3 tc deposits"
        (g.Scenario.gt_native_deposits + g.Scenario.gt_erc20_deposits
       + g.Scenario.gt_deposit_mapping_violations)
        (row "3. TC_ValidERC20TokenDeposit").Report.rr_captured;
      check_int "rule 5 native withdrawal requests"
        g.Scenario.gt_native_withdrawals
        (row "5. TC_ValidNativeTokenWithdrawal").Report.rr_captured)

let cctx_deposit_counts =
  Alcotest.test_case "rule 4 captures all but the anomalous deposits" `Quick
    (fun () ->
      let g = gt () in
      (* Valid cctx deposits = all deposits minus: 5 finality violations,
         1 invalid beneficiary, 7 fake-mapping mints (never on S). *)
      let expected =
        g.Scenario.gt_native_deposits + g.Scenario.gt_erc20_deposits
        - g.Scenario.gt_deposit_finality_violations
        - g.Scenario.gt_invalid_beneficiary_deposits
      in
      check_int "cctx deposits" expected (row "4. CCTX_ValidDeposit").Report.rr_captured)

let deposit_anomaly_classification =
  Alcotest.test_case "rule 4 anomalies classified as in Table 4" `Quick
    (fun () ->
      let g = gt () in
      (* Finality violations appear on both chains: 5 + 5. *)
      check_int "finality violations"
        (2 * g.Scenario.gt_deposit_finality_violations)
        (count_class "4. CCTX_ValidDeposit" Report.Finality_violation);
      check_int "mapping violations" g.Scenario.gt_deposit_mapping_violations
        (count_class "4. CCTX_ValidDeposit" Report.Token_mapping_violation);
      (* The right-padded deposit: flagged on both chains. *)
      check_int "invalid beneficiary"
        (2 * g.Scenario.gt_invalid_beneficiary_deposits)
        (count_class "4. CCTX_ValidDeposit" Report.Invalid_beneficiary_fp);
      check_int "no stray no-correspondence deposits" 0
        (count_class "4. CCTX_ValidDeposit" Report.No_correspondence))

let transfer_anomalies =
  Alcotest.test_case "phishing and direct transfers (Findings 1-2)" `Quick
    (fun () ->
      let g = gt () in
      check_int "phishing" g.Scenario.gt_phishing_transfers
        (count_class "2. SC_ValidERC20TokenDeposit" Report.Phishing_token_transfer);
      check_int "direct transfers" g.Scenario.gt_direct_transfers
        (count_class "2. SC_ValidERC20TokenDeposit" Report.Direct_transfer_to_bridge);
      (* USD total of direct transfers ~ $93.86K (exact per generator). *)
      let r = row "2. SC_ValidERC20TokenDeposit" in
      let total =
        List.fold_left
          (fun acc a ->
            if a.Report.a_class = Report.Direct_transfer_to_bridge then
              acc +. a.Report.a_usd_value
            else acc)
          0.0 r.Report.rr_anomalies
      in
      Alcotest.(check bool)
        (Printf.sprintf "direct transfer USD (%.2f vs %.2f)" total
           g.Scenario.gt_direct_transfer_usd)
        true
        (Float.abs (total -. g.Scenario.gt_direct_transfer_usd)
         /. g.Scenario.gt_direct_transfer_usd
        < 0.02))

let withdrawal_row6_anomalies =
  Alcotest.test_case "rule 6: unparseable beneficiaries and exploit probes"
    `Quick (fun () ->
      let g = gt () in
      check_int "unparseable" g.Scenario.gt_unparseable_beneficiaries
        (count_class "6. TC_ValidERC20TokenWithdrawal" Report.Unparseable_beneficiary);
      check_int "failed exploits" g.Scenario.gt_failed_exploits
        (count_class "6. TC_ValidERC20TokenWithdrawal" Report.Failed_exploit_attempt))

let attack_detected =
  Alcotest.test_case "the Nomad attack is fully identified (Finding 8)" `Quick
    (fun () ->
      let g = gt () in
      let r = Lazy.force result in
      let summary = Detector.attack_summary ~source_chain_id:1 r in
      check_int "attack events" g.Scenario.gt_attack_events
        summary.Detector.as_events;
      check_int "attack transactions" g.Scenario.gt_attack_events
        summary.Detector.as_transactions;
      Alcotest.(check bool)
        (Printf.sprintf "stolen USD ~ ground truth (%.0f vs %.0f)"
           summary.Detector.as_total_usd g.Scenario.gt_attack_usd)
        true
        (g.Scenario.gt_attack_usd > 0.0
        && Float.abs (summary.Detector.as_total_usd -. g.Scenario.gt_attack_usd)
           /. g.Scenario.gt_attack_usd
           < 0.02))

let withdrawal_unmatched_counts =
  Alcotest.test_case "rule 8: unmatched withdrawals match injections" `Quick
    (fun () ->
      let g = gt () in
      (* T-side no-correspondence = incomplete withdrawals (native +
         erc20).  S-side no-correspondence = attack events.  Mapping
         violations on the S side = the 2 fake-mapping withdrawals.
         Invalid-beneficiary FPs = the 3 garbage executions on S. *)
      let expected_no_corr =
        g.Scenario.gt_incomplete_native_withdrawals
        + g.Scenario.gt_incomplete_erc20_withdrawals
        + g.Scenario.gt_attack_events
      in
      check_int "no correspondence" expected_no_corr
        (count_class "8. CCTX_ValidWithdrawal" Report.No_correspondence);
      check_int "mapping violations"
        g.Scenario.gt_withdrawal_mapping_violations
        (count_class "8. CCTX_ValidWithdrawal" Report.Token_mapping_violation);
      check_int "invalid beneficiary FPs"
        g.Scenario.gt_unparseable_beneficiaries
        (count_class "8. CCTX_ValidWithdrawal" Report.Invalid_beneficiary_fp))

let cctx_withdrawals_complete =
  Alcotest.test_case "rule 8 captures completed withdrawals" `Quick (fun () ->
      let g = gt () in
      let r = Lazy.force result in
      let withdrawal_cctxs =
        List.filter
          (fun c -> c.Report.c_kind = `Withdrawal)
          r.Detector.report.Report.cctxs
      in
      (* Completed = erc20 executed + native executed (native requests
         minus incomplete natives, minus any post-attack failures
         counted as incomplete). *)
      Alcotest.(check bool)
        (Printf.sprintf "completed withdrawals >= erc20 executions (%d vs %d)"
           (List.length withdrawal_cctxs)
           g.Scenario.gt_erc20_withdrawals)
        true
        (List.length withdrawal_cctxs >= g.Scenario.gt_erc20_withdrawals))

let cctx_latency_at_window =
  Alcotest.test_case "all cctx deposits respect the 30-minute window" `Quick
    (fun () ->
      let r = Lazy.force result in
      List.iter
        (fun c ->
          if c.Report.c_kind = `Deposit then
            Alcotest.(check bool) "latency >= 1800" true (Report.cctx_latency c >= 1800))
        r.Detector.report.Report.cctxs)

let no_decode_errors_beyond_injected =
  Alcotest.test_case "decode errors are exactly the unparseable inputs" `Quick
    (fun () ->
      let g = gt () in
      let r = Lazy.force result in
      check_int "decode errors" g.Scenario.gt_unparseable_beneficiaries
        (List.length r.Detector.decode_errors))

let benign_scenario_clean =
  Alcotest.test_case "a benign-only scenario raises zero anomalies" `Quick
    (fun () ->
      (* Seeded tiny scenario with all anomaly injection suppressed is
         approximated by asserting the anomaly total equals the ground
         truth total — no false positives beyond classified ones. *)
      let g = gt () in
      let r = Lazy.force result in
      let total = Report.total_anomalies r.Detector.report in
      let expected =
        g.Scenario.gt_phishing_transfers + g.Scenario.gt_direct_transfers
        + g.Scenario.gt_transfer_from_bridge
        + (2 * g.Scenario.gt_deposit_finality_violations)
        + (2 * g.Scenario.gt_invalid_beneficiary_deposits)
        + g.Scenario.gt_deposit_mapping_violations
        + g.Scenario.gt_unparseable_beneficiaries (* rule 6 decode *)
        + g.Scenario.gt_unparseable_beneficiaries (* rule 8 S-side FPs *)
        + g.Scenario.gt_failed_exploits
        + g.Scenario.gt_withdrawal_mapping_violations
        + g.Scenario.gt_incomplete_native_withdrawals
        + g.Scenario.gt_incomplete_erc20_withdrawals
        + g.Scenario.gt_attack_events
      in
      check_int "total anomalies" expected total)

let () =
  Alcotest.run "integration-nomad"
    [
      ( "nomad",
        [
          captured_counts_match;
          cctx_deposit_counts;
          deposit_anomaly_classification;
          transfer_anomalies;
          withdrawal_row6_anomalies;
          attack_detected;
          withdrawal_unmatched_counts;
          cctx_withdrawals_complete;
          cctx_latency_at_window;
          no_decode_errors_beyond_injected;
          benign_scenario_clean;
        ] );
    ]
