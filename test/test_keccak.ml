(* Keccak-256 test vectors.

   The digest values below are the published Keccak-256 (pre-SHA3
   padding) vectors, the same function Ethereum uses for transaction
   hashes, event topics and function selectors. *)

open Xcw_keccak

let check_digest name input expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name expected (Keccak.digest_hex input))

let empty_string =
  check_digest "empty string" ""
    "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"

let abc =
  check_digest "abc" "abc"
    "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"

let transfer_event =
  (* topic[0] of the ERC-20 Transfer event. *)
  check_digest "ERC20 Transfer signature"
    "Transfer(address,address,uint256)"
    "ddf252ad1be2c89b69c2b068fc378daa952ba7f163c4a11628f55a4df523b3ef"

let approval_event =
  check_digest "ERC20 Approval signature"
    "Approval(address,address,uint256)"
    "8c5be1e5ebec7d5bd14f71427d1e84f3dd0314c0f7b2291e5b200ac8c7c3b925"

let deposit_event =
  (* topic[0] of the WETH Deposit event. *)
  check_digest "WETH Deposit signature" "Deposit(address,uint256)"
    "e1fffcc4923d04b559f4d29a8bfc6cda04eb5b0d3c460751c2402c5c5cc9109c"

let withdrawal_event =
  check_digest "WETH Withdrawal signature" "Withdrawal(address,uint256)"
    "7fcf532c15f0a6db0bd6d0e038bea71d30d808c7d98cb3bf7268a95bf5081b65"

let long_input =
  (* Exercises multi-block absorption: 1000 'a' characters spans
     several 136-byte rate blocks. *)
  (* Verified against an independent Keccak-f[1600] reference
     implementation; exercises multi-block absorption. *)
  check_digest "1000 x 'a'" (String.make 1000 'a')
    "b6a4ac1f51884d71f30fa397a5e155de3099e11fc0edef5d08b646e621e19de9"

let block_boundary_sizes =
  Alcotest.test_case "block boundary sizes produce 32-byte digests" `Quick
    (fun () ->
      (* 135, 136, 137 bytes straddle the sponge rate. *)
      List.iter
        (fun n ->
          let d = Keccak.digest (String.make n 'x') in
          Alcotest.(check int)
            (Printf.sprintf "digest length for %d-byte input" n)
            32 (String.length d))
        [ 0; 1; 135; 136; 137; 271; 272; 273 ])

let deterministic =
  QCheck.Test.make ~name:"digest is deterministic" ~count:100
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun s -> Keccak.digest s = Keccak.digest s)

let injective_in_practice =
  QCheck.Test.make ~name:"distinct inputs give distinct digests" ~count:100
    QCheck.(pair (string_of_size Gen.(0 -- 100)) (string_of_size Gen.(0 -- 100)))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      Keccak.digest a <> Keccak.digest b)

let avalanche =
  QCheck.Test.make ~name:"single-bit flip changes at least 64 output bits"
    ~count:50
    QCheck.(string_of_size Gen.(1 -- 100))
    (fun s ->
      let flipped =
        String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) s
      in
      let d1 = Keccak.digest s and d2 = Keccak.digest flipped in
      let diff_bits = ref 0 in
      String.iteri
        (fun i c ->
          let x = Char.code c lxor Char.code d2.[i] in
          for b = 0 to 7 do
            if x land (1 lsl b) <> 0 then incr diff_bits
          done)
        d1;
      !diff_bits >= 64)

let () =
  Alcotest.run "keccak"
    [
      ( "vectors",
        [
          empty_string;
          abc;
          transfer_event;
          approval_event;
          deposit_event;
          withdrawal_event;
          long_input;
          block_boundary_sizes;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ deterministic; injective_in_practice; avalanche ] );
    ]
