(* Fleet supervision suite (DESIGN.md §13).

   Five axes:
   - bus semantics: cross-bridge collapse records every origin, distinct
     signatures never collapse, and an emission aging past the window
     re-emits instead of silently absorbing;
   - circuit breaker: a persistently failing lane walks the full
     Active -> Degraded -> Parked (doubling terms) -> Probation ->
     Active lifecycle, and parked rounds really skip the lane;
   - fault isolation: in a fleet with one blown lane, every clean
     lane's alert stream is byte-identical to a solo single-lane
     supervisor run of the same spec, and only the blown lane parks;
   - determinism: the whole fleet output (bus stream, per-lane streams,
     health trajectory) is identical at --jobs 1/2/4 and across two
     same-seed runs, both on preset scenario lanes and under qcheck
     over random traffic scripts;
   - poll budget: a budget-limited lane catches up over more rounds
     without ever parking and loses no alerts.

   The golden fleet fixture lives in test_golden-adjacent
   golden/fleet.golden and reuses the existing per-bridge fixtures for
   the rows that overlap (ronin, nomad, attack-forged-proof lanes must
   reproduce them byte for byte). *)

module T = Xcw_testlib
module Chain = Xcw_chain.Chain
module Bridge = Xcw_bridge.Bridge
module Fault = Xcw_rpc.Fault
module Detector = Xcw_core.Detector
module Monitor = Xcw_core.Monitor
module Report = Xcw_core.Report
module Sup = Xcw_fleet.Supervisor
module Bus = Xcw_fleet.Bus
module Presets = Xcw_fleet.Presets

let u = T.u

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let mk_alert ?(rule = "8. CCTX_ValidWithdrawal")
    ?(cls = Report.No_correspondence) ?(tx = "0xaaaa") ?(chain = 2)
    ?(detail = "no correspondence on other chain") ?(at = (5, 5)) () =
  {
    Monitor.al_seq = 0;
    al_rule = rule;
    al_detected_at = at;
    al_anomaly =
      {
        Report.a_class = cls;
        a_tx_hash = tx;
        a_chain_id = chain;
        a_usd_value = 123.0;
        a_detail = detail;
      };
  }

(* Byte-comparable lane stream: dedup signature plus detection cursor. *)
let render_stream alerts =
  String.concat "\n"
    (List.map
       (fun (a : Monitor.alert) ->
         let sb, tb = a.Monitor.al_detected_at in
         Printf.sprintf "%s|(%d,%d)" (Bus.signature a) sb tb)
       alerts)

let render_bus_alert (fa : Bus.fleet_alert) =
  Printf.sprintf "#%d r%d %s %s [%s]" fa.Bus.fa_seq fa.Bus.fa_round
    fa.Bus.fa_bridge
    (Bus.signature fa.Bus.fa_alert)
    (String.concat ", "
       (List.map
          (fun (o : Bus.origin) ->
            Printf.sprintf "%s@r%d" o.Bus.o_bridge o.Bus.o_round)
          fa.Bus.fa_origins))

let state_name = function
  | Sup.Active -> "active"
  | Sup.Degraded -> "degraded"
  | Sup.Parked { until; term } -> Printf.sprintf "parked(%d,%d)" until term
  | Sup.Probation -> "probation"

let lane_report sup i =
  match Sup.lane_monitor sup i with
  | Some mon -> (
      match Monitor.last_report mon with
      | Some r -> r
      | None -> Alcotest.failf "lane %d has no report" i)
  | None -> Alcotest.failf "lane %d never polled" i

(* The complete observable fleet output, for determinism equality. *)
let fleet_signature sup =
  let h = Sup.health sup in
  let lanes =
    List.map
      (fun (lh : Sup.lane_health) ->
        Printf.sprintf "%d %s %s polls=%d alerts=%d trips=%d lag=%d"
          lh.Sup.lh_index lh.Sup.lh_name (state_name lh.Sup.lh_state)
          lh.Sup.lh_polls lh.Sup.lh_alerts lh.Sup.lh_trips lh.Sup.lh_lag)
      h.Sup.fh_lanes
  in
  let bus = List.map render_bus_alert (Sup.alerts sup) in
  let streams =
    List.init (Sup.lane_count sup) (fun i ->
        render_stream (Sup.lane_alerts sup i))
  in
  String.concat "\n"
    ((Printf.sprintf "rounds=%d emitted=%d collapsed=%d" h.Sup.fh_rounds
        h.Sup.fh_emitted h.Sup.fh_collapsed
     :: lanes)
    @ bus @ streams)

(* A lane over a testlib bridge whose traffic is fully applied up
   front: the cursor schedule replays the recorded per-op snapshots one
   per round, then holds at the final heads. *)
let scripted_lane ~name ?(fail_from = max_int) b snapshots =
  let snaps = Array.of_list snapshots in
  let last = Array.length snaps - 1 in
  let cursors round =
    if round >= fail_from then failwith "scripted outage";
    snaps.(min (round - 1) last)
  in
  {
    Sup.l_name = name;
    l_input = T.monitor_input ~label:name b;
    l_cursors = cursors;
  }

(* Build one scripted bridge: seed, apply [ops], record a cursor
   snapshot after every op.  [salt] decorrelates user addresses across
   lanes. *)
let scripted_bridge ~salt ops =
  let b, m = T.make_bridge () in
  let user = T.user_with_tokens b m ("fleet-" ^ salt) (u 1_000_000) in
  T.seed_completed_deposit b m user;
  let snaps =
    List.mapi
      (fun i op ->
        T.apply_op b m user i op;
        T.cur b)
      ops
  in
  (b, snaps @ [ T.cur b ])

(* ------------------------------------------------------------------ *)
(* Alert bus                                                           *)

let bus_collapse =
  Alcotest.test_case "cross-bridge duplicate collapses with both origins"
    `Quick (fun () ->
      let bus = Bus.create ~window:4 () in
      let a = mk_alert () in
      (match Bus.publish bus ~bridge:"ronin" ~round:1 a with
      | `Emitted fa -> Alcotest.(check int) "first seq" 0 fa.Bus.fa_seq
      | `Collapsed _ -> Alcotest.fail "first publish must emit");
      (match Bus.publish bus ~bridge:"nomad" ~round:3 (mk_alert ~at:(9, 9) ())
       with
      | `Collapsed fa ->
          Alcotest.(check (list string))
            "both origins recorded, emitter first" [ "ronin@r1"; "nomad@r3" ]
            (List.map
               (fun (o : Bus.origin) ->
                 Printf.sprintf "%s@r%d" o.Bus.o_bridge o.Bus.o_round)
               fa.Bus.fa_origins)
      | `Emitted _ -> Alcotest.fail "same signature in window must collapse");
      Alcotest.(check int) "one emission" 1 (Bus.emitted bus);
      Alcotest.(check int) "one collapse" 1 (Bus.collapsed bus);
      Alcotest.(check int) "stream holds one alert" 1
        (List.length (Bus.alerts bus)))

let bus_distinct =
  Alcotest.test_case "distinct tx hashes never collapse" `Quick (fun () ->
      let bus = Bus.create ~window:16 () in
      let pub tx =
        Bus.publish bus ~bridge:"ronin" ~round:1 (mk_alert ~tx ())
      in
      (match (pub "0xaaaa", pub "0xbbbb") with
      | `Emitted a, `Emitted b ->
          Alcotest.(check (pair int int)) "dense seqs" (0, 1)
            (a.Bus.fa_seq, b.Bus.fa_seq)
      | _ -> Alcotest.fail "distinct signatures must both emit");
      Alcotest.(check int) "no collapse" 0 (Bus.collapsed bus))

let bus_expiry =
  Alcotest.test_case "window expiry re-emits the same signature" `Quick
    (fun () ->
      let bus = Bus.create ~window:2 () in
      let pub round = Bus.publish bus ~bridge:"b" ~round (mk_alert ()) in
      (match pub 1 with
      | `Emitted _ -> ()
      | `Collapsed _ -> Alcotest.fail "round 1 must emit");
      (match pub 3 with
      | `Collapsed _ -> ()
      | `Emitted _ -> Alcotest.fail "round 3 is inside the round-1 window");
      (* The horizon is anchored at the emission, not the last collapse:
         round 4 is 3 > 2 rounds past round 1. *)
      match pub 4 with
      | `Emitted fa ->
          Alcotest.(check int) "fresh page" 1 fa.Bus.fa_seq;
          Alcotest.(check int) "two emissions" 2 (Bus.emitted bus)
      | `Collapsed _ -> Alcotest.fail "round 4 must re-emit")

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)

let breaker_lifecycle =
  Alcotest.test_case
    "breaker: degrade, park with doubling terms, probation, recovery" `Quick
    (fun () ->
      let b, snaps = scripted_bridge ~salt:"breaker" [ 0; 1; 2 ] in
      let failing = ref false in
      let snaps = Array.of_list snaps in
      let lane =
        {
          Sup.l_name = "flappy";
          l_input = T.monitor_input ~label:"flappy" b;
          l_cursors =
            (fun round ->
              if !failing then failwith "rpc down"
              else snaps.(min (round - 1) (Array.length snaps - 1)));
        }
      in
      let sup =
        Sup.create
          ~breaker:
            { Sup.cb_failure_threshold = 2; cb_base_term = 2; cb_max_term = 8 }
          [ lane ]
      in
      let state () = (List.hd (Sup.health sup).Sup.fh_lanes).Sup.lh_state in
      let polls () = (List.hd (Sup.health sup).Sup.fh_lanes).Sup.lh_polls in
      ignore (Sup.poll sup);
      Alcotest.(check string) "synced lane is active" "active"
        (state_name (state ()));
      failing := true;
      ignore (Sup.poll sup);
      Alcotest.(check string) "first failure degrades" "degraded"
        (state_name (state ()));
      ignore (Sup.poll sup);
      Alcotest.(check string) "threshold parks for the base term"
        "parked(5,2)"
        (state_name (state ()));
      let parked_polls = polls () in
      ignore (Sup.poll sup);
      Alcotest.(check int) "parked rounds skip the lane" parked_polls
        (polls ());
      ignore (Sup.poll sup);
      Alcotest.(check string) "probation failure re-parks at double term"
        "parked(9,4)"
        (state_name (state ()));
      ignore (Sup.run sup ~rounds:3);
      ignore (Sup.poll sup);
      Alcotest.(check string) "second probe re-parks at the term cap"
        "parked(17,8)"
        (state_name (state ()));
      failing := false;
      ignore (Sup.run sup ~rounds:7);
      ignore (Sup.poll sup);
      Alcotest.(check string) "successful probation recovers to active"
        "active"
        (state_name (state ()));
      let lh = List.hd (Sup.health sup).Sup.fh_lanes in
      Alcotest.(check int) "three trips recorded" 3 lh.Sup.lh_trips;
      Alcotest.(check int) "failure counter cleared" 0 lh.Sup.lh_failures)

(* ------------------------------------------------------------------ *)
(* Fault isolation                                                     *)

let isolation_differential =
  Alcotest.test_case
    "one blown lane parks alone; clean lanes byte-identical to solo runs"
    `Quick (fun () ->
      let scripts = [ [ 0; 1; 2; 3 ]; [ 1; 1; 0 ]; [ 2; 0; 3; 1 ] ] in
      let bridges =
        List.mapi
          (fun i ops -> scripted_bridge ~salt:(string_of_int i) ops)
          scripts
      in
      let clean_lanes =
        List.mapi
          (fun i (b, snaps) ->
            scripted_lane ~name:(Printf.sprintf "clean-%d" i) b snaps)
          bridges
      in
      let blown_b, blown_snaps = scripted_bridge ~salt:"blown" [ 0; 1 ] in
      let blown =
        scripted_lane ~name:"blown" ~fail_from:3 blown_b blown_snaps
      in
      let rounds = 8 in
      let fleet = Sup.create (clean_lanes @ [ blown ]) in
      ignore (Sup.run fleet ~rounds);
      List.iteri
        (fun i lane ->
          let solo = Sup.create [ lane ] in
          ignore (Sup.run solo ~rounds);
          Alcotest.(check string)
            (Printf.sprintf "lane %d stream identical to its solo run" i)
            (render_stream (Sup.lane_alerts solo 0))
            (render_stream (Sup.lane_alerts fleet i)))
        clean_lanes;
      let h = Sup.health fleet in
      Alcotest.(check int) "exactly the blown lane is parked" 1
        h.Sup.fh_parked;
      List.iteri
        (fun i (lh : Sup.lane_health) ->
          if i < List.length clean_lanes then begin
            Alcotest.(check string)
              (Printf.sprintf "clean lane %d stays active" i)
              "active"
              (state_name lh.Sup.lh_state);
            match lh.Sup.lh_monitor with
            | Some mh ->
                Alcotest.(check bool)
                  (Printf.sprintf "clean lane %d is synced" i)
                  true mh.Monitor.h_synced
            | None -> Alcotest.fail "clean lane never polled"
          end
          else begin
            (match lh.Sup.lh_state with
            | Sup.Parked _ -> ()
            | s ->
                Alcotest.failf "blown lane should be parked, is %s"
                  (state_name s));
            Alcotest.(check bool) "blown lane recorded its error" true
              (lh.Sup.lh_last_error <> None)
          end)
        h.Sup.fh_lanes)

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)

let preset_lanes () =
  [
    Presets.lane ~seed:5 ~rounds_to_sync:3
      (Presets.Generic_kind Xcw_workload.Generic.default_spec);
    Presets.lane ~rounds_to_sync:3 ~name:"attack-a"
      (Presets.Attack Report.Forged_proof);
    (* Mirror of the attack lane: same scenario, different name — its
       alerts collapse on the bus, exercising dedup under every jobs
       setting. *)
    Presets.lane ~rounds_to_sync:3 ~name:"attack-b"
      (Presets.Attack Report.Forged_proof);
  ]

let determinism_jobs =
  Alcotest.test_case
    "fleet output identical at --jobs 1/2/4 and across same-seed runs"
    `Quick (fun () ->
      let run ~ndomains =
        let sup = Sup.create ~ndomains (preset_lanes ()) in
        ignore (Sup.run sup ~rounds:5);
        fleet_signature sup
      in
      let s1 = run ~ndomains:1 in
      Alcotest.(check string) "jobs 2 = jobs 1" s1 (run ~ndomains:2);
      Alcotest.(check string) "jobs 4 = jobs 1" s1 (run ~ndomains:4);
      Alcotest.(check string) "same-seed rerun identical" s1
        (run ~ndomains:1);
      (* The mirrored attack lane really collapsed on the bus. *)
      let sup = Sup.create (preset_lanes ()) in
      ignore (Sup.run sup ~rounds:5);
      Alcotest.(check bool) "mirror lane collapsed on the bus" true
        ((Sup.health sup).Sup.fh_collapsed > 0))

let prop_determinism =
  QCheck.Test.make ~count:(T.qcount 10)
    ~name:"random traffic: fleet output identical at jobs 1 vs 2"
    (QCheck.pair (T.arb_ops ~max_len:4) (T.arb_ops ~max_len:4))
    (fun (ops_a, ops_b) ->
      let lanes () =
        List.mapi
          (fun i (salt, ops) ->
            let b, snaps = scripted_bridge ~salt ops in
            scripted_lane ~name:(Printf.sprintf "lane-%d" i) b snaps)
          [ ("pa", ops_a); ("pb", ops_b) ]
      in
      let run ~ndomains lanes =
        let sup = Sup.create ~ndomains lanes in
        ignore (Sup.run sup ~rounds:6);
        fleet_signature sup
      in
      (* Two independent builds of the same scripts must agree, at any
         worker count.  (Chains are mutable, so each run gets a fresh
         build; determinism of the build itself is part of the claim.) *)
      run ~ndomains:1 (lanes ()) = run ~ndomains:2 (lanes ()))

(* ------------------------------------------------------------------ *)
(* Poll budget                                                         *)

let budget_catchup =
  Alcotest.test_case
    "budgeted lane catches up without parking and loses no alerts" `Quick
    (fun () ->
      let b, _ = scripted_bridge ~salt:"budget" [ 0; 1; 2; 3; 0; 1; 2; 3 ] in
      (* The schedule demands the full heads from round 1; the budget
         makes the lane earn them a few blocks per poll. *)
      let heads_lane name =
        {
          Sup.l_name = name;
          l_input = T.monitor_input ~label:name b;
          l_cursors = (fun _ -> T.cur b);
        }
      in
      let sb, tb = T.cur b in
      let budget = 4 in
      let rounds = ((max sb tb + budget - 1) / budget) + 2 in
      let budgeted = Sup.create ~poll_budget:budget [ heads_lane "slow" ] in
      ignore (Sup.run budgeted ~rounds);
      let free = Sup.create [ heads_lane "fast" ] in
      ignore (Sup.run free ~rounds);
      let lh = List.hd (Sup.health budgeted).Sup.fh_lanes in
      Alcotest.(check string) "budgeted lane ends active" "active"
        (state_name lh.Sup.lh_state);
      Alcotest.(check int) "no trips while catching up" 0 lh.Sup.lh_trips;
      Alcotest.(check bool) "budgeted lane finished synced" true
        (match lh.Sup.lh_monitor with
        | Some mh -> mh.Monitor.h_synced
        | None -> false);
      (* The budgeted replay may cut inside an op's block span, alerting
         a transient (later-matched) anomaly the full-jump run never
         surfaces — so the streams are superset-ordered, and the final
         reports (where such transients are retracted) are identical. *)
      let keys sup = T.alert_keys (Sup.lane_alerts sup 0) in
      let free_keys = keys free and budgeted_keys = keys budgeted in
      Alcotest.(check bool)
        "unbudgeted alert keys are a subset of the budgeted ones" true
        (List.for_all (fun k -> List.mem k budgeted_keys) free_keys);
      Alcotest.(check bool) "final reports identical" true
        (T.report_signature (lane_report budgeted 0)
        = T.report_signature (lane_report free 0)))

(* ------------------------------------------------------------------ *)
(* Golden 4-bridge fleet                                               *)

(* ronin/nomad at the fixture seeds and scale, plus the default generic
   and forged-proof pack — the same inputs test_golden pins, driven
   through the fleet instead of the batch detector. *)
let golden_fleet () =
  let lanes =
    [
      Presets.lane ~seed:7 ~scale:0.02 ~rounds_to_sync:6 Presets.Ronin;
      Presets.lane ~seed:11 ~scale:0.02 ~rounds_to_sync:6 Presets.Nomad;
      Presets.lane ~rounds_to_sync:6
        (Presets.Generic_kind Xcw_workload.Generic.default_spec);
      Presets.lane ~rounds_to_sync:6 (Presets.Attack Report.Forged_proof);
    ]
  in
  let sup = Sup.create lanes in
  ignore (Sup.run sup ~rounds:8);
  sup

let golden_reuse =
  Alcotest.test_case
    "fleet lanes reproduce the existing per-bridge fixtures" `Quick
    (fun () ->
      match Sys.getenv_opt "XCW_GOLDEN_WRITE" with
      | Some _ ->
          (* Fixtures are written by the batch golden suite only. *)
          print_endline "skipping fixture reuse in write mode"
      | None ->
          let sup = golden_fleet () in
          let check_fixture i ~render ~fixture =
            let expected = T.read_file (Filename.concat "golden" fixture) in
            let got = render (lane_report sup i) in
            if expected <> got then
              Alcotest.failf "lane %d drifted from %s at %s" i fixture
                (T.first_diff expected got)
          in
          check_fixture 0 ~render:T.render_report ~fixture:"ronin.golden";
          check_fixture 1 ~render:T.render_report ~fixture:"nomad.golden";
          check_fixture 3 ~render:T.render_attack_report
            ~fixture:"attack_forged-proof.golden")

let golden_fleet_fixture =
  Alcotest.test_case "fleet stream and health match golden/fleet.golden"
    `Quick (fun () ->
      let sup = golden_fleet () in
      let h = Sup.health sup in
      let buf = Buffer.create 4096 in
      Printf.bprintf buf "fleet: %d lanes, %d rounds\n" (Sup.lane_count sup)
        h.Sup.fh_rounds;
      List.iter
        (fun (lh : Sup.lane_health) ->
          Printf.bprintf buf "lane %d %s %s polls=%d alerts=%d\n"
            lh.Sup.lh_index lh.Sup.lh_name
            (state_name lh.Sup.lh_state)
            lh.Sup.lh_polls lh.Sup.lh_alerts)
        h.Sup.fh_lanes;
      Printf.bprintf buf "bus: emitted=%d collapsed=%d\n" h.Sup.fh_emitted
        h.Sup.fh_collapsed;
      List.iter
        (fun fa -> Printf.bprintf buf "%s\n" (render_bus_alert fa))
        (Sup.alerts sup);
      Buffer.add_string buf (T.render_report (lane_report sup 2));
      let rendered = Buffer.contents buf in
      match Sys.getenv_opt "XCW_GOLDEN_WRITE" with
      | Some dir ->
          let path = Filename.concat dir "fleet.golden" in
          let oc = open_out_bin path in
          output_string oc rendered;
          close_out oc;
          Printf.printf "wrote %s\n%!" path
      | None ->
          let path = Filename.concat "golden" "fleet.golden" in
          if not (Sys.file_exists path) then
            Alcotest.failf
              "missing fixture %s (regenerate with XCW_GOLDEN_WRITE)" path
          else
            let expected = T.read_file path in
            if expected <> rendered then
              Alcotest.failf "fleet output drifted from %s at %s" path
                (T.first_diff expected rendered))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fleet"
    [
      ("bus", [ bus_collapse; bus_distinct; bus_expiry ]);
      ("breaker", [ breaker_lifecycle ]);
      ("isolation", [ isolation_differential ]);
      ( "determinism",
        [ determinism_jobs; QCheck_alcotest.to_alcotest prop_determinism ] );
      ("budget", [ budget_catchup ]);
      ("golden", [ golden_reuse; golden_fleet_fixture ]);
    ]
