(* Sequential-equivalence net for domain-parallel evaluation.

   The engine promises that [Engine.run ~ndomains:k] is observationally
   identical to the sequential engine for any k — same relations, same
   derived-tuple counts, same dump_facts bytes — and that the monitor's
   alert stream is order-identical across worker counts.  These
   properties are what lets every consumer turn on [--jobs] without
   re-validating its goldens, so they are tested differentially here
   before anyone trusts the speedup.

   Also home to the [Xcw_par.Pool] unit tests (exception propagation,
   ordering, reuse, the 1-domain no-spawn guarantee) and the
   multi-domain metrics hammer (no lost increments now that the
   [Xcw_obs.Metrics] hot paths are domain-safe). *)

open Xcw_datalog
open Ast
module Pool = Xcw_par.Pool
module Metrics = Xcw_obs.Metrics
module U256 = Xcw_uint256.Uint256
module Detector = Xcw_core.Detector
module Monitor = Xcw_core.Monitor
module Report = Xcw_core.Report
module T = Xcw_testlib

let u = U256.of_int
let qcount = T.qcount

(* ------------------------------------------------------------------ *)
(* Differential harness                                                *)

(* A program exercising every evaluation feature the parallel path has
   to reproduce: multi-literal joins, stratified negation, comparison
   built-ins, and a recursive stratum. *)
let diff_rules =
  [
    atom "two_hop" [ v "x"; v "z" ]
    <-- [
          pos (atom "edge" [ v "x"; v "y" ]);
          pos (atom "edge" [ v "y"; v "z" ]);
        ];
    atom "forward" [ v "x"; v "y" ]
    <-- [ pos (atom "edge" [ v "x"; v "y" ]); ev "y" >! ev "x" ];
    atom "one_way" [ v "x"; v "y" ]
    <-- [
          pos (atom "edge" [ v "x"; v "y" ]);
          neg (atom "edge" [ v "y"; v "x" ]);
        ];
    atom "path" [ v "x"; v "y" ] <-- [ pos (atom "edge" [ v "x"; v "y" ]) ];
    atom "path" [ v "x"; v "z" ]
    <-- [ pos (atom "edge" [ v "x"; v "y" ]); pos (atom "path" [ v "y"; v "z" ]) ];
  ]

let edges_to_facts edges =
  List.map (fun (a, b) -> ("edge", [ Int a; Int b ])) edges

let gen_edges =
  QCheck.Gen.(list_size (0 -- 40) (pair (int_bound 12) (int_bound 12)))

(* Fresh scratch directory for dump_facts byte comparison. *)
let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let rec go i =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "xcw-par-%d-%d" !tmp_counter i)
    in
    if Sys.file_exists d then go (i + 1)
    else begin
      Sys.mkdir d 0o700;
      d
    end
  in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Every fact file's name and exact bytes, concatenated in sorted file
   order — the strongest observational signature dump_facts offers. *)
let dump_bytes db =
  let dir = fresh_dir () in
  Engine.dump_facts db ~dir;
  let files = Sys.readdir dir in
  Array.sort compare files;
  let buf = Buffer.create 4096 in
  Array.iter
    (fun f ->
      Buffer.add_string buf f;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (read_file (Filename.concat dir f));
      Sys.remove (Filename.concat dir f))
    files;
  Sys.rmdir dir;
  Buffer.contents buf

let relation_signature db =
  List.map
    (fun p -> (p, List.sort compare (Engine.facts db p)))
    (Engine.derived_predicates db)

let run_batch ~ndomains facts =
  let db = Engine.create_db () in
  List.iter (fun (p, t) -> Engine.add_fact db p t) facts;
  let stats = Engine.run ~ndomains db { rules = diff_rules } in
  (relation_signature db, stats.Engine.tuples_derived, dump_bytes db)

let prop_run_differential =
  QCheck.Test.make
    ~name:"run ~ndomains:k = sequential (relations, counts, TSV bytes)"
    ~count:(qcount 40)
    (QCheck.make gen_edges)
    (fun edges ->
      let facts = edges_to_facts edges in
      let reference = run_batch ~ndomains:1 facts in
      List.for_all (fun k -> run_batch ~ndomains:k facts = reference) [ 2; 4 ])

let run_incremental_batches ~ndomains batches =
  let db = Engine.create_db () in
  List.iter
    (fun batch ->
      List.iter
        (fun (p, t) -> ignore (Engine.insert_fact db p t))
        (edges_to_facts batch);
      ignore (Engine.run_incremental ~ndomains db { rules = diff_rules }))
    batches;
  (relation_signature db, dump_bytes db)

let prop_incremental_differential =
  QCheck.Test.make
    ~name:"run_incremental ~ndomains:k = sequential over journaled deltas"
    ~count:(qcount 30)
    (QCheck.pair (QCheck.make gen_edges) (QCheck.make gen_edges))
    (fun (e1, e2) ->
      let reference = run_incremental_batches ~ndomains:1 [ e1; e2 ] in
      List.for_all
        (fun k -> run_incremental_batches ~ndomains:k [ e1; e2 ] = reference)
        [ 2; 4 ])

(* ------------------------------------------------------------------ *)
(* Monitor alert streams across worker counts                          *)

(* The whole scripted scenario is deterministic, so two independent
   bridges driven by the same op list produce the same chains; the only
   degree of freedom left is [i_ndomains].  Streams are compared
   poll-by-poll WITHOUT sorting: order-identical, not just set-equal. *)
let alert_stream ~ndomains ops =
  let b, m = T.make_bridge () in
  let input = { (T.monitor_input b) with Detector.i_ndomains = ndomains } in
  let mon = Monitor.create input in
  let user = T.user_with_tokens b m "par-mon-user" (u 1_000_000) in
  T.seed_completed_deposit b m user;
  List.mapi
    (fun i op ->
      T.apply_op b m user i op;
      let sb, tb = T.cur b in
      List.map
        (fun (a : Monitor.alert) ->
          ( a.Monitor.al_rule,
            Report.class_name a.Monitor.al_anomaly.Report.a_class,
            a.Monitor.al_anomaly.Report.a_tx_hash,
            a.Monitor.al_detected_at ))
        (Monitor.poll mon ~source_block:sb ~target_block:tb))
    ops

let monitor_streams_identical =
  Alcotest.test_case "monitor alert streams order-identical at 1/2/4 domains"
    `Quick (fun () ->
      let ops = [ 0; 1; 2; 3; 0; 2; 1; 3 ] in
      let reference = alert_stream ~ndomains:1 ops in
      Alcotest.(check bool)
        "some alerts raised (scenario not vacuous)" true
        (List.exists (fun poll -> poll <> []) reference);
      List.iter
        (fun k ->
          if alert_stream ~ndomains:k ops <> reference then
            Alcotest.failf "alert stream at ndomains:%d diverged" k)
        [ 2; 4 ])

let prop_monitor_streams =
  QCheck.Test.make
    ~name:"monitor alert streams order-identical on random op scripts"
    ~count:(qcount 5)
    (T.arb_ops ~max_len:6)
    (fun ops ->
      alert_stream ~ndomains:4 ops = alert_stream ~ndomains:1 ops)

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                     *)

exception Boom of int

let pool_results_ordered =
  Alcotest.test_case "results in submission order despite skewed tasks"
    `Quick (fun () ->
      let p = Pool.create ~ndomains:4 in
      let n = 32 in
      let tasks =
        List.init n (fun i () ->
            (* Early tasks are the slow ones, so a finish-order merge
               would come back reversed. *)
            let spin = (n - i) * 10_000 in
            let acc = ref 0 in
            for j = 1 to spin do
              acc := (!acc + j) land 0xffff
            done;
            ignore !acc;
            i)
      in
      Alcotest.(check (list int)) "ordered" (List.init n Fun.id)
        (Pool.run p tasks);
      Pool.shutdown p)

let pool_exception_propagates =
  Alcotest.test_case "lowest-index task exception reaches submitter" `Quick
    (fun () ->
      let p = Pool.create ~ndomains:3 in
      (match
         Pool.run p
           (List.init 8 (fun i () ->
                if i = 2 || i = 5 then raise (Boom i) else i))
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest index wins" 2 i);
      (* No deadlock, no dead worker: the pool still runs batches. *)
      Alcotest.(check (list int)) "pool alive after exception" [ 0; 1; 4; 9 ]
        (Pool.run p (List.init 4 (fun i () -> i * i)));
      Pool.shutdown p)

let pool_empty_batch =
  Alcotest.test_case "empty batch returns immediately" `Quick (fun () ->
      let p = Pool.create ~ndomains:2 in
      Alcotest.(check (list unit)) "empty" [] (Pool.run p []);
      Pool.shutdown p;
      (* Even on a shut-down pool: the empty batch never touches the
         workers. *)
      Alcotest.(check (list unit)) "empty after shutdown" [] (Pool.run p []))

let pool_reusable =
  Alcotest.test_case "pool reusable across batches; stats accumulate" `Quick
    (fun () ->
      let p = Pool.create ~ndomains:2 in
      Pool.reset_stats p;
      for round = 1 to 3 do
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          (List.init 5 (fun i -> i + round))
          (Pool.run p (List.init 5 (fun i () -> i + round)))
      done;
      let s = Pool.stats p in
      Alcotest.(check int) "batches" 3 s.Pool.st_batches;
      Alcotest.(check int) "tasks" 15 s.Pool.st_tasks;
      Pool.shutdown p)

let pool_one_domain_never_spawns =
  Alcotest.test_case "ndomains:1 (and sequential pools) never spawn" `Quick
    (fun () ->
      let self = Domain.self () in
      let check_inline p =
        let doms = Pool.run p (List.init 16 (fun _ () -> Domain.self ())) in
        List.iter
          (fun d ->
            if d <> self then Alcotest.fail "task ran on a spawned domain")
          doms
      in
      check_inline (Pool.create ~ndomains:1);
      (* The modeling pool reports 4 domains but must execute inline. *)
      let m = Pool.sequential ~ndomains:4 in
      Alcotest.(check int) "modeling pool reports its k" 4 (Pool.ndomains m);
      check_inline m)

let pool_shutdown_rejects_work =
  Alcotest.test_case "run on a shut-down pool raises" `Quick (fun () ->
      let p = Pool.create ~ndomains:2 in
      Pool.shutdown p;
      match Pool.run p [ (fun () -> 1) ] with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Metrics hammer                                                      *)

let metrics_hammer =
  Alcotest.test_case "no lost metric updates under 4 hammering domains"
    `Quick (fun () ->
      let reg = Metrics.create () in
      let c = Metrics.counter reg "hammer_total" in
      let g = Metrics.gauge reg "hammer_gauge" in
      let h = Metrics.histogram reg "hammer_hist" in
      let ndomains = 4 and per = qcount 25_000 in
      let doms =
        List.init ndomains (fun _ ->
            Domain.spawn (fun () ->
                (* Interning from several domains must also be safe and
                   must resolve to the same instruments. *)
                let c = Metrics.counter reg "hammer_total" in
                let g = Metrics.gauge reg "hammer_gauge" in
                let h = Metrics.histogram reg "hammer_hist" in
                for i = 1 to per do
                  Metrics.Counter.inc c;
                  Metrics.Gauge.add g 1.0;
                  Metrics.Histogram.observe h (float_of_int (i land 7))
                done))
      in
      List.iter Domain.join doms;
      let total = ndomains * per in
      Alcotest.(check int) "counter" total (Metrics.Counter.value c);
      Alcotest.(check (float 0.0)) "gauge" (float_of_int total)
        (Metrics.Gauge.value g);
      Alcotest.(check int) "histogram count" total (Metrics.Histogram.count h))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_run_differential; prop_incremental_differential ] );
      ( "monitor",
        monitor_streams_identical
        :: List.map QCheck_alcotest.to_alcotest [ prop_monitor_streams ] );
      ( "pool",
        [
          pool_results_ordered;
          pool_exception_propagates;
          pool_empty_batch;
          pool_reusable;
          pool_one_domain_never_spawns;
          pool_shutdown_rejects_work;
        ] );
      ("metrics", [ metrics_hammer ]);
    ]
