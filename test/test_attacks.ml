(* Attack-pack harness (2023 hack corpus, DESIGN.md §12).

   Four axes, one suite:
   - exactness: each class's dedicated rule flags exactly the injected
     transactions, and the other three classes stay silent;
   - soundness: the benign twin of every pack produces zero attack hits
     and zero anomalies;
   - robustness: for every class, the attack report is identical across
     {clean, moderate RPC faults, 3-endpoint/2-quorum with one
     Byzantine liar} x {--jobs 1, --jobs 4} (timings and fact totals
     excluded — faults cost simulated time by design);
   - coverage: every rule of the cross-chain program derives at least
     one tuple in at least one scenario of the corpus (nomad, ronin,
     generic, the four packs), modulo an explicit skip-list of
     intentionally-latent rules. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain
module Erc20 = Xcw_chain.Erc20
module Bridge = Xcw_bridge.Bridge
module Events = Xcw_bridge.Events
module Config = Xcw_core.Config
module Pricing = Xcw_core.Pricing
module Fault = Xcw_rpc.Fault
module Pool = Xcw_rpc.Pool
module Ast = Xcw_datalog.Ast
module Engine = Xcw_datalog.Engine
module Detector = Xcw_core.Detector
module Decoder = Xcw_core.Decoder
module Report = Xcw_core.Report
module Rules = Xcw_core.Rules
module Scenario = Xcw_workload.Scenario
module Generic = Xcw_workload.Generic
module Attacks = Xcw_workload.Attacks
module Exit_bridge = Xcw_workload.Exit_bridge
module Nomad = Xcw_workload.Nomad
module Ronin = Xcw_workload.Ronin

let attack_input (b : Scenario.built) =
  Detector.default_input ~label:"attack" ~plugin:Decoder.ronin_plugin
    ~config:b.Scenario.config
    ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
    ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
    ~pricing:b.Scenario.pricing

let detect (b : Scenario.built) = Detector.run (attack_input b)

let hits_txs (r : Report.t) cls =
  match Report.attack_row r cls with
  | None -> Alcotest.failf "missing attack row for %s" (Attacks.class_slug cls)
  | Some row ->
      List.sort compare
        (List.map (fun h -> h.Report.ah_tx_hash) row.Report.ar_hits)

(* ------------------------------------------------------------------ *)
(* Exactness: dedicated rule <-> injected transactions                  *)

let check_exactness cls () =
  let inj = Attacks.build (Attacks.default_spec cls) in
  let r = (detect inj.Attacks.inj_built).Detector.report in
  Alcotest.(check (list string))
    (Attacks.class_slug cls ^ ": rule flags exactly the injected txs")
    inj.Attacks.inj_attack_txs (hits_txs r cls);
  List.iter
    (fun other ->
      if other <> cls then
        Alcotest.(check (list string))
          (Attacks.class_slug other ^ " stays silent")
          [] (hits_txs r other))
    Report.attack_classes;
  (* The injection is non-trivial and the class rows carry priced,
     id-tagged evidence. *)
  Alcotest.(check int)
    "three injected attack txs" 3
    (List.length inj.Attacks.inj_attack_txs);
  match Report.attack_row r cls with
  | None -> assert false
  | Some row ->
      List.iter
        (fun h ->
          Alcotest.(check bool) "hit carries an id" true (h.Report.ah_id >= 0);
          Alcotest.(check bool) "hit is priced" true (h.Report.ah_usd_value > 0.))
        row.Report.ar_hits

(* ------------------------------------------------------------------ *)
(* Soundness: the benign twin is clean                                  *)

let check_benign_twin cls () =
  let spec = Attacks.default_spec cls in
  let r = (detect (Attacks.benign_twin spec)).Detector.report in
  Alcotest.(check int)
    (Attacks.class_slug cls ^ " twin: zero attack hits")
    0
    (Report.total_attack_hits r);
  Alcotest.(check int)
    (Attacks.class_slug cls ^ " twin: zero anomalies")
    0 (Report.total_anomalies r)

(* ------------------------------------------------------------------ *)
(* Robustness: clean / faulty / quorum x jobs 1 / 4                     *)

(* Everything output-facing except wall/simulated timings and the fact
   total (fault plans add trace gaps and retries; the verdict must not
   move). *)
let signature (r : Report.t) =
  let anomaly (a : Report.anomaly) =
    ( Report.class_name a.Report.a_class,
      a.Report.a_tx_hash,
      a.Report.a_chain_id,
      a.Report.a_usd_value )
  in
  let row (row : Report.rule_row) =
    ( row.Report.rr_rule,
      row.Report.rr_captured,
      List.sort compare (List.map anomaly row.Report.rr_anomalies) )
  in
  let attack_row (ar : Report.attack_row) =
    ( Report.attack_class_name ar.Report.ar_class,
      ar.Report.ar_rule,
      List.map
        (fun h ->
          ( h.Report.ah_tx_hash,
            h.Report.ah_chain_id,
            h.Report.ah_id,
            h.Report.ah_usd_value,
            h.Report.ah_detail ))
        ar.Report.ar_hits )
  in
  ( r.Report.bridge_name,
    List.map row r.Report.rows,
    List.map attack_row r.Report.attack_rows,
    List.map (fun (c : Report.cctx) -> (c.Report.c_src_tx, c.Report.c_dst_tx))
      r.Report.cctxs )

let variants input =
  let quorum_faults = [ None; None; Some Fault.byzantine ] in
  [
    ("clean", input);
    ( "moderate-faults",
      {
        input with
        Detector.i_source_fault = Some Fault.moderate;
        i_target_fault = Some Fault.moderate;
      } );
    ( "quorum-3-2-one-liar",
      {
        input with
        Detector.i_endpoints = 3;
        i_quorum = 2;
        i_source_endpoint_faults = quorum_faults;
        i_target_endpoint_faults = quorum_faults;
      } );
  ]

let check_matrix cls () =
  let inj = Attacks.build (Attacks.default_spec cls) in
  let input = attack_input inj.Attacks.inj_built in
  let reference = ref None in
  List.iter
    (fun (vname, vinput) ->
      List.iter
        (fun jobs ->
          let result =
            Detector.run { vinput with Detector.i_ndomains = jobs }
          in
          let s = signature result.Detector.report in
          (match !reference with
          | None -> reference := Some s
          | Some s0 ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s/--jobs %d matches the clean run"
                   (Attacks.class_slug cls) vname jobs)
                true (s = s0));
          if vname = "quorum-3-2-one-liar" then
            match result.Detector.pool_health with
            | None -> Alcotest.fail "expected pool health from a quorum run"
            | Some (sh, th) ->
                Alcotest.(check (list int))
                  "source pool names the liar" [ 2 ] sh.Pool.ph_suspects;
                Alcotest.(check (list int))
                  "target pool names the liar" [ 2 ] th.Pool.ph_suspects)
        [ 1; 4 ])
    (variants input)

(* ------------------------------------------------------------------ *)
(* Generator soundness (qcheck): twin + injection = attacked scenario   *)

let arb_attack_spec =
  QCheck.(
    map
      (fun (seed, cls_ix, count) ->
        let cls = List.nth Report.attack_classes (cls_ix mod 4) in
        {
          (Attacks.default_spec cls) with
          Attacks.a_count = count;
          a_base =
            {
              (Attacks.default_spec cls).Attacks.a_base with
              Generic.g_seed = seed;
              g_erc20_deposits = 6;
              g_native_deposits = 2;
              g_withdrawals = 2;
              g_via_aggregator = 1;
            };
        })
      (triple (int_range 1 50_000) (int_bound 3) (int_bound 4)))

let prop_twin_differential =
  QCheck.Test.make
    ~name:"attacked scenario = benign twin + exactly the injected txs"
    ~count:(Xcw_testlib.qcount 6) arb_attack_spec (fun spec ->
      let inj = Attacks.build spec in
      let twin_txs = Attacks.all_txs (Attacks.benign_twin spec) in
      let attacked_txs = Attacks.all_txs inj.Attacks.inj_built in
      let module S = Set.Make (String) in
      let twin = S.of_list twin_txs and injected = S.of_list inj.Attacks.inj_txs in
      S.equal (S.of_list attacked_txs) (S.union twin injected)
      && S.is_empty (S.inter twin injected)
      && S.subset (S.of_list inj.Attacks.inj_attack_txs) injected
      && List.length inj.Attacks.inj_attack_txs = spec.Attacks.a_count)

let prop_deterministic =
  QCheck.Test.make ~name:"attack packs are deterministic per spec"
    ~count:(Xcw_testlib.qcount 3) arb_attack_spec (fun spec ->
      let a = Attacks.build spec and b = Attacks.build spec in
      Attacks.all_txs a.Attacks.inj_built = Attacks.all_txs b.Attacks.inj_built
      && a.Attacks.inj_attack_txs = b.Attacks.inj_attack_txs)

(* ------------------------------------------------------------------ *)
(* Rule coverage audit                                                  *)

(* Rules whose firing the corpus deliberately does not exercise, as
   "NN:head_pred" (rule index in {!Rules.all_rules}).  Every entry must
   stay genuinely uncovered — a skip-listed rule that starts firing
   fails the audit too, forcing the list to shrink.

   sc_deposit_event_no_escrow is defense-in-depth for real-chain data:
   the simulated bridge cannot emit a deposit event without moving the
   escrow in the same transaction, so no end-to-end scenario can reach
   it (the rule itself is unit-covered in test_rules.ml). *)
let coverage_skip_list = [ "19:sc_deposit_event_no_escrow" ]

(* The two withdrawal-rule variants the calibrated workloads never hit:
   a native T-side withdrawal released before T finality elapses
   (Finding 4's native shape) and a stolen-quorum release of an
   honestly requested withdrawal to a different beneficiary. *)
let edge_input () =
  let s =
    Chain.create ~chain_id:1 ~name:"s" ~finality_seconds:60
      ~genesis_time:1_650_000_000
  in
  let t =
    Chain.create ~chain_id:2 ~name:"t" ~finality_seconds:45
      ~genesis_time:1_650_000_000
  in
  let b =
    Bridge.create
      {
        Bridge.s_label = "edge";
        s_source_chain = s;
        s_target_chain = t;
        s_escrow = Bridge.Lock_unlock;
        s_acceptance =
          Bridge.Multisig
            {
              threshold = 2;
              validator_count = 3;
              compromised_keys = 0;
              (* Ronin-style: the validators do not enforce finality,
                 so early releases succeed instead of reverting. *)
              enforce_source_finality = false;
            };
        s_beneficiary_repr = Events.B_address;
        s_buggy_unmapped_withdrawal = false;
      }
  in
  let m = Bridge.register_token_pair b ~name:"Edge" ~symbol:"EDG" ~decimals:18 in
  ignore (Bridge.register_target_native_mapping b ~name:"Wrapped T" ~symbol:"WT");
  let config = Config.of_bridge b in
  let user = Address.of_seed "edge-user" in
  let mallory = Address.of_seed "edge-mallory" in
  let eth = Scenario.eth_to_wei in
  Chain.fund s user (eth 10.0);
  Chain.fund t user (eth 10.0);
  Chain.fund s mallory (eth 1.0);
  ignore
    (Chain.submit_tx s ~from_:b.Bridge.source.Bridge.operator
       ~to_:m.Bridge.m_src_token
       ~input:(Erc20.mint_calldata ~to_:user ~amount:(U256.of_int 5_000))
       ());
  (* Seed: a completed deposit funds the S escrow and gives the user
     T-side tokens to withdraw. *)
  let d =
    Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
      ~amount:(U256.of_int 5_000) ~beneficiary:user
  in
  ignore (Bridge.complete_deposit b ~deposit:d);
  (* Native withdrawal released 5 s after the request (T finality is
     45 s): the native finality-violation variant. *)
  Chain.advance_time t 3600;
  let wn =
    Bridge.request_withdrawal_native b ~user ~amount:(eth 1.0)
      ~beneficiary:user
  in
  (match
     (Bridge.execute_withdrawal ~delay:5 b ~withdrawal:wn).Types.r_status
   with
  | Types.Success -> ()
  | _ -> Alcotest.fail "edge: early native release reverted");
  (* Honest request of 2000 by the user, released to mallory by a
     stolen quorum: the beneficiary-mismatch variant. *)
  Chain.advance_time t 3600;
  let w =
    Bridge.request_withdrawal b ~user ~dst_token:m.Bridge.m_dst_token
      ~amount:(U256.of_int 2_000) ~beneficiary:user
  in
  (match w.Bridge.w_withdrawal_id with
  | None -> Alcotest.fail "edge: withdrawal request reverted"
  | Some wid ->
      Bridge.compromise_validators b ~keys:2;
      Chain.set_time s (Chain.now t + 60);
      let r =
        Bridge.forged_withdrawal b ~attacker:mallory
          ~src_token:m.Bridge.m_src_token ~amount:(U256.of_int 2_000)
          ~withdrawal_id:wid
      in
      if r.Types.r_status <> Types.Success then
        Alcotest.fail "edge: re-signed release reverted");
  Detector.default_input ~label:"edge" ~plugin:Decoder.ronin_plugin ~config
    ~source_chain:s ~target_chain:t ~pricing:(Pricing.create ())

(* One probe rule per program rule: same body, head renamed to a
   reserved predicate, so per-rule firing is observable even when
   several rules share a head. *)
let probe_name i (r : Ast.rule) =
  Printf.sprintf "coverage_probe_%02d_%s" i r.Ast.head.Ast.pred

let probed_program () =
  let probes =
    List.mapi
      (fun i (r : Ast.rule) ->
        { r with Ast.head = { r.Ast.head with Ast.pred = probe_name i r } })
      Rules.all_rules
  in
  { Ast.rules = Rules.all_rules @ probes }

let coverage_scenarios () =
  let nomad () =
    let b = Nomad.build ~seed:11 ~scale:0.02 () in
    Detector.default_input ~label:"nomad" ~plugin:Decoder.nomad_plugin
      ~config:b.Scenario.config
      ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
      ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
      ~pricing:b.Scenario.pricing
  in
  let ronin () =
    let b = Ronin.build ~seed:7 ~scale:0.02 () in
    {
      (Detector.default_input ~label:"ronin" ~plugin:Decoder.ronin_plugin
         ~config:b.Scenario.config
         ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
         ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
         ~pricing:b.Scenario.pricing)
      with
      Detector.i_first_window_withdrawal_id =
        b.Scenario.first_window_withdrawal_id;
    }
  in
  let generic () = attack_input (Generic.build Generic.default_spec) in
  let pack cls () =
    attack_input (Attacks.build (Attacks.default_spec cls)).Attacks.inj_built
  in
  (* The exit-bridge lanes: the benign lane covers the accounting
     stratum's bookkeeping rules, the five attack classes its violation
     rules, and the undeposited claim the no-deposit outflow clause. *)
  let exit_benign () =
    attack_input (Exit_bridge.build_benign Exit_bridge.default_base)
  in
  let exit_pack cls () =
    attack_input
      (Exit_bridge.build (Exit_bridge.default_spec cls)).Exit_bridge.inj_built
  in
  let exit_undeposited () =
    attack_input (Exit_bridge.build_undeposited_claim Exit_bridge.default_base)
  in
  ("nomad", nomad) :: ("ronin", ronin) :: ("generic", generic)
  :: ("edge", edge_input)
  :: (List.map
        (fun cls -> ("attack-" ^ Attacks.class_slug cls, pack cls))
        Report.attack_classes
     @ ("exit", exit_benign)
       :: ("exit-undeposited", exit_undeposited)
       :: List.map
            (fun cls -> ("exit-" ^ Report.acc_class_slug cls, exit_pack cls))
            Report.acc_classes)

let rule_coverage =
  Alcotest.test_case "every rule fires in some corpus scenario" `Slow
    (fun () ->
      let program = probed_program () in
      let fired = Array.make (List.length Rules.all_rules) false in
      List.iter
        (fun (_, build_input) ->
          let input = build_input () in
          let result =
            Detector.run { input with Detector.i_program = program }
          in
          List.iteri
            (fun i r ->
              if Engine.fact_count result.Detector.db (probe_name i r) > 0
              then fired.(i) <- true)
            Rules.all_rules)
        (coverage_scenarios ());
      let uncovered = ref [] in
      List.iteri
        (fun i (r : Ast.rule) ->
          if not fired.(i) then
            uncovered :=
              Printf.sprintf "%02d:%s" i r.Ast.head.Ast.pred :: !uncovered)
        Rules.all_rules;
      let uncovered = List.rev !uncovered in
      let stale =
        List.filter (fun p -> not (List.mem p uncovered)) coverage_skip_list
      in
      Alcotest.(check (list string))
        "skip-listed rules are still genuinely latent" [] stale;
      let unexpected =
        List.filter (fun p -> not (List.mem p coverage_skip_list)) uncovered
      in
      Alcotest.(check (list string))
        "no rule outside the skip-list is uncovered" [] unexpected)

(* ------------------------------------------------------------------ *)
(* Generic token-cap contract                                           *)

let token_cap_raises =
  Alcotest.test_case "out-of-range g_n_tokens raises instead of clamping"
    `Quick (fun () ->
      let build n =
        ignore
          (Generic.build
             { Generic.default_spec with Generic.g_n_tokens = n })
      in
      let max_n = List.length Scenario.default_tokens in
      List.iter
        (fun n ->
          match build n with
          | () -> Alcotest.failf "g_n_tokens = %d accepted" n
          | exception Invalid_argument _ -> ())
        [ 0; -3; max_n + 1; 99 ];
      (* The boundaries stay valid. *)
      build 1;
      build max_n)

(* ------------------------------------------------------------------ *)

let exactness_cases =
  List.map
    (fun cls ->
      Alcotest.test_case
        (Attacks.class_slug cls ^ ": rule fires on exactly the injected txs")
        `Quick (check_exactness cls))
    Report.attack_classes

let twin_cases =
  List.map
    (fun cls ->
      Alcotest.test_case
        (Attacks.class_slug cls ^ ": benign twin is clean")
        `Quick (check_benign_twin cls))
    Report.attack_classes

let matrix_cases =
  List.map
    (fun cls ->
      Alcotest.test_case
        (Attacks.class_slug cls ^ ": fault/quorum/parallel matrix agrees")
        `Quick (check_matrix cls))
    Report.attack_classes

let () =
  Alcotest.run "attacks"
    [
      ("exactness", exactness_cases);
      ("benign-twin", twin_cases);
      ("matrix", matrix_cases);
      ( "generator",
        [
          QCheck_alcotest.to_alcotest prop_twin_differential;
          QCheck_alcotest.to_alcotest prop_deterministic;
        ] );
      ("coverage", [ rule_coverage ]);
      ("generic-contract", [ token_cap_raises ]);
    ]
