(* Tests for the event/transaction decoder (XChainWatcher phase 1):
   fact extraction from receipts, native-vs-erc20 classification, the
   lenient/strict beneficiary handling, and decode-failure marking. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain
module Erc20 = Xcw_chain.Erc20
module Bridge = Xcw_bridge.Bridge
module Events = Xcw_bridge.Events
module Rpc = Xcw_rpc.Rpc
module Config = Xcw_core.Config
module Facts = Xcw_core.Facts
module Decoder = Xcw_core.Decoder

let u = U256.of_int

let make_bridge repr =
  let s =
    Chain.create ~chain_id:1 ~name:"s" ~finality_seconds:60
      ~genesis_time:1_650_000_000
  in
  let t =
    Chain.create ~chain_id:2 ~name:"t" ~finality_seconds:30
      ~genesis_time:1_650_000_000
  in
  let b =
    Bridge.create
      {
        Bridge.s_label = "dec-test";
        s_source_chain = s;
        s_target_chain = t;
        s_escrow = Bridge.Lock_unlock;
        s_acceptance =
          Bridge.Multisig
            {
              threshold = 1;
              validator_count = 1;
              compromised_keys = 0;
              enforce_source_finality = true;
            };
        s_beneficiary_repr = repr;
        s_buggy_unmapped_withdrawal = false;
      }
  in
  let m = Bridge.register_token_pair b ~name:"Tok" ~symbol:"TOK" ~decimals:18 in
  ignore (Bridge.register_native_mapping b);
  (b, m)

let plugin_of repr =
  match repr with
  | Events.B_address -> Decoder.ronin_plugin
  | Events.B_bytes32 -> Decoder.nomad_plugin

let decode_all ?(role = Decoder.Source) b repr chain =
  let config = Config.of_bridge b in
  let client = Xcw_rpc.Client.create (Rpc.create chain) in
  Decoder.decode_chain (plugin_of repr) config ~role client chain

let facts_of_kind pred rds =
  List.concat_map
    (fun rd ->
      List.filter (fun f -> Facts.relation_name f = pred) rd.Decoder.rd_facts)
    rds

let new_user b name =
  let user = Address.of_seed name in
  Chain.fund b.Bridge.source.Bridge.chain user (U256.of_tokens ~decimals:18 100);
  Chain.fund b.Bridge.target.Bridge.chain user (U256.of_tokens ~decimals:18 100);
  user

let mint b (m : Bridge.token_mapping) user amount =
  ignore
    (Chain.submit_tx b.Bridge.source.Bridge.chain
       ~from_:b.Bridge.source.Bridge.operator ~to_:m.Bridge.m_src_token
       ~input:(Erc20.mint_calldata ~to_:user ~amount)
       ())

(* ------------------------------------------------------------------ *)

let erc20_deposit_facts =
  Alcotest.test_case "an ERC-20 deposit yields the Listing 1 facts" `Quick
    (fun () ->
      let b, m = make_bridge Events.B_address in
      let user = new_user b "dec-u1" in
      mint b m user (u 100);
      let d =
        Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
          ~amount:(u 100) ~beneficiary:user
      in
      assert (d.Bridge.d_deposit_id <> None);
      let rds = decode_all b Events.B_address b.Bridge.source.Bridge.chain in
      Alcotest.(check int) "one sc_token_deposited" 1
        (List.length (facts_of_kind Facts.r_sc_token_deposited rds));
      (* approve (Approval, no fact) + transferFrom Transfer + mint *)
      Alcotest.(check int) "two erc20_transfers (mint + escrow)" 2
        (List.length (facts_of_kind Facts.r_erc20_transfer rds));
      (* Every tx gets a transaction fact: deploys excluded? Deploy
         receipts have no [to]; the decoder records them with the
         creation pseudo-target. *)
      Alcotest.(check bool) "transaction facts exist" true
        (facts_of_kind Facts.r_transaction rds <> []);
      (* No decode errors. *)
      Alcotest.(check int) "no errors" 0
        (List.length (List.concat_map (fun rd -> rd.Decoder.rd_errors) rds)))

let native_deposit_is_traced =
  Alcotest.test_case "native deposits trigger the tracer path" `Quick
    (fun () ->
      let b, _ = make_bridge Events.B_address in
      let user = new_user b "dec-u2" in
      ignore (Bridge.deposit_native b ~user ~amount:(u 50) ~beneficiary:user);
      let rds = decode_all b Events.B_address b.Bridge.source.Bridge.chain in
      let native =
        List.filter (fun rd -> rd.Decoder.rd_is_native) rds
      in
      Alcotest.(check bool) "at least one native receipt" true (native <> []);
      Alcotest.(check int) "native_deposit fact built" 1
        (List.length (facts_of_kind Facts.r_native_deposit rds));
      (* The transaction fact must carry tx.value (recovered via RPC). *)
      let deposit_tx_value =
        List.find_map
          (fun f ->
            match f with
            | Facts.Transaction { value; _ } when not (U256.is_zero value) ->
                Some value
            | _ -> None)
          (List.concat_map (fun rd -> rd.Decoder.rd_facts) rds)
      in
      Alcotest.(check bool) "tx.value recovered" true
        (deposit_tx_value = Some (u 50)))

let weth_event_on_target_is_native_withdrawal =
  Alcotest.test_case
    "wrapped-native Deposit decodes as native_withdrawal on T" `Quick
    (fun () ->
      let b, _ = make_bridge Events.B_address in
      ignore (Bridge.register_target_native_mapping b ~name:"WNAT" ~symbol:"WNAT");
      let user = new_user b "dec-u3" in
      Chain.fund b.Bridge.target.Bridge.chain user (u 1_000);
      ignore (Bridge.request_withdrawal_native b ~user ~amount:(u 400) ~beneficiary:user);
      let rds =
        decode_all ~role:Decoder.Target b Events.B_address
          b.Bridge.target.Bridge.chain
      in
      Alcotest.(check int) "native_withdrawal fact" 1
        (List.length (facts_of_kind Facts.r_native_withdrawal rds));
      Alcotest.(check int) "tc_token_withdrew fact" 1
        (List.length (facts_of_kind Facts.r_tc_token_withdrew rds));
      Alcotest.(check int) "no native_deposit on T" 0
        (List.length (facts_of_kind Facts.r_native_deposit rds)))

let right_padded_deposit_parses_leniently =
  Alcotest.test_case "right-padded bytes32 beneficiary parses leniently"
    `Quick (fun () ->
      let b, m = make_bridge Events.B_bytes32 in
      let user = new_user b "dec-u4" in
      mint b m user (u 10);
      ignore
        (Bridge.deposit_erc20 ~beneficiary_padding:`Right b ~user
           ~src_token:m.Bridge.m_src_token ~amount:(u 10) ~beneficiary:user);
      let rds = decode_all b Events.B_bytes32 b.Bridge.source.Bridge.chain in
      match facts_of_kind Facts.r_sc_token_deposited rds with
      | [ Facts.Sc_token_deposited { beneficiary; _ } ] ->
          (* The tool recovers the user's address despite the wrong
             padding — the FP behaviour documented in Section 5.2.2. *)
          Alcotest.(check string) "beneficiary recovered" (Address.to_hex user)
            beneficiary
      | _ -> Alcotest.fail "expected exactly one sc_token_deposited fact")

let garbage_beneficiary_fails_with_marker =
  Alcotest.test_case
    "garbage bytes32 beneficiary: error + decode-failure fact, no event fact"
    `Quick (fun () ->
      let b, m = make_bridge Events.B_bytes32 in
      let user = new_user b "dec-u5" in
      mint b m user (u 100);
      let d =
        Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
          ~amount:(u 100) ~beneficiary:user
      in
      ignore (Bridge.complete_deposit b ~deposit:d);
      let w =
        Bridge.request_withdrawal ~beneficiary_padding:(`Garbage "g1") b ~user
          ~dst_token:m.Bridge.m_dst_token ~amount:(u 30) ~beneficiary:user
      in
      assert (w.Bridge.w_withdrawal_id <> None);
      let rds =
        decode_all ~role:Decoder.Target b Events.B_bytes32
          b.Bridge.target.Bridge.chain
      in
      Alcotest.(check int) "no tc_token_withdrew fact" 0
        (List.length (facts_of_kind Facts.r_tc_token_withdrew rds));
      Alcotest.(check int) "decode-failure marker present" 1
        (List.length (facts_of_kind Facts.r_bridge_event_decode_failure rds));
      let errors = List.concat_map (fun rd -> rd.Decoder.rd_errors) rds in
      match errors with
      | [ e ] ->
          Alcotest.(check (option int)) "withdrawal id attached"
            w.Bridge.w_withdrawal_id e.Decoder.err_withdrawal_id
      | _ -> Alcotest.fail "expected exactly one decode error")

let reverted_txs_yield_status_zero =
  Alcotest.test_case "reverted txs yield transaction facts with status 0"
    `Quick (fun () ->
      let b, m = make_bridge Events.B_address in
      let user = new_user b "dec-u6" in
      (* Deposit without owning tokens: reverts. *)
      let d =
        Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
          ~amount:(u 5) ~beneficiary:user
      in
      Alcotest.(check bool) "reverted" true
        (d.Bridge.d_receipt.Types.r_status = Types.Reverted);
      let rds = decode_all b Events.B_address b.Bridge.source.Bridge.chain in
      let reverted_facts =
        List.filter
          (fun f ->
            match f with Facts.Transaction { status = 0; _ } -> true | _ -> false)
          (List.concat_map (fun rd -> rd.Decoder.rd_facts) rds)
      in
      Alcotest.(check int) "one reverted transaction fact" 1
        (List.length reverted_facts))

let foreign_events_ignored =
  Alcotest.test_case "events from unwatched contracts build no bridge facts"
    `Quick (fun () ->
      let b, _ = make_bridge Events.B_address in
      let user = new_user b "dec-u7" in
      (* A contract that emits a bridge-shaped event but is NOT a
         bridge-controlled address. *)
      let imposter =
        Chain.deploy b.Bridge.source.Bridge.chain ~from_:user ~label:"imposter"
          (fun env ->
            env.Chain.emit (Events.sc_token_deposited Events.B_address)
              [
                Xcw_abi.Abi.Value.uint_of_int 99;
                Xcw_abi.Abi.Value.Address user;
                Xcw_abi.Abi.Value.Address user;
                Xcw_abi.Abi.Value.Address user;
                Xcw_abi.Abi.Value.uint_of_int 2;
                Xcw_abi.Abi.Value.uint_of_int 1;
              ])
      in
      ignore
        (Chain.submit_tx b.Bridge.source.Bridge.chain ~from_:user ~to_:imposter
           ~input:"x" ());
      let rds = decode_all b Events.B_address b.Bridge.source.Bridge.chain in
      Alcotest.(check int) "no sc_token_deposited" 0
        (List.length (facts_of_kind Facts.r_sc_token_deposited rds)))

let latency_split_native_vs_not =
  Alcotest.test_case "per-receipt latency reflects the tracer cost" `Quick
    (fun () ->
      let b, m = make_bridge Events.B_address in
      let user = new_user b "dec-u8" in
      mint b m user (u 100);
      ignore
        (Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
           ~amount:(u 100) ~beneficiary:user);
      ignore (Bridge.deposit_native b ~user ~amount:(u 10) ~beneficiary:user);
      let config = Config.of_bridge b in
      let client =
        Xcw_rpc.Client.create
          (Rpc.create ~profile:Xcw_rpc.Latency.nomad_profile ~seed:3
             b.Bridge.source.Bridge.chain)
      in
      let rds =
        Decoder.decode_chain Decoder.ronin_plugin config ~role:Decoder.Source
          client b.Bridge.source.Bridge.chain
      in
      let native =
        List.filter_map
          (fun rd -> if rd.Decoder.rd_is_native then Some rd.Decoder.rd_latency else None)
          rds
      in
      let non_native =
        List.filter_map
          (fun rd -> if rd.Decoder.rd_is_native then None else Some rd.Decoder.rd_latency)
          rds
      in
      Alcotest.(check bool) "one native receipt" true (List.length native = 1);
      Alcotest.(check bool) "native receipt slower than the median non-native"
        true
        (List.hd native > Xcw_util.Stats.median non_native))

let () =
  Alcotest.run "decoder"
    [
      ( "facts",
        [
          erc20_deposit_facts;
          native_deposit_is_traced;
          weth_event_on_target_is_native_withdrawal;
          reverted_txs_yield_status_zero;
          foreign_events_ignored;
        ] );
      ( "beneficiaries",
        [ right_padded_deposit_parses_leniently; garbage_beneficiary_fails_with_marker ] );
      ("latency", [ latency_split_native_vs_not ]);
    ]
