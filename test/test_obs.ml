(* Tests for Xcw_obs: the metrics registry, span tracing, sinks (the
   Prometheus and JSON-lines round-trips are correctness requirements
   for exporting), and the instrumentation wired through the RPC
   client, Datalog engine and monitor — which must observe without
   perturbing behaviour. *)

module U256 = Xcw_uint256.Uint256
module Stats = Xcw_util.Stats
module Json = Xcw_util.Json
module Chain = Xcw_chain.Chain
module Rpc = Xcw_rpc.Rpc
module Client = Xcw_rpc.Client
module Fault = Xcw_rpc.Fault
module Engine = Xcw_datalog.Engine
module Ast = Xcw_datalog.Ast
module Monitor = Xcw_core.Monitor
module Clock = Xcw_obs.Clock
module Metrics = Xcw_obs.Metrics
module Span = Xcw_obs.Span
module Sink = Xcw_obs.Sink
module T = Xcw_testlib

(* ------------------------------------------------------------------ *)
(* Registry semantics                                                  *)

let counter_basics =
  Alcotest.test_case "counter inc/add/value and interning" `Quick (fun () ->
      let reg = Metrics.create () in
      let c = Metrics.counter reg "xcw_test_total" in
      Metrics.Counter.inc c;
      Metrics.Counter.add c 4;
      Alcotest.(check int) "value" 5 (Metrics.Counter.value c);
      (* Interning: asking again returns the same instrument. *)
      let c' = Metrics.counter reg "xcw_test_total" in
      Metrics.Counter.inc c';
      Alcotest.(check int) "shared" 6 (Metrics.Counter.value c);
      Alcotest.check_raises "negative add"
        (Invalid_argument "Counter.add: negative increment")
        (fun () -> Metrics.Counter.add c (-1)))

let gauge_basics =
  Alcotest.test_case "gauge set/add/value" `Quick (fun () ->
      let reg = Metrics.create () in
      let g = Metrics.gauge reg "xcw_test_gauge" in
      Metrics.Gauge.set g 2.5;
      Metrics.Gauge.add g (-1.0);
      Alcotest.(check (float 1e-9)) "value" 1.5 (Metrics.Gauge.value g))

let labels_order_independent =
  Alcotest.test_case "label order does not change identity" `Quick (fun () ->
      let reg = Metrics.create () in
      let a =
        Metrics.counter reg ~labels:[ ("x", "1"); ("y", "2") ] "xcw_lbl_total"
      in
      let b =
        Metrics.counter reg ~labels:[ ("y", "2"); ("x", "1") ] "xcw_lbl_total"
      in
      Metrics.Counter.inc a;
      Metrics.Counter.inc b;
      Alcotest.(check int) "one instrument" 2 (Metrics.Counter.value a);
      (* Different label values are different instruments. *)
      let c =
        Metrics.counter reg ~labels:[ ("x", "1"); ("y", "3") ] "xcw_lbl_total"
      in
      Alcotest.(check int) "distinct" 0 (Metrics.Counter.value c))

let kind_mismatch_raises =
  Alcotest.test_case "re-registering under another kind raises" `Quick
    (fun () ->
      let reg = Metrics.create () in
      ignore (Metrics.counter reg "xcw_kind_total");
      try
        ignore (Metrics.gauge reg "xcw_kind_total");
        Alcotest.fail "expected Invalid_argument"
      with Invalid_argument _ -> ())

let invalid_name_raises =
  Alcotest.test_case "invalid metric names are rejected" `Quick (fun () ->
      let reg = Metrics.create () in
      List.iter
        (fun name ->
          try
            ignore (Metrics.counter reg name);
            Alcotest.fail ("accepted invalid name: " ^ name)
          with Invalid_argument _ -> ())
        [ ""; "9starts_with_digit"; "has space"; "has-dash" ])

let snapshot_sorted_and_find =
  Alcotest.test_case "snapshot sorted by (name, labels); find works" `Quick
    (fun () ->
      let reg = Metrics.create () in
      Metrics.Counter.inc (Metrics.counter reg "xcw_b_total");
      Metrics.Gauge.set (Metrics.gauge reg "xcw_a_gauge") 1.0;
      Metrics.Counter.inc
        (Metrics.counter reg ~labels:[ ("k", "v") ] "xcw_b_total");
      let snap = Metrics.snapshot reg in
      let names = List.map (fun m -> m.Metrics.m_name) snap in
      Alcotest.(check (list string))
        "sorted"
        [ "xcw_a_gauge"; "xcw_b_total"; "xcw_b_total" ]
        names;
      match Metrics.find snap ~labels:[ ("k", "v") ] "xcw_b_total" with
      | Some { Metrics.m_value = Metrics.V_counter 1; _ } -> ()
      | _ -> Alcotest.fail "find with labels")

let noop_is_inert =
  Alcotest.test_case "noop registry interns nothing and records nothing"
    `Quick (fun () ->
      let c = Metrics.counter Metrics.noop "xcw_dead_total" in
      Metrics.Counter.inc c;
      Metrics.Counter.add c 10;
      Alcotest.(check int) "counter dead" 0 (Metrics.Counter.value c);
      let h = Metrics.histogram Metrics.noop "xcw_dead_seconds" in
      Metrics.Histogram.observe h 1.0;
      Alcotest.(check int) "histogram dead" 0 (Metrics.Histogram.count h);
      Alcotest.(check int)
        "snapshot empty" 0
        (List.length (Metrics.snapshot Metrics.noop)))

(* ------------------------------------------------------------------ *)
(* Histogram bucketing                                                 *)

let histogram_matches_stats =
  QCheck.Test.make ~count:100
    ~name:"histogram buckets match Stats.log_histogram on positive samples"
    QCheck.(list_of_size Gen.(0 -- 60) (float_range 0.0001 900.0))
    (fun xs ->
      let conf =
        { Metrics.lo_exp = -3; hi_exp = 3; buckets_per_decade = 4 }
      in
      let reg = Metrics.create () in
      let h = Metrics.histogram reg ~conf "xcw_cmp_seconds" in
      List.iter (Metrics.Histogram.observe h) xs;
      Metrics.Histogram.buckets h
      = Stats.log_histogram xs ~lo_exp:(-3) ~hi_exp:3 ~buckets_per_decade:4)

let histogram_clamps_non_positive =
  Alcotest.test_case "non-positive samples land in the first bucket" `Quick
    (fun () ->
      let reg = Metrics.create () in
      let h = Metrics.histogram reg "xcw_clamp_seconds" in
      Metrics.Histogram.observe h 0.0;
      Metrics.Histogram.observe h (-5.0);
      Metrics.Histogram.observe h 1e-30;
      Alcotest.(check int) "count" 3 (Metrics.Histogram.count h);
      Alcotest.(check (float 1e-9)) "sum" (-5.0) (Metrics.Histogram.sum h);
      match Metrics.Histogram.buckets h with
      | (_, first) :: rest ->
          Alcotest.(check int) "first bucket" 3 first;
          Alcotest.(check int) "rest empty" 0
            (List.fold_left (fun acc (_, c) -> acc + c) 0 rest)
      | [] -> Alcotest.fail "no buckets")

let histogram_clamps_overflow =
  Alcotest.test_case "out-of-range samples clamp to the edge buckets" `Quick
    (fun () ->
      let conf = { Metrics.lo_exp = -1; hi_exp = 1; buckets_per_decade = 1 } in
      let reg = Metrics.create () in
      let h = Metrics.histogram reg ~conf "xcw_edge_seconds" in
      Metrics.Histogram.observe h 1e9;
      Metrics.Histogram.observe h 1e-9;
      let buckets = Metrics.Histogram.buckets h in
      Alcotest.(check int) "bucket count" 2 (List.length buckets);
      Alcotest.(check (list int))
        "edges" [ 1; 1 ]
        (List.map snd buckets))

(* ------------------------------------------------------------------ *)
(* Sinks: Prometheus and JSON-lines round-trips                        *)

(* A registry exercising every instrument kind, labels needing escape
   handling, and non-trivial float values. *)
let sample_registry () =
  let reg = Metrics.create () in
  Metrics.Counter.add (Metrics.counter reg "xcw_rt_total") 7;
  Metrics.Counter.add
    (Metrics.counter reg
       ~labels:[ ("method", "receipt"); ("weird", "a\"b\\c\nd") ]
       "xcw_rt_total")
    3;
  Metrics.Gauge.set (Metrics.gauge reg "xcw_rt_gauge") (-0.125);
  Metrics.Gauge.set
    (Metrics.gauge reg ~labels:[ ("side", "source") ] "xcw_rt_gauge")
    12345.6789;
  let h = Metrics.histogram reg "xcw_rt_seconds" in
  List.iter (Metrics.Histogram.observe h) [ 0.0005; 0.3; 0.31; 42.0; 1e9 ];
  reg

let prometheus_roundtrip =
  Alcotest.test_case "prometheus exposition parses back to the snapshot"
    `Quick (fun () ->
      let snap = Metrics.snapshot (sample_registry ()) in
      let text = Sink.prometheus_of_metrics snap in
      let back = Sink.metrics_of_prometheus text in
      Alcotest.(check int) "metric count" (List.length snap) (List.length back);
      List.iter2
        (fun a b ->
          Alcotest.(check string) "name" a.Metrics.m_name b.Metrics.m_name;
          Alcotest.(check (list (pair string string)))
            "labels" a.Metrics.m_labels b.Metrics.m_labels;
          match (a.Metrics.m_value, b.Metrics.m_value) with
          | Metrics.V_counter x, Metrics.V_counter y ->
              Alcotest.(check int) "counter" x y
          | Metrics.V_gauge x, Metrics.V_gauge y ->
              Alcotest.(check (float 1e-12)) "gauge" x y
          | Metrics.V_histogram x, Metrics.V_histogram y ->
              Alcotest.(check int) "h_count" x.Metrics.h_count
                y.Metrics.h_count;
              Alcotest.(check (float 1e-9)) "h_sum" x.Metrics.h_sum
                y.Metrics.h_sum;
              Alcotest.(check (list (pair (float 1e-9) int)))
                "buckets" x.Metrics.h_buckets y.Metrics.h_buckets
          | _ -> Alcotest.fail "kind changed through the round-trip")
        snap back)

let prometheus_text_shape =
  Alcotest.test_case "exposition has TYPE lines and cumulative buckets"
    `Quick (fun () ->
      let text = Sink.prometheus_of_metrics (Metrics.snapshot (sample_registry ())) in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "counter TYPE" true
        (contains text "# TYPE xcw_rt_total counter");
      Alcotest.(check bool) "histogram TYPE" true
        (contains text "# TYPE xcw_rt_seconds histogram");
      Alcotest.(check bool) "+Inf bucket" true
        (contains text "le=\"+Inf\"");
      Alcotest.(check bool) "escaped quote" true
        (contains text "a\\\"b"))

let json_lines_roundtrip =
  Alcotest.test_case "JSON-lines metrics parse back to the snapshot" `Quick
    (fun () ->
      let snap = Metrics.snapshot (sample_registry ()) in
      let lines = Sink.json_lines_of_metrics snap in
      let back =
        String.split_on_char '\n' lines
        |> List.filter (fun l -> String.trim l <> "")
        |> List.map (fun l -> Sink.metric_of_json (Json.of_string l))
      in
      Alcotest.(check bool) "equal" true (snap = back))

let span_json_roundtrip =
  Alcotest.test_case "span records survive the JSON round-trip" `Quick
    (fun () ->
      let clock = Clock.manual ~start:100.0 () in
      let tracer = Span.create ~clock () in
      Span.with_ ~tracer ~attrs:[ ("k", "v\n\"w") ] "outer" (fun () ->
          Clock.advance clock 1.5;
          Span.with_ ~tracer "inner" (fun () -> Clock.advance clock 0.25));
      let spans = Span.records tracer in
      let back =
        String.split_on_char '\n' (Sink.json_lines_of_spans spans)
        |> List.filter (fun l -> String.trim l <> "")
        |> List.map (fun l -> Sink.span_of_json (Json.of_string l))
      in
      Alcotest.(check bool) "equal" true (spans = back))

let memory_sink_stores =
  Alcotest.test_case "memory sink retains metrics and appends spans" `Quick
    (fun () ->
      let sink = Sink.memory () in
      let snap = Metrics.snapshot (sample_registry ()) in
      Sink.emit_metrics sink snap;
      Sink.emit_metrics sink snap;
      let tracer = Span.create ~clock:(Clock.manual ()) () in
      Span.with_ ~tracer "a" (fun () -> ());
      Sink.emit_spans sink (Span.records tracer);
      Sink.emit_spans sink (Span.records tracer);
      let store = Sink.store sink in
      Alcotest.(check int) "metrics replaced" (List.length snap)
        (List.length store.Sink.st_metrics);
      Alcotest.(check int) "spans appended" 2
        (List.length store.Sink.st_spans))

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

let span_nesting =
  Alcotest.test_case "nesting depths, durations and post-order" `Quick
    (fun () ->
      let clock = Clock.manual ~start:10.0 () in
      let tracer = Span.create ~clock () in
      let result =
        Span.with_ ~tracer "outer" (fun () ->
            Clock.advance clock 1.0;
            Span.with_ ~tracer "inner" (fun () ->
                Clock.advance clock 2.0;
                "done"))
      in
      Alcotest.(check string) "result" "done" result;
      match Span.records tracer with
      | [ inner; outer ] ->
          Alcotest.(check string) "inner first" "inner" inner.Span.sp_name;
          Alcotest.(check int) "inner depth" 1 inner.Span.sp_depth;
          Alcotest.(check (float 1e-9)) "inner start" 11.0 inner.Span.sp_start;
          Alcotest.(check (float 1e-9)) "inner duration" 2.0
            inner.Span.sp_duration;
          Alcotest.(check int) "outer depth" 0 outer.Span.sp_depth;
          Alcotest.(check (float 1e-9)) "outer duration" 3.0
            outer.Span.sp_duration
      | rs -> Alcotest.fail (Printf.sprintf "%d records" (List.length rs)))

let span_exception_safe =
  Alcotest.test_case "a span is recorded when the thunk raises" `Quick
    (fun () ->
      let clock = Clock.manual () in
      let tracer = Span.create ~clock () in
      (try
         Span.with_ ~tracer "boom" (fun () ->
             Clock.advance clock 0.5;
             failwith "expected")
       with Failure _ -> ());
      (* Depth must be restored: the next root span is depth 0. *)
      Span.with_ ~tracer "after" (fun () -> ());
      match Span.records tracer with
      | [ boom; after ] ->
          Alcotest.(check string) "recorded" "boom" boom.Span.sp_name;
          Alcotest.(check (float 1e-9)) "duration" 0.5 boom.Span.sp_duration;
          Alcotest.(check int) "depth restored" 0 after.Span.sp_depth
      | rs -> Alcotest.fail (Printf.sprintf "%d records" (List.length rs)))

let span_ring_bound =
  Alcotest.test_case "ring keeps the newest records and counts drops" `Quick
    (fun () ->
      let tracer = Span.create ~capacity:3 ~clock:(Clock.manual ()) () in
      for i = 1 to 5 do
        Span.with_ ~tracer (Printf.sprintf "s%d" i) (fun () -> ())
      done;
      Alcotest.(check (list string))
        "newest three" [ "s3"; "s4"; "s5" ]
        (List.map (fun r -> r.Span.sp_name) (Span.records tracer));
      Alcotest.(check int) "dropped" 2 (Span.dropped tracer);
      Span.clear tracer;
      Alcotest.(check int) "cleared" 0 (List.length (Span.records tracer)))

let span_noop_inert =
  Alcotest.test_case "noop tracer runs the thunk and records nothing" `Quick
    (fun () ->
      let r = Span.with_ ~tracer:Span.noop "x" (fun () -> 41 + 1) in
      Alcotest.(check int) "result" 42 r;
      Alcotest.(check int) "no records" 0
        (List.length (Span.records Span.noop)))

(* ------------------------------------------------------------------ *)
(* Pipeline instrumentation                                            *)

let engine_metrics =
  Alcotest.test_case "Engine.run records rule and stratum instruments"
    `Quick (fun () ->
      let db = Engine.create_db () in
      for i = 0 to 49 do
        Engine.add_fact db "edge" [ Ast.Int i; Ast.Int (i + 1) ]
      done;
      let program =
        Ast.
          {
            rules =
              [
                atom "path" [ v "x"; v "y" ]
                <-- [ pos (atom "edge" [ v "x"; v "y" ]) ];
                atom "path" [ v "x"; v "z" ]
                <-- [
                      pos (atom "edge" [ v "x"; v "y" ]);
                      pos (atom "path" [ v "y"; v "z" ]);
                    ];
              ];
          }
      in
      let reg = Metrics.create () in
      let stats = Engine.run ~metrics:reg db program in
      let snap = Metrics.snapshot reg in
      (match Metrics.find snap "xcw_datalog_tuples_derived_total" with
      | Some { Metrics.m_value = Metrics.V_counter n; _ } ->
          Alcotest.(check int) "tuples counter" stats.Engine.tuples_derived n
      | _ -> Alcotest.fail "missing tuples counter");
      (match
         Metrics.find snap
           ~labels:[ ("rule", "01:path") ]
           "xcw_datalog_rule_seconds"
       with
      | Some { Metrics.m_value = Metrics.V_histogram h; _ } ->
          Alcotest.(check bool) "recursive rule evaluated" true
            (h.Metrics.h_count > 0)
      | _ -> Alcotest.fail "missing rule histogram");
      match
        List.find_opt
          (fun m -> m.Metrics.m_name = "xcw_datalog_stratum_seconds")
          snap
      with
      | Some _ -> ()
      | None -> Alcotest.fail "missing stratum histogram")

let engine_noop_metrics_free =
  Alcotest.test_case "Engine.run with the noop registry registers nothing"
    `Quick (fun () ->
      let db = Engine.create_db () in
      Engine.add_fact db "edge" [ Ast.Int 1; Ast.Int 2 ];
      let program =
        Ast.
          {
            rules =
              [
                atom "path" [ v "x"; v "y" ]
                <-- [ pos (atom "edge" [ v "x"; v "y" ]) ];
              ];
          }
      in
      ignore (Engine.run ~metrics:Metrics.noop db program);
      Alcotest.(check int) "nothing interned" 0
        (List.length (Metrics.snapshot Metrics.noop)))

let monitor_metrics =
  Alcotest.test_case "monitor polls record counters, gauges and spans"
    `Quick (fun () ->
      let b, m = T.make_bridge () in
      let user = T.user_with_tokens b m "obs-user" (U256.of_int 1_000_000) in
      T.seed_completed_deposit b m user;
      T.apply_op b m user 0 0;
      let reg = Metrics.create () in
      let tracer = Span.create ~capacity:64 () in
      let saved_reg = Metrics.default () and saved_tr = Span.default () in
      Metrics.set_default reg;
      Span.set_default tracer;
      Fun.protect
        ~finally:(fun () ->
          Metrics.set_default saved_reg;
          Span.set_default saved_tr)
        (fun () ->
          let mon = Monitor.create ~metrics:reg (T.monitor_input b) in
          let sb, tb = T.cur b in
          ignore (Monitor.poll mon ~source_block:sb ~target_block:tb);
          ignore (Monitor.poll mon ~source_block:sb ~target_block:tb);
          let snap = Monitor.metrics_snapshot mon in
          let counter name =
            match Metrics.find snap name with
            | Some { Metrics.m_value = Metrics.V_counter n; _ } -> n
            | _ -> Alcotest.fail ("missing counter " ^ name)
          in
          let gauge ?labels name =
            match Metrics.find snap ?labels name with
            | Some { Metrics.m_value = Metrics.V_gauge g; _ } -> g
            | _ -> Alcotest.fail ("missing gauge " ^ name)
          in
          Alcotest.(check int) "polls" 2 (counter "xcw_monitor_polls_total");
          Alcotest.(check (float 1e-9))
            "synced" 1.0 (gauge "xcw_monitor_synced");
          Alcotest.(check (float 1e-9))
            "no pending" 0.0
            (gauge ~labels:[ ("side", "source") ] "xcw_monitor_pending");
          Alcotest.(check bool) "facts cached" true
            (gauge "xcw_monitor_facts_cached" > 0.0);
          let rpc_requests =
            List.fold_left
              (fun acc mt ->
                match (mt.Metrics.m_name, mt.Metrics.m_value) with
                | "xcw_rpc_requests_total", Metrics.V_counter n -> acc + n
                | _ -> acc)
              0 snap
          in
          Alcotest.(check bool) "rpc requests > 0" true (rpc_requests > 0);
          Alcotest.(check bool) "decoder receipts > 0" true
            (counter "xcw_decoder_receipts_total" > 0);
          let poll_spans =
            List.filter
              (fun r -> r.Span.sp_name = "monitor.poll")
              (Span.records tracer)
          in
          Alcotest.(check int) "poll spans" 2 (List.length poll_spans)))

let monitor_metrics_behaviour_neutral =
  Alcotest.test_case "alerts identical with live and noop registries" `Quick
    (fun () ->
      let run metrics =
        let b, m = T.make_bridge () in
        let user =
          T.user_with_tokens b m "obs-neutral" (U256.of_int 1_000_000)
        in
        T.seed_completed_deposit b m user;
        List.iteri (fun i op -> T.apply_op b m user i op) [ 0; 1; 2; 3 ];
        let mon = Monitor.create ~metrics (T.monitor_input b) in
        let sb, tb = T.cur b in
        let alerts = Monitor.poll mon ~source_block:sb ~target_block:tb in
        T.alert_keys alerts
      in
      let live = run (Metrics.create ()) in
      let nil = run Metrics.noop in
      Alcotest.(check bool) "same alerts" true (live = nil);
      Alcotest.(check bool) "alerts non-empty" true (live <> []))

let client_stats_snapshot =
  Alcotest.test_case "cumulative client stats accumulate and reset" `Quick
    (fun () ->
      let b, m = T.make_bridge () in
      let user = T.user_with_tokens b m "obs-stats" (U256.of_int 1_000_000) in
      T.seed_completed_deposit b m user;
      Client.reset_stats ();
      let zero = Client.stats_snapshot () in
      Alcotest.(check int) "retries zero" 0 zero.Client.s_retries;
      Alcotest.(check int) "give-ups zero" 0 zero.Client.s_give_ups;
      (* A receipt-heavy transient plan: retries are certain over a
         whole chain of receipts. *)
      let plan =
        {
          Fault.none with
          Fault.f_receipt = { Fault.p_transient = 0.6; p_timeout = 0.0 };
        }
      in
      let chain = b.Xcw_bridge.Bridge.source.Xcw_bridge.Bridge.chain in
      let client =
        Client.create ~seed:7 ~metrics:Metrics.noop
          (Rpc.create ~seed:7 ~fault:plan ~metrics:Metrics.noop chain)
      in
      List.iter
        (fun (r : Xcw_evm.Types.receipt) ->
          ignore (Client.get_receipt client r.Xcw_evm.Types.r_tx_hash))
        (Chain.all_receipts chain);
      let snap = Client.stats_snapshot () in
      Alcotest.(check bool) "retries happened" true (snap.Client.s_retries > 0);
      Alcotest.(check bool) "backoff accumulated" true
        (snap.Client.s_backoff_seconds > 0.0);
      (* The cumulative snapshot matches the per-client stats when only
         one client ran since the reset. *)
      let per = Client.stats client in
      Alcotest.(check int) "matches per-client" per.Client.s_retries
        snap.Client.s_retries;
      Client.reset_stats ();
      Alcotest.(check int) "reset" 0 (Client.stats_snapshot ()).Client.s_retries)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          counter_basics;
          gauge_basics;
          labels_order_independent;
          kind_mismatch_raises;
          invalid_name_raises;
          snapshot_sorted_and_find;
          noop_is_inert;
        ] );
      ( "histogram",
        [
          histogram_clamps_non_positive;
          histogram_clamps_overflow;
          QCheck_alcotest.to_alcotest histogram_matches_stats;
        ] );
      ( "sinks",
        [
          prometheus_roundtrip;
          prometheus_text_shape;
          json_lines_roundtrip;
          span_json_roundtrip;
          memory_sink_stores;
        ] );
      ( "spans",
        [ span_nesting; span_exception_safe; span_ring_bound; span_noop_inert ]
      );
      ( "pipeline",
        [
          engine_metrics;
          engine_noop_metrics_free;
          monitor_metrics;
          monitor_metrics_behaviour_neutral;
          client_stats_snapshot;
        ] );
    ]
