(* Chain simulator tests: native transfers, ERC-20 semantics, WETH
   wrap/unwrap, revert rollback, receipts/logs/traces, and conservation
   properties. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain
module Erc20 = Xcw_chain.Erc20
module Weth = Xcw_chain.Weth

let u = U256.of_int

let fresh_chain () =
  Chain.create ~chain_id:1 ~name:"testnet" ~finality_seconds:64
    ~genesis_time:1_640_995_200

let alice = Address.of_seed "alice"
let bob = Address.of_seed "bob"
let deployer = Address.of_seed "deployer"

let uint256 = Alcotest.testable U256.pp U256.equal

(* ------------------------------------------------------------------ *)
(* Native transfers                                                    *)

let native_transfer =
  Alcotest.test_case "native value transfer moves balances" `Quick (fun () ->
      let c = fresh_chain () in
      Chain.fund c alice (u 1000);
      let r = Chain.submit_tx c ~from_:alice ~to_:bob ~value:(u 400) () in
      Alcotest.(check bool) "success" true (r.Types.r_status = Types.Success);
      Alcotest.(check uint256) "alice" (u 600) (Chain.native_balance c alice);
      Alcotest.(check uint256) "bob" (u 400) (Chain.native_balance c bob))

let native_insufficient =
  Alcotest.test_case "insufficient balance reverts and rolls back" `Quick
    (fun () ->
      let c = fresh_chain () in
      Chain.fund c alice (u 100);
      let r = Chain.submit_tx c ~from_:alice ~to_:bob ~value:(u 400) () in
      Alcotest.(check bool) "reverted" true (r.Types.r_status = Types.Reverted);
      Alcotest.(check uint256) "alice keeps funds" (u 100) (Chain.native_balance c alice);
      Alcotest.(check uint256) "bob got nothing" U256.zero (Chain.native_balance c bob))

let clock_monotonic =
  Alcotest.test_case "clock is monotonic" `Quick (fun () ->
      let c = fresh_chain () in
      Chain.advance_time c 100;
      Alcotest.(check int) "advanced" 1_640_995_300 (Chain.now c);
      Alcotest.check_raises "no going back"
        (Invalid_argument
           "Chain.set_time: clock must be monotonic (1640995200 < 1640995300)")
        (fun () -> Chain.set_time c 1_640_995_200))

let blocks_and_receipts =
  Alcotest.test_case "each tx mines a block with its timestamp" `Quick
    (fun () ->
      let c = fresh_chain () in
      Chain.fund c alice (u 10);
      Chain.advance_time c 60;
      let r1 = Chain.submit_tx c ~from_:alice ~to_:bob ~value:(u 1) () in
      Chain.advance_time c 60;
      let r2 = Chain.submit_tx c ~from_:alice ~to_:bob ~value:(u 1) () in
      Alcotest.(check int) "block 1" 1 r1.Types.r_block_number;
      Alcotest.(check int) "block 2" 2 r2.Types.r_block_number;
      Alcotest.(check int) "ts 1" 1_640_995_260 r1.Types.r_block_timestamp;
      Alcotest.(check int) "ts 2" 1_640_995_320 r2.Types.r_block_timestamp;
      Alcotest.(check int) "2 receipts + 0 deploys" 2 (Chain.transaction_count c))

(* ------------------------------------------------------------------ *)
(* ERC-20                                                              *)

let deploy_token c =
  Erc20.deploy c ~from_:deployer ~name:"Test Token" ~symbol:"TT" ~decimals:18
    ~owner:deployer

let erc20_mint_and_transfer =
  Alcotest.test_case "mint then transfer updates balances and supply" `Quick
    (fun () ->
      let c = fresh_chain () in
      let token = deploy_token c in
      let r =
        Chain.submit_tx c ~from_:deployer ~to_:token
          ~input:(Erc20.mint_calldata ~to_:alice ~amount:(u 500))
          ()
      in
      Alcotest.(check bool) "mint ok" true (r.Types.r_status = Types.Success);
      let r2 =
        Chain.submit_tx c ~from_:alice ~to_:token
          ~input:(Erc20.transfer_calldata ~to_:bob ~amount:(u 200))
          ()
      in
      Alcotest.(check bool) "transfer ok" true (r2.Types.r_status = Types.Success);
      Alcotest.(check uint256) "alice" (u 300) (Erc20.balance_of c token alice);
      Alcotest.(check uint256) "bob" (u 200) (Erc20.balance_of c token bob);
      Alcotest.(check uint256) "supply" (u 500) (Erc20.total_supply c token))

let erc20_transfer_event_shape =
  Alcotest.test_case "transfer emits a decodable Transfer event" `Quick
    (fun () ->
      let c = fresh_chain () in
      let token = deploy_token c in
      ignore
        (Chain.submit_tx c ~from_:deployer ~to_:token
           ~input:(Erc20.mint_calldata ~to_:alice ~amount:(u 500))
           ());
      let r =
        Chain.submit_tx c ~from_:alice ~to_:token
          ~input:(Erc20.transfer_calldata ~to_:bob ~amount:(u 123))
          ()
      in
      match r.Types.r_logs with
      | [ log ] ->
          Alcotest.(check bool) "from token" true (Address.equal log.Types.log_address token);
          let decoded =
            Xcw_abi.Abi.Event.decode_log Erc20.transfer_event log.Types.topics
              log.Types.data
          in
          (match decoded with
          | [ ("from", Xcw_abi.Abi.Value.Address f);
              ("to", Xcw_abi.Abi.Value.Address t);
              ("value", Xcw_abi.Abi.Value.Uint v) ] ->
              Alcotest.(check bool) "from" true (Address.equal f alice);
              Alcotest.(check bool) "to" true (Address.equal t bob);
              Alcotest.(check uint256) "value" (u 123) v
          | _ -> Alcotest.fail "bad decode shape")
      | logs -> Alcotest.fail (Printf.sprintf "expected 1 log, got %d" (List.length logs)))

let erc20_insufficient_reverts =
  Alcotest.test_case "transfer beyond balance reverts, state intact" `Quick
    (fun () ->
      let c = fresh_chain () in
      let token = deploy_token c in
      ignore
        (Chain.submit_tx c ~from_:deployer ~to_:token
           ~input:(Erc20.mint_calldata ~to_:alice ~amount:(u 10))
           ());
      let r =
        Chain.submit_tx c ~from_:alice ~to_:token
          ~input:(Erc20.transfer_calldata ~to_:bob ~amount:(u 999))
          ()
      in
      Alcotest.(check bool) "reverted" true (r.Types.r_status = Types.Reverted);
      Alcotest.(check (list Alcotest.reject)) "no logs" [] r.Types.r_logs;
      Alcotest.(check uint256) "alice unchanged" (u 10) (Erc20.balance_of c token alice))

let erc20_transfer_from_allowance =
  Alcotest.test_case "transferFrom enforces and decrements allowance" `Quick
    (fun () ->
      let c = fresh_chain () in
      let token = deploy_token c in
      ignore
        (Chain.submit_tx c ~from_:deployer ~to_:token
           ~input:(Erc20.mint_calldata ~to_:alice ~amount:(u 100))
           ());
      (* bob tries without allowance *)
      let r =
        Chain.submit_tx c ~from_:bob ~to_:token
          ~input:(Erc20.transfer_from_calldata ~from_:alice ~to_:bob ~amount:(u 50))
          ()
      in
      Alcotest.(check bool) "rejected" true (r.Types.r_status = Types.Reverted);
      ignore
        (Chain.submit_tx c ~from_:alice ~to_:token
           ~input:(Erc20.approve_calldata ~spender:bob ~amount:(u 60))
           ());
      let r2 =
        Chain.submit_tx c ~from_:bob ~to_:token
          ~input:(Erc20.transfer_from_calldata ~from_:alice ~to_:bob ~amount:(u 50))
          ()
      in
      Alcotest.(check bool) "accepted" true (r2.Types.r_status = Types.Success);
      Alcotest.(check uint256) "remaining allowance" (u 10)
        (Erc20.allowance c token ~owner:alice ~spender:bob))

let erc20_mint_owner_only =
  Alcotest.test_case "mint by a non-owner reverts" `Quick (fun () ->
      let c = fresh_chain () in
      let token = deploy_token c in
      let r =
        Chain.submit_tx c ~from_:alice ~to_:token
          ~input:(Erc20.mint_calldata ~to_:alice ~amount:(u 500))
          ()
      in
      Alcotest.(check bool) "reverted" true (r.Types.r_status = Types.Reverted);
      Alcotest.(check uint256) "no tokens" U256.zero (Erc20.balance_of c token alice))

(* ------------------------------------------------------------------ *)
(* WETH                                                                *)

let weth_wrap_unwrap =
  Alcotest.test_case "deposit wraps native 1:1; withdraw unwraps" `Quick
    (fun () ->
      let c = fresh_chain () in
      let weth = Weth.deploy c ~from_:deployer ~name:"Wrapped Ether" ~symbol:"WETH" in
      Chain.fund c alice (u 1000);
      let r =
        Chain.submit_tx c ~from_:alice ~to_:weth ~value:(u 700)
          ~input:Weth.deposit_calldata ()
      in
      Alcotest.(check bool) "wrap ok" true (r.Types.r_status = Types.Success);
      Alcotest.(check uint256) "WETH balance" (u 700) (Erc20.balance_of c weth alice);
      Alcotest.(check uint256) "native escrowed" (u 700) (Chain.native_balance c weth);
      let r2 =
        Chain.submit_tx c ~from_:alice ~to_:weth
          ~input:(Weth.withdraw_calldata ~amount:(u 300))
          ()
      in
      Alcotest.(check bool) "unwrap ok" true (r2.Types.r_status = Types.Success);
      Alcotest.(check uint256) "WETH burned" (u 400) (Erc20.balance_of c weth alice);
      Alcotest.(check uint256) "native returned" (u 600) (Chain.native_balance c alice))

let weth_deposit_event =
  Alcotest.test_case "deposit emits Deposit(dst, wad)" `Quick (fun () ->
      let c = fresh_chain () in
      let weth = Weth.deploy c ~from_:deployer ~name:"Wrapped Ether" ~symbol:"WETH" in
      Chain.fund c alice (u 10);
      let r =
        Chain.submit_tx c ~from_:alice ~to_:weth ~value:(u 10)
          ~input:Weth.deposit_calldata ()
      in
      match r.Types.r_logs with
      | [ log ] ->
          let t0 = List.hd log.Types.topics in
          Alcotest.(check string)
            "topic0" (Xcw_util.Hex.encode (Xcw_abi.Abi.Event.topic0 Weth.deposit_event))
            (Xcw_util.Hex.encode t0)
      | _ -> Alcotest.fail "expected exactly one log")

let weth_plain_value_wraps =
  Alcotest.test_case "plain value transfer to WETH wraps via receive()" `Quick
    (fun () ->
      let c = fresh_chain () in
      let weth = Weth.deploy c ~from_:deployer ~name:"Wrapped Ether" ~symbol:"WETH" in
      Chain.fund c alice (u 42);
      let r = Chain.submit_tx c ~from_:alice ~to_:weth ~value:(u 42) () in
      Alcotest.(check bool) "ok" true (r.Types.r_status = Types.Success);
      Alcotest.(check uint256) "wrapped" (u 42) (Erc20.balance_of c weth alice))

(* ------------------------------------------------------------------ *)
(* Traces                                                              *)

let trace_records_internal_calls =
  Alcotest.test_case "internal calls appear in the call trace" `Quick
    (fun () ->
      let c = fresh_chain () in
      let token = deploy_token c in
      ignore
        (Chain.submit_tx c ~from_:deployer ~to_:token
           ~input:(Erc20.mint_calldata ~to_:alice ~amount:(u 100))
           ());
      (* A forwarder contract that calls token.transfer internally;
         models the intermediary protocols of Section 3.2. *)
      let forwarder =
        Chain.deploy c ~from_:deployer ~label:"forwarder" (fun env ->
            env.Chain.call token env.Chain.input)
      in
      ignore
        (Chain.submit_tx c ~from_:alice ~to_:token
           ~input:(Erc20.approve_calldata ~spender:forwarder ~amount:(u 100))
           ());
      let r =
        Chain.submit_tx c ~from_:alice ~to_:forwarder
          ~input:(Erc20.transfer_from_calldata ~from_:alice ~to_:bob ~amount:(u 5))
          ()
      in
      Alcotest.(check bool) "ok" true (r.Types.r_status = Types.Success);
      match Chain.trace c r.Types.r_tx_hash with
      | Some frame ->
          let flat = Types.flatten_calls frame in
          Alcotest.(check int) "two frames" 2 (List.length flat);
          let inner = List.nth flat 1 in
          Alcotest.(check bool) "inner targets token" true
            (Address.equal inner.Types.call_to token);
          Alcotest.(check int) "depth" 1 inner.Types.call_depth
      | None -> Alcotest.fail "missing trace")

let trace_internal_value_transfer =
  Alcotest.test_case "internal value transfers visible only in trace" `Quick
    (fun () ->
      let c = fresh_chain () in
      (* A splitter that forwards half its value to bob natively. *)
      let splitter =
        Chain.deploy c ~from_:deployer ~label:"splitter" (fun env ->
            let half = U256.div env.Chain.value (u 2) in
            env.Chain.transfer_native bob half)
      in
      Chain.fund c alice (u 100);
      let r = Chain.submit_tx c ~from_:alice ~to_:splitter ~value:(u 100) () in
      Alcotest.(check bool) "ok" true (r.Types.r_status = Types.Success);
      Alcotest.(check uint256) "bob got half" (u 50) (Chain.native_balance c bob);
      (* The receipt has no logs; the transfer is in the native
         balance movement, as the paper notes for tx.value flows. *)
      Alcotest.(check int) "no logs" 0 (List.length r.Types.r_logs))

let nested_revert_rolls_back_everything =
  Alcotest.test_case "a revert deep in nested internal calls rolls back all"
    `Quick (fun () ->
      let c = fresh_chain () in
      let token = deploy_token c in
      ignore
        (Chain.submit_tx c ~from_:deployer ~to_:token
           ~input:(Erc20.mint_calldata ~to_:alice ~amount:(u 100))
           ());
      (* outer -> middle (transfers tokens) -> inner (always reverts):
         the middle transfer must be undone. *)
      let inner =
        Chain.deploy c ~from_:deployer ~label:"inner" (fun _ ->
            raise (Chain.Revert "inner says no"))
      in
      let middle =
        Chain.deploy c ~from_:deployer ~label:"middle" (fun env ->
            env.Chain.call token env.Chain.input;
            env.Chain.call inner "x")
      in
      ignore
        (Chain.submit_tx c ~from_:alice ~to_:token
           ~input:(Erc20.approve_calldata ~spender:middle ~amount:(u 100))
           ());
      let r =
        Chain.submit_tx c ~from_:alice ~to_:middle
          ~input:(Erc20.transfer_from_calldata ~from_:alice ~to_:bob ~amount:(u 60))
          ()
      in
      Alcotest.(check bool) "reverted" true (r.Types.r_status = Types.Reverted);
      Alcotest.(check uint256) "alice untouched" (u 100)
        (Erc20.balance_of c token alice);
      Alcotest.(check uint256) "bob empty" U256.zero (Erc20.balance_of c token bob))

let gas_fees_charged =
  Alcotest.test_case "gas fees are charged at gas_price > 0" `Quick (fun () ->
      let c = fresh_chain () in
      Chain.fund c alice (U256.of_tokens ~decimals:18 1);
      let before = Chain.native_balance c alice in
      let r = Chain.submit_tx c ~gas_price:(u 10) ~from_:alice ~to_:bob ~value:(u 5) () in
      let after = Chain.native_balance c alice in
      let spent = U256.sub before after in
      Alcotest.(check bool) "more than the value left the account" true
        (U256.gt spent (u 5));
      Alcotest.(check bool) "fee = gas_used * price + value" true
        (U256.equal spent
           (U256.add (u 5) (U256.mul (u 10) (u r.Types.r_gas_used)))))

let deploy_addresses_deterministic =
  Alcotest.test_case "contract addresses follow the nonce sequence" `Quick
    (fun () ->
      let c = fresh_chain () in
      let a1 = Chain.deploy c ~from_:deployer ~label:"c1" (fun _ -> ()) in
      let a2 = Chain.deploy c ~from_:deployer ~label:"c2" (fun _ -> ()) in
      Alcotest.(check bool) "distinct" false (Address.equal a1 a2);
      Alcotest.(check bool) "matches derivation rule" true
        (Address.equal a1 (Address.contract_address ~sender:deployer ~nonce:0))
      ;
      Alcotest.(check bool) "nonce 1" true
        (Address.equal a2 (Address.contract_address ~sender:deployer ~nonce:1)))

let zero_amount_transfer_allowed =
  Alcotest.test_case "zero-amount ERC-20 transfers succeed with an event"
    `Quick (fun () ->
      let c = fresh_chain () in
      let token = deploy_token c in
      let r =
        Chain.submit_tx c ~from_:alice ~to_:token
          ~input:(Erc20.transfer_calldata ~to_:bob ~amount:U256.zero)
          ()
      in
      Alcotest.(check bool) "ok" true (r.Types.r_status = Types.Success);
      Alcotest.(check int) "one Transfer log" 1 (List.length r.Types.r_logs))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let prop_native_conservation =
  QCheck.Test.make ~name:"random transfers conserve total native supply"
    ~count:60
    QCheck.(pair (int_bound 100000) (list_of_size Gen.(1 -- 30) (pair (int_bound 4) (int_bound 1000))))
    (fun (seed, ops) ->
      let c = fresh_chain () in
      let accounts = Array.init 5 (fun k -> Address.of_seed (Printf.sprintf "acct%d-%d" seed k)) in
      Array.iter (fun a -> Chain.fund c a (u 10_000)) accounts;
      let total () =
        Array.fold_left
          (fun acc a -> U256.add acc (Chain.native_balance c a))
          U256.zero accounts
      in
      let before = total () in
      List.iteri
        (fun k (who, amount) ->
          let from_ = accounts.(who mod 5) and to_ = accounts.((who + k + 1) mod 5) in
          ignore (Chain.submit_tx c ~from_ ~to_ ~value:(u amount) ()))
        ops;
      U256.equal before (total ()))

let prop_erc20_supply_invariant =
  QCheck.Test.make
    ~name:"sum of ERC-20 balances equals total supply under random ops"
    ~count:40
    QCheck.(pair (int_bound 100000) (list_of_size Gen.(1 -- 25) (triple (int_bound 3) (int_bound 3) (int_bound 500))))
    (fun (seed, ops) ->
      let c = fresh_chain () in
      let accounts = Array.init 4 (fun k -> Address.of_seed (Printf.sprintf "h%d-%d" seed k)) in
      let token = deploy_token c in
      ignore
        (Chain.submit_tx c ~from_:deployer ~to_:token
           ~input:(Erc20.mint_calldata ~to_:accounts.(0) ~amount:(u 100_000))
           ());
      List.iter
        (fun (a, b, amount) ->
          (* Random transfers; some revert on insufficient balance,
             which must not corrupt state. *)
          ignore
            (Chain.submit_tx c ~from_:accounts.(a) ~to_:token
               ~input:(Erc20.transfer_calldata ~to_:accounts.(b) ~amount:(u amount))
               ()))
        ops;
      let sum =
        Array.fold_left
          (fun acc a -> U256.add acc (Erc20.balance_of c token a))
          U256.zero accounts
      in
      U256.equal sum (Erc20.total_supply c token))

let prop_weth_backing_invariant =
  QCheck.Test.make
    ~name:"WETH supply always backed by the contract's native balance"
    ~count:40
    QCheck.(pair (int_bound 100000) (list_of_size Gen.(1 -- 20) (pair bool (int_bound 300))))
    (fun (seed, ops) ->
      let c = fresh_chain () in
      let weth = Weth.deploy c ~from_:deployer ~name:"Wrapped Ether" ~symbol:"WETH" in
      let user = Address.of_seed (Printf.sprintf "weth-user-%d" seed) in
      Chain.fund c user (u 100_000);
      List.iter
        (fun (is_deposit, amount) ->
          if is_deposit then
            ignore
              (Chain.submit_tx c ~from_:user ~to_:weth ~value:(u amount)
                 ~input:Weth.deposit_calldata ())
          else
            ignore
              (Chain.submit_tx c ~from_:user ~to_:weth
                 ~input:(Weth.withdraw_calldata ~amount:(u amount))
                 ()))
        ops;
      U256.equal (Erc20.total_supply c weth) (Chain.native_balance c weth))

let () =
  Alcotest.run "chain"
    [
      ( "native",
        [ native_transfer; native_insufficient; clock_monotonic; blocks_and_receipts ] );
      ( "erc20",
        [
          erc20_mint_and_transfer;
          erc20_transfer_event_shape;
          erc20_insufficient_reverts;
          erc20_transfer_from_allowance;
          erc20_mint_owner_only;
        ] );
      ("weth", [ weth_wrap_unwrap; weth_deposit_event; weth_plain_value_wraps ]);
      ("traces", [ trace_records_internal_calls; trace_internal_value_transfer ]);
      ( "execution",
        [
          nested_revert_rolls_back_everything;
          gas_fees_charged;
          deploy_addresses_deterministic;
          zero_amount_transfer_allowed;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_native_conservation;
            prop_erc20_supply_invariant;
            prop_weth_backing_invariant;
          ] );
    ]
