(* Fault-injection suite: the differential-testing safety net for the
   resilient RPC stack.

   The central property: for ANY transient fault plan (every failure
   mode eventually clears), a monitor polling through faulty RPC must
   emit exactly the same alerts and converge to exactly the same report
   as a fault-free monitor over the same chains — faults may delay
   detection, never change it, and never silently drop data.  The
   no-silent-gap invariant sharpens this at the fact level: once the
   faulty monitor reports synced, its decoded fact set equals the
   fault-free one (modulo trace-gap markers, which no rule consumes). *)

module U256 = Xcw_uint256.Uint256
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain
module Bridge = Xcw_bridge.Bridge
module Rpc = Xcw_rpc.Rpc
module Fault = Xcw_rpc.Fault
module Client = Xcw_rpc.Client
module Pool = Xcw_rpc.Pool
module Latency = Xcw_rpc.Latency
module Facts = Xcw_core.Facts
module Detector = Xcw_core.Detector
module Monitor = Xcw_core.Monitor
module T = Xcw_testlib

let u = U256.of_int

let faulty_input input plan seed =
  {
    input with
    Detector.i_source_fault = Some plan;
    i_target_fault = Some plan;
    i_rpc_seed = seed;
  }

(* Poll at fixed cursors until the monitor reports synced (or the
   bound trips), accumulating alerts emitted along the way. *)
let drain ?(max_polls = 300) mon ~sb ~tb =
  let acc = ref [] in
  let polls = ref 0 in
  let synced () = (Monitor.health mon).Monitor.h_synced in
  acc := Monitor.poll mon ~source_block:sb ~target_block:tb;
  while (not (synced ())) && !polls < max_polls do
    incr polls;
    acc := !acc @ Monitor.poll mon ~source_block:sb ~target_block:tb
  done;
  (!acc, synced ())

let non_gap_facts mon =
  List.filter
    (function Facts.Trace_gap _ -> false | _ -> true)
    (Monitor.cached_facts mon)

(* ------------------------------------------------------------------ *)
(* Differential property                                               *)

let prop_differential =
  QCheck.Test.make ~count:(T.qcount 200)
    ~name:"transient faults never change alerts or the final report"
    QCheck.(triple (T.arb_ops ~max_len:4) T.arb_fault_plan (int_bound 10_000))
    (fun (ops, plan, seed) ->
      QCheck.assume (Fault.is_transient plan);
      let b, m = T.make_bridge () in
      let input = T.monitor_input b in
      let clean = Monitor.create input in
      let faulty = Monitor.create (faulty_input input plan seed) in
      let user = T.user_with_tokens b m "flt-prop" (u 1_000_000) in
      T.seed_completed_deposit b m user;
      let clean_alerts = ref [] and faulty_alerts = ref [] in
      List.iteri
        (fun i op ->
          T.apply_op b m user i op;
          let sb, tb = T.cur b in
          clean_alerts :=
            !clean_alerts @ Monitor.poll clean ~source_block:sb ~target_block:tb;
          faulty_alerts :=
            !faulty_alerts
            @ Monitor.poll faulty ~source_block:sb ~target_block:tb)
        ops;
      (* Catch-up on recovery: keep polling the faulty monitor at the
         final cursors until it has fully fetched both chains. *)
      let sb, tb = T.cur b in
      let late, synced = drain faulty ~sb ~tb in
      faulty_alerts := !faulty_alerts @ late;
      if not synced then false
      else if T.alert_keys !clean_alerts <> T.alert_keys !faulty_alerts then
        false
      else
        let batch = Detector.run input in
        match (Monitor.last_report clean, Monitor.last_report faulty) with
        | Some rc, Some rf ->
            T.report_signature rc = T.report_signature rf
            && T.report_signature rf
               = T.report_signature batch.Detector.report
        | _ -> false)

(* ------------------------------------------------------------------ *)
(* No-silent-gap invariant                                             *)

let prop_no_silent_gap =
  QCheck.Test.make ~count:(T.qcount 1000)
    ~name:"synced under faults = zero pending + the exact fault-free facts"
    QCheck.(triple (T.arb_ops ~max_len:2) T.arb_fault_plan (int_bound 10_000))
    (fun (ops, plan, seed) ->
      QCheck.assume (Fault.is_transient plan);
      let b, m = T.make_bridge () in
      let input = T.monitor_input b in
      let user = T.user_with_tokens b m "flt-gap" (u 1_000_000) in
      T.seed_completed_deposit b m user;
      List.iteri (fun i op -> T.apply_op b m user i op) ops;
      let sb, tb = T.cur b in
      let clean = Monitor.create input in
      ignore (Monitor.poll clean ~source_block:sb ~target_block:tb);
      let faulty = Monitor.create (faulty_input input plan seed) in
      let _, synced = drain ~max_polls:150 faulty ~sb ~tb in
      let h = Monitor.health faulty in
      synced
      && h.Monitor.h_pending_source = 0
      && h.Monitor.h_pending_target = 0
      && non_gap_facts faulty = non_gap_facts clean)

(* ------------------------------------------------------------------ *)
(* Structured failure modes, one at a time                             *)

let trace_outage_degrades =
  Alcotest.test_case
    "permanent tracer outage: trace-less facts, same report" `Quick (fun () ->
      let plan =
        {
          Fault.none with
          Fault.f_trace = { Fault.p_transient = 0.0; p_timeout = 1.0 };
          f_timeout_cost = 0.5;
        }
      in
      let b, m = T.make_bridge () in
      ignore (Bridge.register_native_mapping b);
      let input = T.monitor_input b in
      let user = T.user_with_tokens b m "flt-trace" (u 1_000_000) in
      T.seed_completed_deposit b m user;
      T.apply_op b m user 0 0;
      T.apply_op b m user 1 2;
      (* Native value is the only path that needs the call tracer. *)
      let d =
        Bridge.deposit_native b ~user ~amount:(u 5_000) ~beneficiary:user
      in
      ignore (Bridge.complete_deposit b ~deposit:d);
      let sb, tb = T.cur b in
      let clean = Monitor.create input in
      ignore (Monitor.poll clean ~source_block:sb ~target_block:tb);
      let faulty = Monitor.create (faulty_input input plan 3) in
      let _, synced = drain faulty ~sb ~tb in
      Alcotest.(check bool) "synced despite the dead tracer" true synced;
      let h = Monitor.health faulty in
      Alcotest.(check bool) "trace gaps surfaced in health" true
        (h.Monitor.h_trace_gaps > 0);
      let gaps =
        List.filter
          (function Facts.Trace_gap _ -> true | _ -> false)
          (Monitor.cached_facts faulty)
      in
      Alcotest.(check int) "one gap marker per receipt losing its trace"
        h.Monitor.h_trace_gaps (List.length gaps);
      Alcotest.(check bool) "facts identical otherwise" true
        (non_gap_facts faulty = non_gap_facts clean);
      match (Monitor.last_report clean, Monitor.last_report faulty) with
      | Some rc, Some rf ->
          Alcotest.(check bool) "reports identical" true
            (T.report_signature rc = T.report_signature rf)
      | _ -> Alcotest.fail "missing report")

let reorg_rewinds_and_rebuilds =
  Alcotest.test_case "reorgs rewind the cursor; facts survive exactly once"
    `Quick (fun () ->
      let plan =
        { Fault.none with Fault.f_reorg_prob = 0.5; f_reorg_depth = 3 }
      in
      let b, m = T.make_bridge () in
      let input = T.monitor_input b in
      let user = T.user_with_tokens b m "flt-reorg" (u 1_000_000) in
      T.seed_completed_deposit b m user;
      let clean = Monitor.create input in
      let faulty = Monitor.create (faulty_input input plan 7) in
      List.iteri
        (fun i op ->
          T.apply_op b m user i op;
          let sb, tb = T.cur b in
          ignore (Monitor.poll clean ~source_block:sb ~target_block:tb);
          ignore (Monitor.poll faulty ~source_block:sb ~target_block:tb))
        [ 0; 1; 2; 3 ];
      let sb, tb = T.cur b in
      let _, synced = drain faulty ~sb ~tb in
      Alcotest.(check bool) "synced after reorgs" true synced;
      Alcotest.(check bool) "reorg signals were handled" true
        ((Monitor.health faulty).Monitor.h_reorgs > 0);
      (* Rewound-and-redecoded receipts must not duplicate facts. *)
      Alcotest.(check bool) "facts appear exactly once" true
        (non_gap_facts faulty = non_gap_facts clean);
      match (Monitor.last_report clean, Monitor.last_report faulty) with
      | Some rc, Some rf ->
          Alcotest.(check bool) "reports identical" true
            (T.report_signature rc = T.report_signature rf)
      | _ -> Alcotest.fail "missing report")

let permanent_failure_degrades =
  Alcotest.test_case "permanent receipt failure: degraded health, no raise"
    `Quick (fun () ->
      let plan =
        {
          Fault.none with
          Fault.f_receipt = { Fault.p_transient = 1.0; p_timeout = 0.0 };
        }
      in
      let b, m = T.make_bridge () in
      let input = T.monitor_input b in
      let user = T.user_with_tokens b m "flt-dead" (u 10_000) in
      T.apply_op b m user 0 1;
      let sb, tb = T.cur b in
      let faulty = Monitor.create (faulty_input input plan 5) in
      let alerts = Monitor.poll faulty ~source_block:sb ~target_block:tb in
      Alcotest.(check int) "no alerts from an unsynced poll" 0
        (List.length alerts);
      let h = Monitor.health faulty in
      Alcotest.(check bool) "not synced" false h.Monitor.h_synced;
      Alcotest.(check bool) "pending receipts surfaced" true
        (h.Monitor.h_pending_source > 0);
      Alcotest.(check bool) "give-ups counted" true (h.Monitor.h_give_ups > 0);
      Alcotest.(check bool) "last error recorded" true
        (h.Monitor.h_last_error <> None))

let rate_limit_burst_shape =
  Alcotest.test_case "a 429 burst rejects exactly its burst length" `Quick
    (fun () ->
      let plan =
        {
          Fault.none with
          Fault.f_rate_limit_prob = 1.0;
          f_rate_limit_burst = 3;
          f_retry_after = 2.5;
        }
      in
      let f = Fault.create ~seed:1 plan in
      for _ = 1 to 6 do
        match Fault.intercept f Fault.Balance with
        | Some (Fault.Rate_limited { retry_after }) ->
            Alcotest.(check (float 0.0)) "advisory delay" 2.5 retry_after
        | _ -> Alcotest.fail "expected Rate_limited"
      done;
      Alcotest.(check int) "every request counted as a fault" 6
        (Fault.faults_injected f))

let backoff_capped_by_budget =
  Alcotest.test_case "retries stop before the latency budget" `Quick (fun () ->
      let plan =
        {
          Fault.none with
          Fault.f_balance = { Fault.p_transient = 1.0; p_timeout = 0.0 };
        }
      in
      let budget = 2.0 in
      let policy =
        { Client.default_policy with Client.p_latency_budget = budget }
      in
      let rpc = Rpc.create ~fault:plan (fst (T.make_bridge ())).Bridge.source.Bridge.chain in
      let c = Client.create ~policy ~seed:9 rpc in
      (match (Client.get_balance c (Xcw_evm.Address.of_seed "x")).Rpc.value with
      | Error (Fault.Transient _) -> ()
      | _ -> Alcotest.fail "expected the last transient error");
      let s = Client.stats c in
      Alcotest.(check int) "one give-up" 1 s.Client.s_give_ups;
      Alcotest.(check bool) "backoff stayed under the budget" true
        (s.Client.s_backoff_seconds < budget);
      Alcotest.(check bool) "some retries happened" true (s.Client.s_retries > 0))

let fault_stream_deterministic =
  Alcotest.test_case "same seed, same request sequence, same faults" `Quick
    (fun () ->
      let trace seed =
        let f = Fault.create ~seed Fault.moderate in
        let classes =
          [
            Fault.Receipt; Transaction; Trace; Logs; Head; Balance; Trace;
            Receipt;
          ]
        in
        let outcomes =
          List.concat_map
            (fun _ ->
              List.map
                (fun c ->
                  match Fault.intercept f c with
                  | None -> "ok"
                  | Some e -> Fault.error_to_string e)
                classes)
            [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
        in
        let heads =
          List.map
            (fun h ->
              let o, r = Fault.observe_head f ~head:h in
              (o, r))
            [ 10; 20; 30; 40; 50 ]
        in
        (outcomes, heads)
      in
      Alcotest.(check bool) "identical streams" true (trace 42 = trace 42);
      Alcotest.(check bool) "seed matters" true (trace 42 <> trace 43))

let batch_detector_under_faults =
  Alcotest.test_case "batch detector under moderate faults = fault-free run"
    `Quick (fun () ->
      let b, m = T.make_bridge () in
      let input = T.monitor_input b in
      let user = T.user_with_tokens b m "flt-batch" (u 1_000_000) in
      T.seed_completed_deposit b m user;
      List.iteri (fun i op -> T.apply_op b m user i op) [ 0; 1; 2; 3; 0 ];
      let clean = Detector.run input in
      let faulty = Detector.run (faulty_input input Fault.moderate 11) in
      Alcotest.(check bool) "identical reports" true
        (T.report_signature clean.Detector.report
        = T.report_signature faulty.Detector.report);
      Alcotest.(check bool) "faults cost simulated time" true
        (faulty.Detector.report.Xcw_core.Report.simulated_rpc_seconds
        >= clean.Detector.report.Xcw_core.Report.simulated_rpc_seconds))

(* ------------------------------------------------------------------ *)
(* Byzantine endpoints and quorum reads                                *)

(* An n=3 / k=2 quorum input with exactly one lying endpoint (the same
   index on both sides); the other two endpoints are faultless. *)
let quorum_input input ~liar ~plan ~seed =
  let efs = List.init 3 (fun j -> if j = liar then Some plan else None) in
  {
    input with
    Detector.i_endpoints = 3;
    i_quorum = 2;
    i_rpc_seed = seed;
    i_source_endpoint_faults = efs;
    i_target_endpoint_faults = efs;
  }

(* The headline property: with f = 1 < k = 2 Byzantine endpoints —
   however aggressively they lie — alerts, facts and the final report
   are identical to a faultless single-endpoint run, and whenever the
   liar actually corrupted a response ({!Rpc.byzantine_injections} is
   the ground truth) it shows up in [ph_suspects]. *)
let prop_quorum_differential =
  QCheck.Test.make ~count:(T.qcount 100)
    ~name:"one Byzantine endpoint of three changes nothing and is identified"
    QCheck.(
      quad (T.arb_ops ~max_len:3) T.arb_byz_plan (int_bound 2)
        (int_bound 10_000))
    (fun (ops, plan, liar, seed) ->
      let b, m = T.make_bridge () in
      let input = T.monitor_input b in
      let clean = Monitor.create input in
      let quorum = Monitor.create (quorum_input input ~liar ~plan ~seed) in
      let user = T.user_with_tokens b m "byz-prop" (u 1_000_000) in
      T.seed_completed_deposit b m user;
      let clean_alerts = ref [] and q_alerts = ref [] in
      List.iteri
        (fun i op ->
          T.apply_op b m user i op;
          let sb, tb = T.cur b in
          clean_alerts :=
            !clean_alerts @ Monitor.poll clean ~source_block:sb ~target_block:tb;
          q_alerts :=
            !q_alerts @ Monitor.poll quorum ~source_block:sb ~target_block:tb)
        ops;
      let sb, tb = T.cur b in
      let late, synced = drain quorum ~sb ~tb in
      q_alerts := !q_alerts @ late;
      let liar_caught =
        match (Monitor.pools quorum, Monitor.pool_health quorum) with
        | Some (sp, tp), Some (sh, th) ->
            let caught pool (h : Pool.health) =
              Rpc.byzantine_injections (List.nth (Pool.endpoints pool) liar) = 0
              || List.mem liar h.Pool.ph_suspects
            in
            caught sp sh && caught tp th
        | _ -> false
      in
      synced && liar_caught
      && T.alert_keys !clean_alerts = T.alert_keys !q_alerts
      && non_gap_facts quorum = non_gap_facts clean
      &&
      match (Monitor.last_report clean, Monitor.last_report quorum) with
      | Some rc, Some rq -> T.report_signature rc = T.report_signature rq
      | _ -> false)

(* A small chain with receipts, logs and traces for driving the pool
   directly. *)
let chain_with_txs () =
  let b, m = T.make_bridge () in
  let user = T.user_with_tokens b m "byz-unit" (u 1_000_000) in
  T.seed_completed_deposit b m user;
  let c = b.Bridge.source.Bridge.chain in
  (* A transaction with a recorded call trace (deploys have none), so
     every Byzantine mode has content to corrupt. *)
  let traced =
    List.find
      (fun (r : Types.receipt) -> Chain.trace c r.Types.r_tx_hash <> None)
      (Chain.all_receipts c)
  in
  (c, traced.Types.r_tx_hash)

let pool_with_liars ?(n = 3) ?(k = 2) ~liars ~plan c =
  let eps =
    List.init n (fun j ->
        if j < liars then Rpc.create ~seed:(1_000 + (j * 7919)) ~fault:plan c
        else Rpc.create ~seed:(1_000 + (j * 7919)) c)
  in
  Pool.create ~policy:{ Pool.default_policy with Pool.q_quorum = k } eps

(* f >= k liars: their corruptions are drawn from independent PRNG
   streams, so no corrupted content group reaches the quorum either —
   the pool refuses with [Quorum_divergence] instead of serving any of
   the lies.  One unit per content-corrupting Byzantine mode. *)
let expect_divergence name plan do_call =
  Alcotest.test_case name `Quick (fun () ->
      let c, tx = chain_with_txs () in
      let pool = pool_with_liars ~liars:2 ~plan c in
      (match (do_call pool tx).Rpc.value with
      | Error (Rpc.Quorum_divergence { agreeing; needed; responders }) ->
          Alcotest.(check bool) "largest group below quorum" true
            (agreeing < needed);
          Alcotest.(check int) "all three responded" 3 responders
      | Ok _ -> Alcotest.fail "a Byzantine majority was served as truth"
      | Error e ->
          Alcotest.failf "unexpected error: %s" (Fault.error_to_string e));
      Alcotest.(check bool) "refusal surfaced in health" true
        ((Pool.health pool).Pool.ph_refusals > 0))

let byz_majority_receipt_forge =
  expect_divergence "two status forgers of three: pool refuses"
    { Fault.none with Fault.f_byz_receipt_forge = 1.0 }
    (fun pool tx -> Pool.eth_get_transaction_receipt pool tx)

let byz_majority_log_mutate =
  expect_divergence "two log mutators of three: pool refuses"
    { Fault.none with Fault.f_byz_log_mutate = 1.0 }
    (fun pool tx -> Pool.eth_get_transaction_receipt pool tx)

let byz_majority_log_drop =
  expect_divergence "two log droppers of three: pool refuses"
    { Fault.none with Fault.f_byz_log_drop = 1.0 }
    (fun pool _ -> Pool.eth_get_logs pool Rpc.default_filter)

let byz_majority_trace_truncate =
  expect_divergence "two trace truncators of three: pool refuses"
    { Fault.none with Fault.f_byz_trace_truncate = 1.0 }
    (fun pool tx -> Pool.debug_trace_transaction pool tx)

(* Heads use a numeric quorum, which cannot refuse — but equivocation
   is still visible.  With f < k the accepted head is exactly the
   honest one and the liar is flagged; with f >= k every observation
   still records at least one beyond-tolerance deviation, so the
   inconsistent endpoint set shows up in [ph_disagreements] and
   [ph_suspects] even when the liars outnumber the quorum. *)
let byz_head_equivocation_detected =
  Alcotest.test_case "head equivocators are flagged (f < k and f >= k)"
    `Quick (fun () ->
      let c, _ = chain_with_txs () in
      let plan = { Fault.none with Fault.f_byz_head_equivocate = 1.0 } in
      (* f = 1 < k: accepted head is the honest one, liar 0 flagged. *)
      let one = pool_with_liars ~liars:1 ~plan c in
      (match (Pool.observe_head one ~head:100).Rpc.value with
      | Ok hv -> Alcotest.(check int) "honest head accepted" 100 hv.Rpc.hv_head
      | Error e -> Alcotest.failf "unexpected: %s" (Fault.error_to_string e));
      Alcotest.(check (list int)) "the equivocator is the suspect" [ 0 ]
        (Pool.health one).Pool.ph_suspects;
      (* f = 2 >= k: the lie may bound the accepted head, but every
         observation exposes the inconsistency. *)
      let two = pool_with_liars ~liars:2 ~plan c in
      for _ = 1 to 4 do
        ignore (Pool.observe_head two ~head:100)
      done;
      let h = Pool.health two in
      Alcotest.(check bool) "disagreements recorded" true
        (h.Pool.ph_disagreements >= 4);
      Alcotest.(check bool) "suspect list non-empty" true
        (h.Pool.ph_suspects <> []))

(* Retries compose with quorum refusals: a pooled client retries a
   divergence (re-rolling the liars' draws) and surfaces it once the
   attempts are spent. *)
let client_retries_divergence =
  Alcotest.test_case "pooled client retries then surfaces a divergence"
    `Quick (fun () ->
      let c, tx = chain_with_txs () in
      let pool =
        pool_with_liars ~liars:2
          ~plan:{ Fault.none with Fault.f_byz_receipt_forge = 1.0 }
          c
      in
      let client = Client.create_pooled ~seed:5 pool in
      Alcotest.(check bool) "pooled provenance" true
        (Client.provenance client = Client.Quorum { k = 2; n = 3 });
      (match (Client.get_receipt client tx).Rpc.value with
      | Error (Rpc.Quorum_divergence _) -> ()
      | _ -> Alcotest.fail "expected a divergence after retries");
      let s = Client.stats client in
      Alcotest.(check bool) "divergences were retried" true
        (s.Client.s_retries > 0);
      Alcotest.(check int) "one give-up" 1 s.Client.s_give_ups)

(* Satellite: the backoff ceiling applies after jitter.  With base =
   cap = 8 s and 100% jitter every pre-clamp pause lands in [8, 16] —
   the clamped total over three retries is exactly 24 s, where the old
   clamp-before-jitter ordering produced up to 48. *)
let backoff_clamped_after_jitter =
  Alcotest.test_case "p_max_backoff caps the pause after jitter" `Quick
    (fun () ->
      let plan =
        {
          Fault.none with
          Fault.f_balance = { Fault.p_transient = 1.0; p_timeout = 0.0 };
        }
      in
      let policy =
        {
          Client.default_policy with
          Client.p_max_attempts = 4;
          p_base_backoff = 8.0;
          p_backoff_factor = 2.0;
          p_max_backoff = 8.0;
          p_jitter = 1.0;
          p_latency_budget = 1_000.0;
        }
      in
      let b, _ = T.make_bridge () in
      let rpc = Rpc.create ~fault:plan b.Bridge.source.Bridge.chain in
      let client = Client.create ~policy ~seed:17 rpc in
      (match (Client.get_balance client (Xcw_evm.Address.of_seed "cap")).Rpc.value
       with
      | Error (Fault.Transient _) -> ()
      | _ -> Alcotest.fail "expected the final transient error");
      let s = Client.stats client in
      Alcotest.(check int) "three retries" 3 s.Client.s_retries;
      Alcotest.(check (float 1e-6)) "every pause clamped to the 8 s ceiling"
        24.0 s.Client.s_backoff_seconds)

(* Satellite: every error variant prints a specific, distinct
   description — nothing falls through to a placeholder. *)
let error_strings_cover_every_variant =
  Alcotest.test_case "every error variant prints a distinct description"
    `Quick (fun () ->
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      let all =
        [
          Rpc.Transient "connection reset";
          Rpc.Timeout;
          Rpc.Rate_limited { retry_after = 1.5 };
          Rpc.Tracer_unavailable;
          Rpc.Truncated_range { served_to = 9 };
          Rpc.Quorum_divergence { agreeing = 1; needed = 2; responders = 3 };
          Rpc.Quorum_unavailable { responders = 1; needed = 2 };
        ]
      in
      let strings = List.map Fault.error_to_string all in
      List.iter
        (fun s ->
          Alcotest.(check bool) "non-empty" true (String.length s > 0);
          Alcotest.(check bool) "no placeholder" false
            (contains (String.lowercase_ascii s) "unknown"))
        strings;
      Alcotest.(check int) "descriptions pairwise distinct"
        (List.length all)
        (List.length (List.sort_uniq compare strings));
      (* The quorum errors carry their numbers. *)
      Alcotest.(check bool) "divergence shows the vote" true
        (contains
           (Fault.error_to_string
              (Rpc.Quorum_divergence { agreeing = 1; needed = 2; responders = 3 }))
           "1/2"))

let () =
  Alcotest.run "fault-injection"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_differential;
          QCheck_alcotest.to_alcotest prop_no_silent_gap;
          QCheck_alcotest.to_alcotest prop_quorum_differential;
        ] );
      ( "byzantine",
        [
          byz_majority_receipt_forge;
          byz_majority_log_mutate;
          byz_majority_log_drop;
          byz_majority_trace_truncate;
          byz_head_equivocation_detected;
          client_retries_divergence;
          backoff_clamped_after_jitter;
          error_strings_cover_every_variant;
        ] );
      ( "failure-modes",
        [
          trace_outage_degrades;
          reorg_rewinds_and_rebuilds;
          permanent_failure_degrades;
          rate_limit_burst_shape;
          backoff_capped_by_budget;
          fault_stream_deterministic;
          batch_detector_under_faults;
        ] );
    ]
