(* Tests for Uint256: ring axioms, comparisons, division, string and
   byte codecs.  Token amounts throughout the system use this type, so
   these invariants underpin the bridge conservation checks. *)

open Xcw_uint256

module U = Uint256

let u = U.of_int

let uint256_testable =
  Alcotest.testable U.pp U.equal

(* Generator for arbitrary 256-bit values built from four int64 limbs. *)
let gen_u256 =
  let open QCheck.Gen in
  map4 U.make ui64 ui64 ui64 ui64

let arb_u256 = QCheck.make ~print:U.to_decimal_string gen_u256

(* Small values where operations can be cross-checked against OCaml ints. *)
let arb_small =
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "(%d, %d)" a b)
    QCheck.Gen.(pair (int_bound 1_000_000) (int_bound 1_000_000))

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)

let basic_constants =
  Alcotest.test_case "zero and one" `Quick (fun () ->
      Alcotest.(check bool) "zero is zero" true (U.is_zero U.zero);
      Alcotest.(check bool) "one is not zero" false (U.is_zero U.one);
      Alcotest.(check uint256_testable) "0+1=1" U.one (U.add U.zero U.one))

let decimal_roundtrip_known =
  Alcotest.test_case "decimal string round-trip on known values" `Quick
    (fun () ->
      List.iter
        (fun s ->
          Alcotest.(check string)
            s s
            (U.to_decimal_string (U.of_decimal_string s)))
        [
          "0";
          "1";
          "10";
          "123456789";
          "18446744073709551615" (* 2^64-1 *);
          "18446744073709551616" (* 2^64 *);
          "340282366920938463463374607431768211455" (* 2^128-1 *);
          "115792089237316195423570985008687907853269984665640564039457584007913129639935"
          (* 2^256-1 *);
        ])

let max_value_wraps =
  Alcotest.test_case "max value + 1 wraps to zero" `Quick (fun () ->
      Alcotest.(check uint256_testable)
        "wrap" U.zero
        (U.add U.max_int_u256 U.one))

let add_exn_overflow =
  Alcotest.test_case "add_exn raises on overflow" `Quick (fun () ->
      Alcotest.check_raises "overflow" U.Overflow (fun () ->
          ignore (U.add_exn U.max_int_u256 U.one)))

let sub_exn_underflow =
  Alcotest.test_case "sub_exn raises on underflow" `Quick (fun () ->
      Alcotest.check_raises "underflow" U.Underflow (fun () ->
          ignore (U.sub_exn U.zero U.one)))

let mul_exn_overflow =
  Alcotest.test_case "mul_exn raises on overflow" `Quick (fun () ->
      let big = U.shift_left U.one 255 in
      Alcotest.check_raises "overflow" U.Overflow (fun () ->
          ignore (U.mul_exn big (u 2))))

let division_by_zero =
  Alcotest.test_case "divmod by zero raises" `Quick (fun () ->
      Alcotest.check_raises "div0" Division_by_zero (fun () ->
          ignore (U.divmod U.one U.zero)))

let wei_conversions =
  Alcotest.test_case "token/wei conversions" `Quick (fun () ->
      let five_eth = U.of_tokens ~decimals:18 5 in
      Alcotest.(check string)
        "5 ether in wei" "5000000000000000000"
        (U.to_decimal_string five_eth);
      Alcotest.(check (float 1e-9))
        "back to tokens" 5.0
        (U.to_tokens ~decimals:18 five_eth))

let hex_string_roundtrip_known =
  Alcotest.test_case "hex round-trip on known values" `Quick (fun () ->
      let v = U.of_string "0xdeadbeef" in
      Alcotest.(check string) "decimal" "3735928559" (U.to_decimal_string v);
      Alcotest.(check uint256_testable)
        "via hex" v
        (U.of_hex_string (U.to_hex_string v)))

let bit_length_cases =
  Alcotest.test_case "bit_length" `Quick (fun () ->
      Alcotest.(check int) "zero" 0 (U.bit_length U.zero);
      Alcotest.(check int) "one" 1 (U.bit_length U.one);
      Alcotest.(check int) "256" 256 (U.bit_length U.max_int_u256);
      Alcotest.(check int) "2^64" 65 (U.bit_length (U.shift_left U.one 64)))

let shift_cases =
  Alcotest.test_case "shifts across limb boundaries" `Quick (fun () ->
      let v = U.of_string "0x0123456789abcdef0123456789abcdef" in
      Alcotest.(check uint256_testable)
        "left then right" v
        (U.shift_right (U.shift_left v 100) 100);
      Alcotest.(check uint256_testable)
        "shift out" U.zero
        (U.shift_right v 200))

let to_int_bounds =
  Alcotest.test_case "to_int bounds" `Quick (fun () ->
      Alcotest.(check int) "small" 12345 (U.to_int (u 12345));
      Alcotest.(check (option int)) "too big" None
        (U.to_int_opt (U.shift_left U.one 128)))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let prop_add_comm =
  QCheck.Test.make ~name:"addition commutes" ~count:300
    (QCheck.pair arb_u256 arb_u256)
    (fun (a, b) -> U.equal (U.add a b) (U.add b a))

let prop_add_assoc =
  QCheck.Test.make ~name:"addition associates" ~count:300
    (QCheck.triple arb_u256 arb_u256 arb_u256)
    (fun (a, b, c) -> U.equal (U.add (U.add a b) c) (U.add a (U.add b c)))

let prop_add_sub_inverse =
  QCheck.Test.make ~name:"(a + b) - b = a" ~count:300
    (QCheck.pair arb_u256 arb_u256)
    (fun (a, b) -> U.equal (U.sub (U.add a b) b) a)

let prop_mul_comm =
  QCheck.Test.make ~name:"multiplication commutes" ~count:300
    (QCheck.pair arb_u256 arb_u256)
    (fun (a, b) -> U.equal (U.mul a b) (U.mul b a))

let prop_mul_assoc =
  QCheck.Test.make ~name:"multiplication associates" ~count:200
    (QCheck.triple arb_u256 arb_u256 arb_u256)
    (fun (a, b, c) -> U.equal (U.mul (U.mul a b) c) (U.mul a (U.mul b c)))

let prop_distributive =
  QCheck.Test.make ~name:"a*(b+c) = a*b + a*c (mod 2^256)" ~count:200
    (QCheck.triple arb_u256 arb_u256 arb_u256)
    (fun (a, b, c) ->
      U.equal (U.mul a (U.add b c)) (U.add (U.mul a b) (U.mul a c)))

let prop_mul_identity =
  QCheck.Test.make ~name:"a*1 = a and a*0 = 0" ~count:300 arb_u256 (fun a ->
      U.equal (U.mul a U.one) a && U.is_zero (U.mul a U.zero))

let prop_divmod =
  QCheck.Test.make ~name:"a = b*q + r with r < b" ~count:300
    (QCheck.pair arb_u256 arb_u256)
    (fun (a, b) ->
      QCheck.assume (not (U.is_zero b));
      let q, r = U.divmod a b in
      U.lt r b && U.equal a (U.add (U.mul b q) r))

let prop_small_matches_int =
  QCheck.Test.make ~name:"small-value ops match OCaml int arithmetic"
    ~count:300 arb_small (fun (a, b) ->
      U.to_int (U.add (u a) (u b)) = a + b
      && U.to_int (U.mul (u a) (u b)) = a * b
      && (b = 0 || U.to_int (U.div (u a) (u b)) = a / b)
      && (b = 0 || U.to_int (U.rem (u a) (u b)) = a mod b))

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare is antisymmetric and matches equal"
    ~count:300
    (QCheck.pair arb_u256 arb_u256)
    (fun (a, b) ->
      let c1 = U.compare a b and c2 = U.compare b a in
      (c1 = -c2) && (c1 = 0) = U.equal a b)

let prop_decimal_roundtrip =
  QCheck.Test.make ~name:"decimal round-trip" ~count:200 arb_u256 (fun a ->
      U.equal a (U.of_decimal_string (U.to_decimal_string a)))

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes_be round-trip" ~count:200 arb_u256 (fun a ->
      let b = U.to_bytes_be a in
      String.length b = 32 && U.equal a (U.of_bytes_be b))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex round-trip" ~count:200 arb_u256 (fun a ->
      U.equal a (U.of_hex_string (U.to_hex_string a)))

let prop_shift_mul_pow2 =
  QCheck.Test.make ~name:"shift_left k = multiply by 2^k" ~count:200
    (QCheck.pair arb_u256 (QCheck.int_bound 255))
    (fun (a, k) ->
      let pow2 = U.shift_left U.one k in
      U.equal (U.shift_left a k) (U.mul a pow2))

let prop_to_float_monotone =
  QCheck.Test.make ~name:"to_float is monotone on ordered pairs" ~count:200
    (QCheck.pair arb_u256 arb_u256)
    (fun (a, b) ->
      let a, b = if U.le a b then (a, b) else (b, a) in
      U.to_float a <= U.to_float b)

let () =
  Alcotest.run "uint256"
    [
      ( "unit",
        [
          basic_constants;
          decimal_roundtrip_known;
          max_value_wraps;
          add_exn_overflow;
          sub_exn_underflow;
          mul_exn_overflow;
          division_by_zero;
          wei_conversions;
          hex_string_roundtrip_known;
          bit_length_cases;
          shift_cases;
          to_int_bounds;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_add_comm;
            prop_add_assoc;
            prop_add_sub_inverse;
            prop_mul_comm;
            prop_mul_assoc;
            prop_distributive;
            prop_mul_identity;
            prop_divmod;
            prop_small_matches_int;
            prop_compare_total_order;
            prop_decimal_roundtrip;
            prop_bytes_roundtrip;
            prop_hex_roundtrip;
            prop_shift_mul_pow2;
            prop_to_float_monotone;
          ] );
    ]
