(* Tests for the Souffle-flavoured rule parser, including the
   round-trip property: every compiled-in cross-chain rule pretty-prints
   to text that parses back to an equivalent rule. *)

open Xcw_datalog
open Ast

let parse = Parser.parse_rule

let rule_testable =
  Alcotest.testable pp_rule ( = )

let simple_rule =
  Alcotest.test_case "parse a simple join rule" `Quick (fun () ->
      let r = parse "grandparent(x, z) :- parent(x, y), parent(y, z)." in
      Alcotest.check rule_testable "rule"
        (atom "grandparent" [ v "x"; v "z" ]
        <-- [ pos (atom "parent" [ v "x"; v "y" ]); pos (atom "parent" [ v "y"; v "z" ]) ])
        r)

let fact_rule =
  Alcotest.test_case "parse a body-less fact" `Quick (fun () ->
      let r = parse {|edge("a", 42).|} in
      Alcotest.check rule_testable "fact"
        (atom "edge" [ s "a"; i 42 ] <-- [])
        r)

let negation_rule =
  Alcotest.test_case "parse negation" `Quick (fun () ->
      let r = parse "orphan(x) :- node(x), !parent(_, x)." in
      match r.body with
      | [ Pos _; Neg { pred = "parent"; args = [ Var w; Var "x" ] } ] ->
          Alcotest.(check bool) "wildcard got a fresh name" true
            (String.length w > 1 && w.[0] = '_')
      | _ -> Alcotest.fail "unexpected shape")

let comparison_rule =
  Alcotest.test_case "parse arithmetic comparison" `Quick (fun () ->
      let r = parse "ok(x) :- evt(x, t1, t2), t1 + 1800 <= t2." in
      match r.body with
      | [ Pos _; Cmp (Le, E_add (E_var "t1", E_const (Int 1800)), E_var "t2") ] -> ()
      | _ -> Alcotest.fail "unexpected comparison shape")

let string_comparison =
  Alcotest.test_case "parse string (in)equality" `Quick (fun () ->
      let r = parse {|diff(x) :- p(x, y), x != y, y != "0x0".|} in
      match r.body with
      | [ Pos _; Cmp (Ne, E_var "x", E_var "y");
          Cmp (Ne, E_var "y", E_const (Str "0x0")) ] -> ()
      | _ -> Alcotest.fail "unexpected shape")

let negative_int =
  Alcotest.test_case "parse negative integers" `Quick (fun () ->
      let r = parse "cold(x) :- temp(x, t), t < -10." in
      match r.body with
      | [ Pos _; Cmp (Lt, E_var "t", E_const (Int -10)) ] -> ()
      | _ -> Alcotest.fail "unexpected shape")

let comments_ignored =
  Alcotest.test_case "comments and whitespace are ignored" `Quick (fun () ->
      let src =
        "// line comment\n\
         # hash comment\n\
         p(x) :- /* block\n\
         comment */ q(x).  // trailing"
      in
      Alcotest.check rule_testable "rule"
        (atom "p" [ v "x" ] <-- [ pos (atom "q" [ v "x" ]) ])
        (parse src))

let directives_skipped =
  Alcotest.test_case ".decl/.input/.output directives are skipped" `Quick
    (fun () ->
      let rules =
        Parser.parse_program
          ".decl edge(x: symbol, y: number)\n\
           .input edge\n\
           .output path\n\
           path(x, y) :- edge(x, y)."
      in
      Alcotest.(check int) "one rule" 1 (List.length rules))

let multi_rule_program =
  Alcotest.test_case "parse a multi-rule program" `Quick (fun () ->
      let rules =
        Parser.parse_program
          "path(x, y) :- edge(x, y).\n\
           path(x, z) :- edge(x, y), path(y, z).\n"
      in
      Alcotest.(check int) "two rules" 2 (List.length rules))

let parse_error_reports_position =
  Alcotest.test_case "syntax errors carry line/column" `Quick (fun () ->
      try
        ignore (parse "p(x :- q(x).");
        Alcotest.fail "expected Parse_error"
      with Parser.Parse_error { line; _ } ->
        Alcotest.(check int) "line 1" 1 line)

let unterminated_string_rejected =
  Alcotest.test_case "unterminated strings rejected" `Quick (fun () ->
      try
        ignore (parse {|p("oops) :- q(x).|});
        Alcotest.fail "expected Parse_error"
      with Parser.Parse_error _ -> ())

(* Alpha-equivalence: compare rules after canonically renaming
   variables in first-occurrence order. *)
let canonicalize (r : rule) : rule =
  let mapping = Hashtbl.create 16 in
  let counter = ref 0 in
  let rename v =
    match Hashtbl.find_opt mapping v with
    | Some v' -> v'
    | None ->
        incr counter;
        let v' = Printf.sprintf "v%d" !counter in
        Hashtbl.replace mapping v v';
        v'
  in
  let term = function Var v -> Var (rename v) | c -> c in
  let rec expr = function
    | E_var v -> E_var (rename v)
    | E_const c -> E_const c
    | E_add (a, b) -> E_add (expr a, expr b)
    | E_sub (a, b) -> E_sub (expr a, expr b)
    | E_mul (a, b) -> E_mul (expr a, expr b)
  in
  let atom a = { a with args = List.map term a.args } in
  (* Rename in body-first order so head vars follow their binding
     occurrences, then the head. *)
  let body =
    List.map
      (function
        | Pos a -> Pos (atom a)
        | Neg a -> Neg (atom a)
        | Cmp (op, a, b) -> Cmp (op, expr a, expr b))
      r.body
  in
  { head = atom r.head; body }

let roundtrip_all_cross_chain_rules =
  Alcotest.test_case "every cross-chain rule round-trips through the parser"
    `Quick (fun () ->
      List.iter
        (fun rule ->
          let printed = Format.asprintf "%a" pp_rule rule in
          let reparsed =
            try parse printed
            with Parser.Parse_error { line; col; message } ->
              Alcotest.fail
                (Printf.sprintf "parse failed at %d:%d (%s) in:\n%s" line col
                   message printed)
          in
          Alcotest.check rule_testable
            (Printf.sprintf "round-trip of %s" rule.head.pred)
            (canonicalize rule) (canonicalize reparsed))
        Xcw_core.Rules.all_rules)

let parsed_rules_evaluate_identically =
  Alcotest.test_case "parsed rules derive the same tuples as compiled ones"
    `Quick (fun () ->
      let source =
        "path(x, y) :- edge(x, y).\n\
         path(x, z) :- edge(x, y), path(y, z).\n\
         long(x, z) :- path(x, z), x + 2 <= z."
      in
      let parsed = Parser.parse_program source in
      let compiled =
        [
          atom "path" [ v "x"; v "y" ] <-- [ pos (atom "edge" [ v "x"; v "y" ]) ];
          atom "path" [ v "x"; v "z" ]
          <-- [ pos (atom "edge" [ v "x"; v "y" ]); pos (atom "path" [ v "y"; v "z" ]) ];
          atom "long" [ v "x"; v "z" ]
          <-- [ pos (atom "path" [ v "x"; v "z" ]); ev "x" +! eint 2 <=! ev "z" ];
        ]
      in
      let run rules =
        let db = Engine.create_db () in
        for k = 0 to 5 do
          Engine.add_fact db "edge" [ Int k; Int (k + 1) ]
        done;
        ignore (Engine.run db { rules });
        (List.sort compare (Engine.facts db "path"),
         List.sort compare (Engine.facts db "long"))
      in
      Alcotest.(check bool) "identical derivations" true (run parsed = run compiled))

let prop_roundtrip_random_rules =
  (* Random rules built from a small vocabulary; checks
     parse(pp(r)) == r up to alpha-equivalence. *)
  let gen_rule =
    let open QCheck.Gen in
    let var = oneofl [ "x"; "y"; "z"; "w" ] in
    let term =
      oneof
        [
          map (fun v -> Var v) var;
          map (fun n -> Const (Int n)) (int_range 0 999);
          map (fun s -> Const (Str s)) (oneofl [ "a"; "b"; "0xdead" ]);
        ]
    in
    let atom_gen =
      map2
        (fun name args -> atom name args)
        (oneofl [ "p"; "q"; "r" ])
        (list_size (1 -- 3) term)
    in
    let cmp_gen =
      map2
        (fun (op, a) b -> Cmp (op, E_var a, E_const (Int b)))
        (pair (oneofl [ Lt; Le; Gt; Ge; Eq; Ne ]) var)
        (int_range 0 99)
    in
    (* Head vars must be bound: build the head from vars of the first
       positive atom. *)
    atom_gen >>= fun first ->
    list_size (0 -- 2) (oneof [ map (fun a -> Pos a) atom_gen; cmp_gen ])
    >>= fun rest ->
    let head_args =
      List.filter_map (function Var v -> Some (Var v) | _ -> None) first.args
    in
    let head_args = if head_args = [] then [ Const (Int 0) ] else head_args in
    (* Comparisons must use bound vars only: restrict to vars of first. *)
    let bound =
      List.filter_map (function Var v -> Some v | _ -> None) first.args
    in
    let rest =
      List.filter
        (function
          | Cmp (_, E_var v, _) -> List.mem v bound
          | _ -> true)
        rest
    in
    return (atom "h" head_args <-- (pos first :: rest))
  in
  QCheck.Test.make ~name:"random rules round-trip" ~count:200
    (QCheck.make ~print:(Format.asprintf "%a" pp_rule) gen_rule)
    (fun r ->
      let printed = Format.asprintf "%a" pp_rule r in
      canonicalize (parse printed) = canonicalize r)

let dl_file_in_sync =
  Alcotest.test_case "rules/cross_chain_rules.dl matches the compiled rules"
    `Quick (fun () ->
      let path = "../rules/cross_chain_rules.dl" in
      let path =
        if Sys.file_exists path then path else "rules/cross_chain_rules.dl"
      in
      let ic = open_in path in
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      close_in ic;
      let parsed = Parser.parse_program src in
      Alcotest.(check int) "same rule count"
        (List.length Xcw_core.Rules.all_rules)
        (List.length parsed);
      List.iter2
        (fun compiled from_file ->
          Alcotest.check rule_testable
            (Printf.sprintf "rule %s in sync" compiled.head.pred)
            (canonicalize compiled) (canonicalize from_file))
        Xcw_core.Rules.all_rules parsed)

let () =
  Alcotest.run "parser"
    [
      ( "syntax",
        [
          simple_rule;
          fact_rule;
          negation_rule;
          comparison_rule;
          string_comparison;
          negative_int;
          comments_ignored;
          directives_skipped;
          multi_rule_program;
          parse_error_reports_position;
          unterminated_string_rejected;
        ] );
      ( "round-trip",
        [
          roundtrip_all_cross_chain_rules;
          dl_file_in_sync;
          parsed_rules_evaluate_identically;
          QCheck_alcotest.to_alcotest prop_roundtrip_random_rules;
        ] );
    ]
