(* Tests for the RPC facade and its latency model. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain
module Rpc = Xcw_rpc.Rpc
module Fault = Xcw_rpc.Fault
module Client = Xcw_rpc.Client
module Latency = Xcw_rpc.Latency
module Erc20 = Xcw_chain.Erc20
module Prng = Xcw_util.Prng
module Stats = Xcw_util.Stats

let u = U256.of_int
let alice = Address.of_seed "rpc-alice"
let bob = Address.of_seed "rpc-bob"

let make_chain_with_txs () =
  let c =
    Chain.create ~chain_id:1 ~name:"test" ~finality_seconds:60
      ~genesis_time:1_650_000_000
  in
  Chain.fund c alice (u 1_000_000);
  let deployer = Address.of_seed "rpc-deployer" in
  let token =
    Erc20.deploy c ~from_:deployer ~name:"T" ~symbol:"T" ~decimals:18
      ~owner:deployer
  in
  ignore
    (Chain.submit_tx c ~from_:deployer ~to_:token
       ~input:(Erc20.mint_calldata ~to_:alice ~amount:(u 1_000))
       ());
  let r1 = Chain.submit_tx c ~from_:alice ~to_:bob ~value:(u 5) () in
  let r2 =
    Chain.submit_tx c ~from_:alice ~to_:token
      ~input:(Erc20.transfer_calldata ~to_:bob ~amount:(u 7))
      ()
  in
  (c, token, r1, r2)

let receipt_fetch =
  Alcotest.test_case "eth_getTransactionReceipt finds recorded txs" `Quick
    (fun () ->
      let c, _, r1, _ = make_chain_with_txs () in
      let rpc = Rpc.create c in
      (match Rpc.ok (Rpc.eth_get_transaction_receipt rpc r1.Types.r_tx_hash) with
      | Some r -> Alcotest.(check bool) "same tx" true (r.Types.r_tx_hash = r1.Types.r_tx_hash)
      | None -> Alcotest.fail "receipt not found");
      let missing = Rpc.eth_get_transaction_receipt rpc (String.make 32 'z') in
      Alcotest.(check bool) "missing is None" true (Rpc.ok missing = None))

let transaction_fetch_has_value =
  Alcotest.test_case "eth_getTransactionByHash exposes tx.value" `Quick
    (fun () ->
      let c, _, r1, r2 = make_chain_with_txs () in
      let rpc = Rpc.create c in
      (match Rpc.ok (Rpc.eth_get_transaction_by_hash rpc r1.Types.r_tx_hash) with
      | Some tx -> Alcotest.(check bool) "value 5" true (U256.equal tx.Types.tx_value (u 5))
      | None -> Alcotest.fail "tx not found");
      match Rpc.ok (Rpc.eth_get_transaction_by_hash rpc r2.Types.r_tx_hash) with
      | Some tx ->
          Alcotest.(check bool) "erc20 call has zero value" true
            (U256.is_zero tx.Types.tx_value)
      | None -> Alcotest.fail "tx not found")

let balance_fetch =
  Alcotest.test_case "eth_getBalance" `Quick (fun () ->
      let c, _, _, _ = make_chain_with_txs () in
      let rpc = Rpc.create c in
      Alcotest.(check bool) "bob got 5" true
        (U256.equal (Rpc.ok (Rpc.eth_get_balance rpc bob)) (u 5)))

let logs_filter_by_address =
  Alcotest.test_case "eth_getLogs filters by address and topic0" `Quick
    (fun () ->
      let c, token, _, _ = make_chain_with_txs () in
      let rpc = Rpc.create c in
      let all = Rpc.ok (Rpc.eth_get_logs rpc Rpc.default_filter) in
      (* mint + transfer = 2 Transfer logs *)
      Alcotest.(check int) "2 logs total" 2 (List.length all);
      let by_addr =
        Rpc.ok
          (Rpc.eth_get_logs rpc
             { Rpc.default_filter with Rpc.filter_addresses = [ token ] })
      in
      Alcotest.(check int) "2 from token" 2 (List.length by_addr);
      let topic0 = Xcw_abi.Abi.Event.topic0 Erc20.transfer_event in
      let by_topic =
        Rpc.ok
          (Rpc.eth_get_logs rpc
             { Rpc.default_filter with Rpc.filter_topic0 = [ topic0 ] })
      in
      Alcotest.(check int) "2 with Transfer topic0" 2 (List.length by_topic);
      let none =
        Rpc.ok
          (Rpc.eth_get_logs rpc
             { Rpc.default_filter with Rpc.filter_topic0 = [ String.make 32 'q' ] })
      in
      Alcotest.(check int) "0 with foreign topic" 0 (List.length none))

let logs_exclude_reverted =
  Alcotest.test_case "eth_getLogs never returns logs of reverted txs" `Quick
    (fun () ->
      let c, token, _, _ = make_chain_with_txs () in
      (* A reverting transfer (insufficient balance). *)
      ignore
        (Chain.submit_tx c ~from_:bob ~to_:token
           ~input:(Erc20.transfer_calldata ~to_:alice ~amount:(u 999_999))
           ());
      let rpc = Rpc.create c in
      let all = Rpc.ok (Rpc.eth_get_logs rpc Rpc.default_filter) in
      Alcotest.(check int) "still 2 logs" 2 (List.length all))

let logs_block_range =
  Alcotest.test_case "eth_getLogs respects block range" `Quick (fun () ->
      let c, _, _, _ = make_chain_with_txs () in
      let rpc = Rpc.create c in
      (* token deploy = block 1, mint = block 2, native = 3, erc20 = 4 *)
      let early =
        Rpc.ok
          (Rpc.eth_get_logs rpc { Rpc.default_filter with Rpc.to_block = Some 2 })
      in
      Alcotest.(check int) "only the mint" 1 (List.length early);
      let late =
        Rpc.ok
          (Rpc.eth_get_logs rpc
             { Rpc.default_filter with Rpc.from_block = Some 4 })
      in
      Alcotest.(check int) "only the transfer" 1 (List.length late))

let latency_accumulates =
  Alcotest.test_case "simulated latency accumulates per request" `Quick
    (fun () ->
      let c, _, r1, _ = make_chain_with_txs () in
      let rpc = Rpc.create ~profile:Latency.ronin_profile c in
      Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Rpc.total_latency rpc);
      let resp = Rpc.eth_get_transaction_receipt rpc r1.Types.r_tx_hash in
      ignore (Rpc.ok resp);
      Alcotest.(check bool) "positive latency" true (resp.Rpc.latency > 0.0);
      Alcotest.(check (float 1e-9)) "accumulated" resp.Rpc.latency
        (Rpc.total_latency rpc);
      Alcotest.(check int) "one request" 1 (Rpc.request_count rpc))

(* ------------------------------------------------------------------ *)
(* eth_getLogs boundary audit                                          *)

(* The filter semantics the decoders rely on, nailed down explicitly:
   inclusive bounds on both edges, [None] = chain edge, empty
   address/topic lists match anything, populated lists are any-of,
   reverted transactions never contribute logs. *)

let logs_of rpc filter = Rpc.ok (Rpc.eth_get_logs rpc filter)

let logs_single_block_inclusive =
  Alcotest.test_case "from = to selects exactly that block (inclusive)" `Quick
    (fun () ->
      let c, _, _, _ = make_chain_with_txs () in
      let rpc = Rpc.create c in
      (* mint sits in block 2 *)
      let one =
        logs_of rpc
          { Rpc.default_filter with Rpc.from_block = Some 2; to_block = Some 2 }
      in
      Alcotest.(check int) "block 2 alone has the mint" 1 (List.length one);
      List.iter
        (fun ((r : Types.receipt), _) ->
          Alcotest.(check int) "in block 2" 2 r.Types.r_block_number)
        one)

let logs_inverted_range_empty =
  Alcotest.test_case "from > to is empty, not an error" `Quick (fun () ->
      let c, _, _, _ = make_chain_with_txs () in
      let rpc = Rpc.create c in
      let none =
        logs_of rpc
          { Rpc.default_filter with Rpc.from_block = Some 4; to_block = Some 2 }
      in
      Alcotest.(check int) "empty" 0 (List.length none))

let logs_none_bounds_cover_chain =
  Alcotest.test_case "None bounds = chain edges; 0/max are no-ops" `Quick
    (fun () ->
      let c, _, _, _ = make_chain_with_txs () in
      let rpc = Rpc.create c in
      let all = logs_of rpc Rpc.default_filter in
      let wide =
        logs_of rpc
          { Rpc.default_filter with Rpc.from_block = Some 0;
            to_block = Some max_int }
      in
      Alcotest.(check int) "same logs" (List.length all) (List.length wide))

let logs_multi_filters_are_any_of =
  Alcotest.test_case "populated address/topic lists are any-of" `Quick
    (fun () ->
      let c, token, _, _ = make_chain_with_txs () in
      let rpc = Rpc.create c in
      let other = Address.of_seed "rpc-unrelated-contract" in
      let by_addr =
        logs_of rpc
          { Rpc.default_filter with Rpc.filter_addresses = [ other; token ] }
      in
      Alcotest.(check int) "token matches among two addresses" 2
        (List.length by_addr);
      let topic0 = Xcw_abi.Abi.Event.topic0 Erc20.transfer_event in
      let by_topic =
        logs_of rpc
          { Rpc.default_filter with
            Rpc.filter_topic0 = [ String.make 32 'q'; topic0 ] }
      in
      Alcotest.(check int) "Transfer matches among two topics" 2
        (List.length by_topic))

let logs_ordered_oldest_first =
  Alcotest.test_case "logs come back oldest-first" `Quick (fun () ->
      let c, _, _, _ = make_chain_with_txs () in
      let rpc = Rpc.create c in
      let blocks =
        logs_of rpc Rpc.default_filter
        |> List.map (fun ((r : Types.receipt), _) -> r.Types.r_block_number)
      in
      Alcotest.(check (list int)) "ascending" (List.sort compare blocks) blocks)

let logs_truncation_and_split =
  Alcotest.test_case
    "range cap truncates at served_to; client split recovers all logs"
    `Quick (fun () ->
      let c, _, _, _ = make_chain_with_txs () in
      (* Transient probabilities zero: only the range cap fires. *)
      let fault = { Fault.none with Fault.f_logs_range_cap = Some 2 } in
      let rpc = Rpc.create ~fault c in
      (match (Rpc.eth_get_logs rpc Rpc.default_filter).Rpc.value with
      | Error (Rpc.Truncated_range { served_to }) ->
          (* 4 blocks requested, cap 2: the provider covered 1-2. *)
          Alcotest.(check int) "served_to = from + cap - 1" 2 served_to
      | Ok _ -> Alcotest.fail "expected truncation over 4 blocks"
      | Error e -> Alcotest.fail (Rpc.error_to_string e));
      let reference =
        Rpc.ok (Rpc.eth_get_logs (Rpc.create c) Rpc.default_filter)
      in
      let client = Client.create rpc in
      let split = Client.get_logs client Rpc.default_filter in
      (match split.Rpc.value with
      | Ok logs ->
          Alcotest.(check int) "split recovers every log"
            (List.length reference) (List.length logs);
          Alcotest.(check bool) "same receipts in same order" true
            (List.map (fun ((r : Types.receipt), _) -> r.Types.r_tx_hash) logs
            = List.map
                (fun ((r : Types.receipt), _) -> r.Types.r_tx_hash)
                reference)
      | Error e -> Alcotest.fail (Rpc.error_to_string e));
      Alcotest.(check bool) "at least one split recorded" true
        ((Client.stats client).Client.s_range_splits > 0))

(* ------------------------------------------------------------------ *)
(* Latency model properties                                            *)

let prop_latency_positive_and_capped =
  QCheck.Test.make ~name:"latencies are positive and capped" ~count:300
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.create seed in
      List.for_all
        (fun profile ->
          let r = Latency.receipt_fetch profile rng in
          let t = Latency.trace_fetch profile rng in
          r > 0.0 && t > 0.0
          && r <= profile.Latency.max_latency
          && t <= profile.Latency.max_latency)
        [ Latency.ronin_profile; Latency.nomad_profile; Latency.colocated_profile ])

(* Regression for the cap-accounting bug: the retry total used to be
   clamped only at the very end, so a timeout-heavy run could first
   blow past the cap internally and — worse — lowering [max_latency]
   could change which retries happen without bounding each step,
   breaking monotonicity of the model in the cap.  With per-attempt
   clamping, for the same PRNG stream the fetch under a smaller cap is
   never slower than under a larger one. *)
let prop_trace_fetch_capped_and_monotone =
  QCheck.Test.make
    ~name:"trace_fetch <= max_latency and monotone in the cap" ~count:500
    QCheck.(triple (int_bound 100_000) (int_range 1 60) (int_range 0 120))
    (fun (seed, lo_s, extra_s) ->
      (* A timeout-heavy profile so the retry path is actually
         exercised, with caps [lo <= hi] derived from the generator. *)
      let lo = float_of_int lo_s and hi = float_of_int (lo_s + extra_s) in
      let profile cap =
        { Latency.ronin_profile with Latency.trace_timeout_prob = 0.5;
          max_latency = cap }
      in
      let fetch cap = Latency.trace_fetch (profile cap) (Prng.create seed) in
      let a = fetch lo and b = fetch hi in
      a > 0.0 && a <= lo && b <= hi && a <= b)

let trace_slower_than_receipt =
  Alcotest.test_case "tracing is slower than receipt fetches on average"
    `Quick (fun () ->
      let rng = Prng.create 9 in
      let n = 3000 in
      let mean f = Stats.mean (List.init n (fun _ -> f ())) in
      let receipt = mean (fun () -> Latency.receipt_fetch Latency.ronin_profile rng) in
      let trace = mean (fun () -> Latency.trace_fetch Latency.ronin_profile rng) in
      Alcotest.(check bool)
        (Printf.sprintf "trace %.3f > receipt %.3f" trace receipt)
        true (trace > receipt))

let ronin_profile_matches_paper_shape =
  Alcotest.test_case "Ronin profile: ~6.5% of traces exceed 10 s" `Quick
    (fun () ->
      let rng = Prng.create 123 in
      let samples =
        List.init 20_000 (fun _ -> Latency.trace_fetch Latency.ronin_profile rng)
      in
      let frac = Stats.fraction_exceeding samples 10.0 in
      Alcotest.(check bool)
        (Printf.sprintf "%.3f in [0.03; 0.10]" frac)
        true
        (frac > 0.03 && frac < 0.10);
      Alcotest.(check bool) "max capped at 138.15" true
        (List.for_all (fun s -> s <= 138.15) samples))

let colocated_is_fast =
  Alcotest.test_case "colocated profile stays in milliseconds" `Quick
    (fun () ->
      let rng = Prng.create 5 in
      let samples =
        List.init 2000 (fun _ -> Latency.receipt_fetch Latency.colocated_profile rng)
      in
      Alcotest.(check bool) "median < 10ms" true (Stats.median samples < 0.01))

let () =
  Alcotest.run "rpc"
    [
      ( "methods",
        [
          receipt_fetch;
          transaction_fetch_has_value;
          balance_fetch;
          logs_filter_by_address;
          logs_exclude_reverted;
          logs_block_range;
          latency_accumulates;
        ] );
      ( "logs-boundaries",
        [
          logs_single_block_inclusive;
          logs_inverted_range_empty;
          logs_none_bounds_cover_chain;
          logs_multi_filters_are_any_of;
          logs_ordered_oldest_first;
          logs_truncation_and_split;
        ] );
      ( "latency-model",
        [
          QCheck_alcotest.to_alcotest prop_latency_positive_and_capped;
          QCheck_alcotest.to_alcotest prop_trace_fetch_capped_and_monotone;
          trace_slower_than_receipt;
          ronin_profile_matches_paper_shape;
          colocated_is_fast;
        ] );
    ]
