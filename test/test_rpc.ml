(* Tests for the RPC facade and its latency model. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain
module Rpc = Xcw_rpc.Rpc
module Latency = Xcw_rpc.Latency
module Erc20 = Xcw_chain.Erc20
module Prng = Xcw_util.Prng
module Stats = Xcw_util.Stats

let u = U256.of_int
let alice = Address.of_seed "rpc-alice"
let bob = Address.of_seed "rpc-bob"

let make_chain_with_txs () =
  let c =
    Chain.create ~chain_id:1 ~name:"test" ~finality_seconds:60
      ~genesis_time:1_650_000_000
  in
  Chain.fund c alice (u 1_000_000);
  let deployer = Address.of_seed "rpc-deployer" in
  let token =
    Erc20.deploy c ~from_:deployer ~name:"T" ~symbol:"T" ~decimals:18
      ~owner:deployer
  in
  ignore
    (Chain.submit_tx c ~from_:deployer ~to_:token
       ~input:(Erc20.mint_calldata ~to_:alice ~amount:(u 1_000))
       ());
  let r1 = Chain.submit_tx c ~from_:alice ~to_:bob ~value:(u 5) () in
  let r2 =
    Chain.submit_tx c ~from_:alice ~to_:token
      ~input:(Erc20.transfer_calldata ~to_:bob ~amount:(u 7))
      ()
  in
  (c, token, r1, r2)

let receipt_fetch =
  Alcotest.test_case "eth_getTransactionReceipt finds recorded txs" `Quick
    (fun () ->
      let c, _, r1, _ = make_chain_with_txs () in
      let rpc = Rpc.create c in
      let resp = Rpc.eth_get_transaction_receipt rpc r1.Types.r_tx_hash in
      (match resp.Rpc.value with
      | Some r -> Alcotest.(check bool) "same tx" true (r.Types.r_tx_hash = r1.Types.r_tx_hash)
      | None -> Alcotest.fail "receipt not found");
      let missing = Rpc.eth_get_transaction_receipt rpc (String.make 32 'z') in
      Alcotest.(check bool) "missing is None" true (missing.Rpc.value = None))

let transaction_fetch_has_value =
  Alcotest.test_case "eth_getTransactionByHash exposes tx.value" `Quick
    (fun () ->
      let c, _, r1, r2 = make_chain_with_txs () in
      let rpc = Rpc.create c in
      (match (Rpc.eth_get_transaction_by_hash rpc r1.Types.r_tx_hash).Rpc.value with
      | Some tx -> Alcotest.(check bool) "value 5" true (U256.equal tx.Types.tx_value (u 5))
      | None -> Alcotest.fail "tx not found");
      match (Rpc.eth_get_transaction_by_hash rpc r2.Types.r_tx_hash).Rpc.value with
      | Some tx ->
          Alcotest.(check bool) "erc20 call has zero value" true
            (U256.is_zero tx.Types.tx_value)
      | None -> Alcotest.fail "tx not found")

let balance_fetch =
  Alcotest.test_case "eth_getBalance" `Quick (fun () ->
      let c, _, _, _ = make_chain_with_txs () in
      let rpc = Rpc.create c in
      Alcotest.(check bool) "bob got 5" true
        (U256.equal (Rpc.eth_get_balance rpc bob).Rpc.value (u 5)))

let logs_filter_by_address =
  Alcotest.test_case "eth_getLogs filters by address and topic0" `Quick
    (fun () ->
      let c, token, _, _ = make_chain_with_txs () in
      let rpc = Rpc.create c in
      let all = (Rpc.eth_get_logs rpc Rpc.default_filter).Rpc.value in
      (* mint + transfer = 2 Transfer logs *)
      Alcotest.(check int) "2 logs total" 2 (List.length all);
      let by_addr =
        (Rpc.eth_get_logs rpc
           { Rpc.default_filter with Rpc.filter_addresses = [ token ] })
          .Rpc.value
      in
      Alcotest.(check int) "2 from token" 2 (List.length by_addr);
      let topic0 = Xcw_abi.Abi.Event.topic0 Erc20.transfer_event in
      let by_topic =
        (Rpc.eth_get_logs rpc
           { Rpc.default_filter with Rpc.filter_topic0 = [ topic0 ] })
          .Rpc.value
      in
      Alcotest.(check int) "2 with Transfer topic0" 2 (List.length by_topic);
      let none =
        (Rpc.eth_get_logs rpc
           { Rpc.default_filter with Rpc.filter_topic0 = [ String.make 32 'q' ] })
          .Rpc.value
      in
      Alcotest.(check int) "0 with foreign topic" 0 (List.length none))

let logs_exclude_reverted =
  Alcotest.test_case "eth_getLogs never returns logs of reverted txs" `Quick
    (fun () ->
      let c, token, _, _ = make_chain_with_txs () in
      (* A reverting transfer (insufficient balance). *)
      ignore
        (Chain.submit_tx c ~from_:bob ~to_:token
           ~input:(Erc20.transfer_calldata ~to_:alice ~amount:(u 999_999))
           ());
      let rpc = Rpc.create c in
      let all = (Rpc.eth_get_logs rpc Rpc.default_filter).Rpc.value in
      Alcotest.(check int) "still 2 logs" 2 (List.length all))

let logs_block_range =
  Alcotest.test_case "eth_getLogs respects block range" `Quick (fun () ->
      let c, _, _, _ = make_chain_with_txs () in
      let rpc = Rpc.create c in
      (* token deploy = block 1, mint = block 2, native = 3, erc20 = 4 *)
      let early =
        (Rpc.eth_get_logs rpc { Rpc.default_filter with Rpc.to_block = Some 2 })
          .Rpc.value
      in
      Alcotest.(check int) "only the mint" 1 (List.length early);
      let late =
        (Rpc.eth_get_logs rpc { Rpc.default_filter with Rpc.from_block = Some 4 })
          .Rpc.value
      in
      Alcotest.(check int) "only the transfer" 1 (List.length late))

let latency_accumulates =
  Alcotest.test_case "simulated latency accumulates per request" `Quick
    (fun () ->
      let c, _, r1, _ = make_chain_with_txs () in
      let rpc = Rpc.create ~profile:Latency.ronin_profile c in
      Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Rpc.total_latency rpc);
      let resp = Rpc.eth_get_transaction_receipt rpc r1.Types.r_tx_hash in
      Alcotest.(check bool) "positive latency" true (resp.Rpc.latency > 0.0);
      Alcotest.(check (float 1e-9)) "accumulated" resp.Rpc.latency
        (Rpc.total_latency rpc);
      Alcotest.(check int) "one request" 1 (Rpc.request_count rpc))

(* ------------------------------------------------------------------ *)
(* Latency model properties                                            *)

let prop_latency_positive_and_capped =
  QCheck.Test.make ~name:"latencies are positive and capped" ~count:300
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.create seed in
      List.for_all
        (fun profile ->
          let r = Latency.receipt_fetch profile rng in
          let t = Latency.trace_fetch profile rng in
          r > 0.0 && t > 0.0
          && r <= profile.Latency.max_latency
          && t <= profile.Latency.max_latency)
        [ Latency.ronin_profile; Latency.nomad_profile; Latency.colocated_profile ])

(* Regression for the cap-accounting bug: the retry total used to be
   clamped only at the very end, so a timeout-heavy run could first
   blow past the cap internally and — worse — lowering [max_latency]
   could change which retries happen without bounding each step,
   breaking monotonicity of the model in the cap.  With per-attempt
   clamping, for the same PRNG stream the fetch under a smaller cap is
   never slower than under a larger one. *)
let prop_trace_fetch_capped_and_monotone =
  QCheck.Test.make
    ~name:"trace_fetch <= max_latency and monotone in the cap" ~count:500
    QCheck.(triple (int_bound 100_000) (int_range 1 60) (int_range 0 120))
    (fun (seed, lo_s, extra_s) ->
      (* A timeout-heavy profile so the retry path is actually
         exercised, with caps [lo <= hi] derived from the generator. *)
      let lo = float_of_int lo_s and hi = float_of_int (lo_s + extra_s) in
      let profile cap =
        { Latency.ronin_profile with Latency.trace_timeout_prob = 0.5;
          max_latency = cap }
      in
      let fetch cap = Latency.trace_fetch (profile cap) (Prng.create seed) in
      let a = fetch lo and b = fetch hi in
      a > 0.0 && a <= lo && b <= hi && a <= b)

let trace_slower_than_receipt =
  Alcotest.test_case "tracing is slower than receipt fetches on average"
    `Quick (fun () ->
      let rng = Prng.create 9 in
      let n = 3000 in
      let mean f = Stats.mean (List.init n (fun _ -> f ())) in
      let receipt = mean (fun () -> Latency.receipt_fetch Latency.ronin_profile rng) in
      let trace = mean (fun () -> Latency.trace_fetch Latency.ronin_profile rng) in
      Alcotest.(check bool)
        (Printf.sprintf "trace %.3f > receipt %.3f" trace receipt)
        true (trace > receipt))

let ronin_profile_matches_paper_shape =
  Alcotest.test_case "Ronin profile: ~6.5% of traces exceed 10 s" `Quick
    (fun () ->
      let rng = Prng.create 123 in
      let samples =
        List.init 20_000 (fun _ -> Latency.trace_fetch Latency.ronin_profile rng)
      in
      let frac = Stats.fraction_exceeding samples 10.0 in
      Alcotest.(check bool)
        (Printf.sprintf "%.3f in [0.03; 0.10]" frac)
        true
        (frac > 0.03 && frac < 0.10);
      Alcotest.(check bool) "max capped at 138.15" true
        (List.for_all (fun s -> s <= 138.15) samples))

let colocated_is_fast =
  Alcotest.test_case "colocated profile stays in milliseconds" `Quick
    (fun () ->
      let rng = Prng.create 5 in
      let samples =
        List.init 2000 (fun _ -> Latency.receipt_fetch Latency.colocated_profile rng)
      in
      Alcotest.(check bool) "median < 10ms" true (Stats.median samples < 0.01))

let () =
  Alcotest.run "rpc"
    [
      ( "methods",
        [
          receipt_fetch;
          transaction_fetch_has_value;
          balance_fetch;
          logs_filter_by_address;
          logs_exclude_reverted;
          logs_block_range;
          latency_accumulates;
        ] );
      ( "latency-model",
        [
          QCheck_alcotest.to_alcotest prop_latency_positive_and_capped;
          QCheck_alcotest.to_alcotest prop_trace_fetch_capped_and_monotone;
          trace_slower_than_receipt;
          ronin_profile_matches_paper_shape;
          colocated_is_fast;
        ] );
    ]
