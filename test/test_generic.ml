(* Detector soundness: on protocol-clean traffic — any seed, volume,
   acceptance model, escrow model, beneficiary representation — the
   detector must report ZERO anomalies, and captured counts must match
   the generated traffic exactly.  This is the anomaly-detection
   analogue of a no-false-positive guarantee on the modeled behaviour
   (the paper's rules are designed to capture all expected behaviour;
   anything flagged on benign input would be a modeling error). *)

module Detector = Xcw_core.Detector
module Decoder = Xcw_core.Decoder
module Report = Xcw_core.Report
module Generic = Xcw_workload.Generic
module Scenario = Xcw_workload.Scenario
module Bridge = Xcw_bridge.Bridge
module Events = Xcw_bridge.Events

let detect (b : Scenario.built) repr =
  let plugin =
    match repr with
    | Events.B_address -> Decoder.ronin_plugin
    | Events.B_bytes32 -> Decoder.nomad_plugin
  in
  Detector.run
    (Detector.default_input ~label:"generic" ~plugin ~config:b.Scenario.config
       ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
       ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
       ~pricing:b.Scenario.pricing)

let row result name =
  List.find
    (fun r -> r.Report.rr_rule = name)
    result.Detector.report.Report.rows

let check_sound ~name (spec : Generic.spec) =
  let b = Generic.build spec in
  let result = detect b spec.Generic.g_beneficiary_repr in
  let g = b.Scenario.ground_truth in
  Alcotest.(check int)
    (name ^ ": zero anomalies") 0
    (Report.total_anomalies result.Detector.report);
  Alcotest.(check int)
    (name ^ ": rule 2 captured")
    g.Scenario.gt_erc20_deposits
    (row result "2. SC_ValidERC20TokenDeposit").Report.rr_captured;
  Alcotest.(check int)
    (name ^ ": rule 1 captured")
    g.Scenario.gt_native_deposits
    (row result "1. SC_ValidNativeTokenDeposit").Report.rr_captured;
  Alcotest.(check int)
    (name ^ ": all deposits matched")
    (g.Scenario.gt_erc20_deposits + g.Scenario.gt_native_deposits)
    (row result "4. CCTX_ValidDeposit").Report.rr_captured;
  Alcotest.(check int)
    (name ^ ": all withdrawals matched")
    g.Scenario.gt_erc20_withdrawals
    (row result "8. CCTX_ValidWithdrawal").Report.rr_captured

let multisig_lock_sound =
  Alcotest.test_case "multisig lock-unlock bridge: clean traffic is clean"
    `Quick (fun () ->
      check_sound ~name:"multisig-lock" Generic.default_spec)

let optimistic_bytes32_sound =
  Alcotest.test_case "optimistic bytes32 bridge: clean traffic is clean"
    `Quick (fun () ->
      check_sound ~name:"optimistic"
        {
          Generic.default_spec with
          Generic.g_seed = 2;
          g_acceptance = `Optimistic;
          g_beneficiary_repr = Events.B_bytes32;
          g_source_finality = 1800;
        })

let burn_mint_sound =
  Alcotest.test_case "burn-mint bridge: clean traffic is clean" `Quick
    (fun () ->
      check_sound ~name:"burn-mint"
        {
          Generic.default_spec with
          Generic.g_seed = 3;
          g_escrow = Bridge.Burn_mint;
        })

let prop_soundness_random_specs =
  QCheck.Test.make ~name:"detector soundness over random benign scenarios"
    ~count:12 Xcw_testlib.arb_generic_spec (fun spec ->
      let b = Generic.build spec in
      let result = detect b spec.Generic.g_beneficiary_repr in
      Report.total_anomalies result.Detector.report = 0)

let aggregator_deposits_accepted =
  Alcotest.test_case "aggregator-routed deposits are valid cctxs" `Quick
    (fun () ->
      let spec =
        {
          Generic.default_spec with
          Generic.g_seed = 4;
          g_erc20_deposits = 0;
          g_native_deposits = 0;
          g_withdrawals = 0;
          g_via_aggregator = 8;
        }
      in
      let b = Generic.build spec in
      let result = detect b Events.B_address in
      Alcotest.(check int) "zero anomalies" 0
        (Report.total_anomalies result.Detector.report);
      Alcotest.(check int) "8 cctxs" 8
        (row result "4. CCTX_ValidDeposit").Report.rr_captured)

let parsed_rules_equivalent_detection =
  Alcotest.test_case "detection with .dl-parsed rules matches compiled rules"
    `Quick (fun () ->
      let spec = { Generic.default_spec with Generic.g_seed = 8 } in
      let b = Generic.build spec in
      (* Inject one anomaly so the comparison is not trivially 0 = 0. *)
      let bridge = b.Scenario.bridge in
      let user = Xcw_evm.Address.of_seed "dl-user" in
      Xcw_chain.Chain.fund bridge.Bridge.source.Bridge.chain user
        (Xcw_uint256.Uint256.of_tokens ~decimals:18 1);
      let rt = List.hd b.Scenario.tokens in
      ignore
        (Xcw_chain.Chain.submit_tx bridge.Bridge.source.Bridge.chain
           ~from_:bridge.Bridge.source.Bridge.operator
           ~to_:rt.Scenario.rt_mapping.Bridge.m_src_token
           ~input:
             (Xcw_chain.Erc20.mint_calldata ~to_:user
                ~amount:(Xcw_uint256.Uint256.of_int 500))
           ());
      ignore
        (Bridge.direct_token_transfer_to_bridge bridge ~user
           ~src_token:rt.Scenario.rt_mapping.Bridge.m_src_token
           ~amount:(Xcw_uint256.Uint256.of_int 500));
      let base_input =
        Detector.default_input ~label:"dl" ~plugin:Decoder.ronin_plugin
          ~config:b.Scenario.config
          ~source_chain:bridge.Bridge.source.Bridge.chain
          ~target_chain:bridge.Bridge.target.Bridge.chain
          ~pricing:b.Scenario.pricing
      in
      let compiled = Detector.run base_input in
      (* Round-trip ALL rules through the printer and parser, then
         detect again. *)
      let printed =
        String.concat "\n"
          (List.map
             (Format.asprintf "%a" Xcw_datalog.Ast.pp_rule)
             Xcw_core.Rules.all_rules)
      in
      let parsed =
        { Xcw_datalog.Ast.rules = Xcw_datalog.Parser.parse_program printed }
      in
      let reparsed =
        Detector.run { base_input with Detector.i_program = parsed }
      in
      let signature (r : Detector.result) =
        List.map
          (fun row -> (row.Report.rr_rule, row.Report.rr_captured,
                       List.length row.Report.rr_anomalies))
          r.Detector.report.Report.rows
      in
      Alcotest.(check bool) "identical reports" true
        (signature compiled = signature reparsed);
      Alcotest.(check bool) "the anomaly is present" true
        (Report.total_anomalies compiled.Detector.report = 1))

let () =
  Alcotest.run "generic-soundness"
    [
      ( "soundness",
        [
          multisig_lock_sound;
          optimistic_bytes32_sound;
          burn_mint_sound;
          aggregator_deposits_accepted;
          parsed_rules_equivalent_detection;
          QCheck_alcotest.to_alcotest prop_soundness_random_specs;
        ] );
    ]
