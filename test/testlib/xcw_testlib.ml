(* Shared scenario and generator infrastructure for the test suites.

   The monitor, fault-injection and soundness suites all randomize over
   the same space — a small two-chain bridge with mixed benign/anomalous
   traffic, qcheck generators for traffic scripts, generic-bridge specs
   and RPC fault plans — so the generators live here once instead of
   being duplicated per suite. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Chain = Xcw_chain.Chain
module Erc20 = Xcw_chain.Erc20
module Bridge = Xcw_bridge.Bridge
module Events = Xcw_bridge.Events
module Fault = Xcw_rpc.Fault
module Config = Xcw_core.Config
module Pricing = Xcw_core.Pricing
module Decoder = Xcw_core.Decoder
module Detector = Xcw_core.Detector
module Monitor = Xcw_core.Monitor
module Report = Xcw_core.Report
module Generic = Xcw_workload.Generic
module Prng = Xcw_util.Prng

let u = U256.of_int

(* ------------------------------------------------------------------ *)
(* Small two-chain multisig bridge (monitor/fault suites)              *)

let make_bridge () =
  let s =
    Chain.create ~chain_id:1 ~name:"s" ~finality_seconds:60
      ~genesis_time:1_650_000_000
  in
  let t =
    Chain.create ~chain_id:2 ~name:"t" ~finality_seconds:30
      ~genesis_time:1_650_000_000
  in
  let b =
    Bridge.create
      {
        Bridge.s_label = "mon-test";
        s_source_chain = s;
        s_target_chain = t;
        s_escrow = Bridge.Lock_unlock;
        s_acceptance =
          Bridge.Multisig
            {
              threshold = 2;
              validator_count = 3;
              compromised_keys = 0;
              enforce_source_finality = true;
            };
        s_beneficiary_repr = Events.B_address;
        s_buggy_unmapped_withdrawal = false;
      }
  in
  let m = Bridge.register_token_pair b ~name:"Tok" ~symbol:"TOK" ~decimals:18 in
  (b, m)

let monitor_input ?(label = "mon-test") b =
  let config = Config.of_bridge b in
  let pricing = Pricing.create () in
  (* Amounts in these tests are raw token units; price them 1:1. *)
  Pricing.register pricing ~chain_id:1
    ~token:(Address.to_hex (List.hd b.Bridge.mappings).Bridge.m_src_token)
    ~usd_per_token:1.0 ~decimals:0;
  Detector.default_input ~label ~plugin:Decoder.ronin_plugin ~config
    ~source_chain:b.Bridge.source.Bridge.chain
    ~target_chain:b.Bridge.target.Bridge.chain ~pricing

let user_with_tokens b m name amount =
  let user = Address.of_seed name in
  Chain.fund b.Bridge.source.Bridge.chain user (U256.of_tokens ~decimals:18 10);
  Chain.fund b.Bridge.target.Bridge.chain user (U256.of_tokens ~decimals:18 10);
  ignore
    (Chain.submit_tx b.Bridge.source.Bridge.chain
       ~from_:b.Bridge.source.Bridge.operator ~to_:m.Bridge.m_src_token
       ~input:(Erc20.mint_calldata ~to_:user ~amount)
       ());
  user

let cur b =
  ( Chain.all_blocks b.Bridge.source.Bridge.chain |> List.length,
    Chain.all_blocks b.Bridge.target.Bridge.chain |> List.length )

(* ------------------------------------------------------------------ *)
(* Traffic scripts                                                     *)

(* One step of random bridge traffic.  Ops either complete within the
   step or stay pending forever — an anomaly once alerted is never
   retracted later, which the alert-equality differential properties
   rely on. *)
let apply_op b m user i op =
  match op with
  | 0 ->
      let d =
        Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
          ~amount:(u (100 + i)) ~beneficiary:user
      in
      ignore (Bridge.complete_deposit b ~deposit:d)
  | 1 ->
      (* left pending: unmatched until (never) relayed *)
      ignore
        (Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
           ~amount:(u (200 + i)) ~beneficiary:user)
  | 2 ->
      Chain.advance_time b.Bridge.target.Bridge.chain 120;
      let w =
        Bridge.request_withdrawal b ~user ~dst_token:m.Bridge.m_dst_token
          ~amount:(u (50 + i)) ~beneficiary:user
      in
      ignore (Bridge.execute_withdrawal b ~withdrawal:w)
  | _ ->
      ignore
        (Bridge.direct_token_transfer_to_bridge b ~user
           ~src_token:m.Bridge.m_src_token ~amount:(u (10 + i)))

let arb_ops ~max_len = QCheck.(list_of_size Gen.(1 -- max_len) (int_bound 3))

(* Seed a completed deposit so the user holds destination-side tokens
   and withdrawal ops cannot revert. *)
let seed_completed_deposit b m user =
  let d0 =
    Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
      ~amount:(u 500_000) ~beneficiary:user
  in
  ignore (Bridge.complete_deposit b ~deposit:d0)

(* ------------------------------------------------------------------ *)
(* Alert and report signatures                                         *)

let alert_keys alerts =
  List.sort compare
    (List.map
       (fun (a : Monitor.alert) ->
         ( a.Monitor.al_rule,
           Report.class_name a.Monitor.al_anomaly.Report.a_class,
           a.Monitor.al_anomaly.Report.a_tx_hash ))
       alerts)

let report_signature (r : Report.t) =
  List.map
    (fun row ->
      ( row.Report.rr_rule,
        row.Report.rr_captured,
        List.sort compare
          (List.map
             (fun a -> (Report.class_name a.Report.a_class, a.Report.a_tx_hash))
             row.Report.rr_anomalies) ))
    r.Report.rows

(* ------------------------------------------------------------------ *)
(* Golden rendering                                                    *)

(* The stable text form the golden fixtures pin (test/golden/*.golden).
   Shared between the batch golden suite and the fleet suite, which
   re-renders per-lane monitor reports against the same fixtures. *)
let render_report (r : Report.t) =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "bridge: %s\n" r.Report.bridge_name;
  List.iter
    (fun row ->
      let anomalies =
        List.sort compare
          (List.map
             (fun (a : Report.anomaly) ->
               Printf.sprintf "%s(%s chain=%d $%.2f)"
                 (Report.class_name a.Report.a_class)
                 a.Report.a_tx_hash a.Report.a_chain_id a.Report.a_usd_value)
             row.Report.rr_anomalies)
      in
      Printf.bprintf buf "%s | captured=%d%s\n" row.Report.rr_rule
        row.Report.rr_captured
        (match anomalies with
        | [] -> ""
        | l -> " | " ^ String.concat " " l))
    r.Report.rows;
  Printf.bprintf buf "total_anomalies=%d cctxs=%d facts=%d\n"
    (Report.total_anomalies r)
    (List.length r.Report.cctxs)
    r.Report.total_facts;
  Buffer.contents buf

(* Attack-pack reports additionally pin the per-class attack tables:
   the hits carry ids, USD values and the human-readable detail line,
   so any drift in the attack rules or their dissection shows up. *)
let render_attack_report (r : Report.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (render_report r);
  List.iter
    (fun (ar : Report.attack_row) ->
      let hits =
        List.map
          (fun (h : Report.attack_hit) ->
            Printf.sprintf "%s(chain=%d id=%d $%.2f %s)" h.Report.ah_tx_hash
              h.Report.ah_chain_id h.Report.ah_id h.Report.ah_usd_value
              h.Report.ah_detail)
          ar.Report.ar_hits
      in
      Printf.bprintf buf "attack: %s | rule=%s | hits=%d%s\n"
        (Report.attack_class_name ar.Report.ar_class)
        ar.Report.ar_rule (List.length hits)
        (match hits with [] -> "" | l -> " | " ^ String.concat " " l))
    r.Report.attack_rows;
  Buffer.contents buf

(* Accounting (exit-bridge) reports pin the pessimistic-accounting
   tables the same way: one paper-style row per accounting class with
   the priced, leaf/epoch-tagged evidence hits. *)
let render_accounting_report (r : Report.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (render_report r);
  List.iter
    (fun (xr : Report.acc_row) ->
      let hits =
        List.map
          (fun (h : Report.attack_hit) ->
            Printf.sprintf "%s(chain=%d id=%d $%.2f %s)" h.Report.ah_tx_hash
              h.Report.ah_chain_id h.Report.ah_id h.Report.ah_usd_value
              h.Report.ah_detail)
          xr.Report.xr_hits
      in
      Printf.bprintf buf "accounting: %s | rule=%s | hits=%d%s\n"
        (Report.acc_class_name xr.Report.xr_class)
        xr.Report.xr_rule (List.length hits)
        (match hits with [] -> "" | l -> " | " ^ String.concat " " l))
    r.Report.acc_rows;
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let first_diff expected actual =
  let el = String.split_on_char '\n' expected in
  let al = String.split_on_char '\n' actual in
  let rec go i = function
    | e :: es, a :: aas ->
        if e = a then go (i + 1) (es, aas)
        else Printf.sprintf "line %d:\n  expected: %s\n  actual:   %s" i e a
    | e :: _, [] -> Printf.sprintf "line %d missing:\n  expected: %s" i e
    | [], a :: _ -> Printf.sprintf "line %d extra:\n  actual: %s" i a
    | [], [] -> "identical"
  in
  go 1 (el, al)

(* ------------------------------------------------------------------ *)
(* Stress scaling                                                      *)

(* QCheck case-count scaling for the @stress alias: [qcount n] is [n]
   normally and [n * XCW_STRESS] when that variable holds a multiplier
   (tools/stress.sh sets 10).  Suites whose properties matter at scale
   (parallel/incremental/quorum differentials) route their [~count]
   through this. *)
let qcount n =
  match Sys.getenv_opt "XCW_STRESS" with
  | Some s -> ( match int_of_string_opt s with Some m when m > 0 -> n * m | _ -> n * 10)
  | None -> n

(* ------------------------------------------------------------------ *)
(* Misc generators                                                     *)

(* Random raw bytes for hostile-input fuzzing. *)
let arb_bytes = QCheck.(string_of_size Gen.(0 -- 300))

(* Out-of-order block sequences for receipt-cursor tests: block numbers
   mostly ascending with occasional spikes, as produced by a list that
   is not strictly block-sorted. *)
let arb_block_sequence =
  QCheck.(
    map
      (fun (seed, len) ->
        let rng = Prng.create seed in
        Array.init len (fun i ->
            if Prng.int rng 4 = 0 then 1 + Prng.int rng (3 * len + 1)
            else i + 1))
      (pair (int_bound 100_000) (int_range 1 30)))

let shuffle_receipts ~seed xs =
  let rng = Prng.create seed in
  Prng.shuffle rng xs

(* Generic-bridge soundness specs (any acceptance/escrow/beneficiary
   combination over benign traffic). *)
let spec_of_quad (seed, n_erc20, n_wdr, (optimistic, bytes32)) =
  {
    Generic.default_spec with
    Generic.g_seed = seed;
    g_erc20_deposits = n_erc20;
    g_native_deposits = n_erc20 / 3;
    g_withdrawals = n_wdr;
    g_via_aggregator = n_erc20 / 5;
    g_acceptance = (if optimistic then `Optimistic else `Multisig);
    g_beneficiary_repr = (if bytes32 then Events.B_bytes32 else Events.B_address);
    g_source_finality = (if optimistic then 1800 else 78);
  }

let arb_generic_spec =
  QCheck.(
    map spec_of_quad
      (quad (int_range 1 100_000) (int_range 0 25) (int_range 0 12)
         (pair bool bool)))

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)

(* Transient fault plans: every probability strictly below 1, so a
   retrying client (or a re-polling monitor) eventually sees every
   request succeed — the precondition of the differential property.
   Probabilities are generated as integer percentages to keep the
   shrinker effective. *)
let arb_fault_plan =
  let open QCheck in
  let plan_of
      ( (p_trans, p_timeout, p_trace_timeout),
        (rate_pct, burst, lag),
        (reorg_pct, depth, outage_pct),
        cap ) =
    let probs =
      {
        Fault.p_transient = float_of_int p_trans /. 100.;
        p_timeout = float_of_int p_timeout /. 100.;
      }
    in
    {
      Fault.f_receipt = probs;
      f_transaction = probs;
      f_balance = probs;
      f_logs = probs;
      f_trace =
        {
          Fault.p_transient = float_of_int p_trans /. 100.;
          p_timeout = float_of_int p_trace_timeout /. 100.;
        };
      f_head = probs;
      f_rate_limit_prob = float_of_int rate_pct /. 100.;
      f_rate_limit_burst = burst;
      f_retry_after = 0.5;
      f_timeout_cost = 5.0;
      f_logs_range_cap = (if cap = 0 then None else Some cap);
      f_trace_outage_prob = float_of_int outage_pct /. 100.;
      f_trace_outage_len = 4;
      f_stale_head_lag = lag;
      f_reorg_prob = float_of_int reorg_pct /. 100.;
      f_reorg_depth = depth;
      f_byz_log_mutate = 0.;
      f_byz_log_drop = 0.;
      f_byz_receipt_forge = 0.;
      f_byz_trace_truncate = 0.;
      f_byz_head_equivocate = 0.;
    }
  in
  map plan_of
    (quad
       (triple (int_bound 30) (int_bound 20) (int_bound 40))
       (triple (int_bound 10) (int_range 1 4) (int_bound 3))
       (triple (int_bound 20) (int_range 1 3) (int_bound 5))
       (int_bound 5))

(* Byzantine plans: the endpoint answers every request (no availability
   faults at all) but corrupts served data with the given per-mode
   percentages — up to and including always-lying (100%).  Used as the
   liar's plan in the quorum differential property. *)
let arb_byz_plan =
  let open QCheck in
  let plan_of ((mutate, drop), (forge, trunc), equiv) =
    {
      Fault.none with
      Fault.f_byz_log_mutate = float_of_int mutate /. 100.;
      f_byz_log_drop = float_of_int drop /. 100.;
      f_byz_receipt_forge = float_of_int forge /. 100.;
      f_byz_trace_truncate = float_of_int trunc /. 100.;
      f_byz_head_equivocate = float_of_int equiv /. 100.;
    }
  in
  map plan_of
    (triple
       (pair (int_bound 100) (int_bound 100))
       (pair (int_bound 100) (int_bound 100))
       (int_bound 100))
