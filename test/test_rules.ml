(* Unit tests for the cross-chain rules over hand-constructed fact
   bases — each rule exercised with a minimal accepting example plus
   the specific violation it must reject. *)

open Xcw_datalog.Ast
module Engine = Xcw_datalog.Engine
module Rules = Xcw_core.Rules
module Facts = Xcw_core.Facts

let bridge_s = "0xbbbb000000000000000000000000000000000001"
let zero = Rules.zero_addr
let weth_s = "0xeeee000000000000000000000000000000000001"
let token_s = "0xaaaa000000000000000000000000000000000001"
let token_t = "0xaaaa000000000000000000000000000000000002"
let user = "0x1111000000000000000000000000000000000001"
let ben = "0x2222000000000000000000000000000000000002"

(* Static config facts shared by all cases: chain 1 = S, chain 2 = T. *)
let static_facts =
  [
    ("bridge_controlled_address", [ Int 1; Str bridge_s ]);
    ("bridge_controlled_address", [ Int 2; Str "0xbbbb000000000000000000000000000000000002" ]);
    ("bridge_controlled_address", [ Int 2; Str zero ]);
    ("token_mapping", [ Int 1; Int 2; Str token_s; Str token_t ]);
    ("token_mapping", [ Int 1; Int 2; Str weth_s; Str token_t ]);
    ("cctx_finality", [ Int 1; Int 100 ]);
    ("cctx_finality", [ Int 2; Int 50 ]);
    ("wrapped_native_token", [ Int 1; Str weth_s ]);
    ("wrapped_native_token", [ Int 2; Str "0xeeee000000000000000000000000000000000002" ]);
  ]

let run facts =
  let db = Engine.create_db () in
  List.iter (fun (p, t) -> Engine.add_fact db p t) (static_facts @ facts);
  ignore (Engine.run db Rules.program);
  db

let count db pred = Engine.fact_count db pred

(* Minimal valid ERC-20 deposit on S: escrow transfer at index 0,
   bridge event at index 1, non-reverting zero-value tx. *)
let sc_deposit_facts ?(tx = "0xd1") ?(ts = 1000) ?(bidx = 1) ?(tidx = 0)
    ?(status = 1) ?(value = "0") ?(did = 7) ?(amt = "500") ?(benef = ben) () =
  [
    ("sc_token_deposited",
     [ Str tx; Int bidx; Int did; Str benef; Str token_t; Str token_s; Int 2; Str amt ]);
    ("erc20_transfer", [ Str tx; Int 1; Int tidx; Str token_s; Str user; Str bridge_s; Str amt ]);
    ("transaction", [ Int ts; Int 1; Str tx; Str user; Str bridge_s; Str value; Int status; Str "0" ]);
  ]

(* Matching completion on T: mint to beneficiary + bridge event. *)
let tc_deposit_facts ?(tx = "0xd2") ?(ts = 1200) ?(did = 7) ?(amt = "500")
    ?(benef = ben) () =
  [
    ("tc_token_deposited", [ Str tx; Int 1; Int did; Str benef; Str token_t; Str amt ]);
    ("erc20_transfer", [ Str tx; Int 2; Int 0; Str token_t; Str zero; Str benef; Str amt ]);
    ("transaction",
     [ Int ts; Int 2; Str tx; Str "0xre1a000000000000000000000000000000000001";
       Str "0xbbbb000000000000000000000000000000000002"; Str "0"; Int 1; Str "0" ]);
  ]

(* ------------------------------------------------------------------ *)

let rule2_accepts_valid =
  Alcotest.test_case "rule 2 accepts a valid ERC-20 deposit" `Quick (fun () ->
      let db = run (sc_deposit_facts ()) in
      Alcotest.(check int) "captured" 1 (count db Rules.r_sc_valid_erc20_deposit))

let rule2_rejects_reverted =
  Alcotest.test_case "rule 2 rejects reverted transactions" `Quick (fun () ->
      let db = run (sc_deposit_facts ~status:0 ()) in
      Alcotest.(check int) "not captured" 0 (count db Rules.r_sc_valid_erc20_deposit))

let rule2_rejects_bad_ordering =
  Alcotest.test_case "rule 2 rejects bridge event before token event" `Quick
    (fun () ->
      let db = run (sc_deposit_facts ~bidx:0 ~tidx:1 ()) in
      Alcotest.(check int) "not captured" 0 (count db Rules.r_sc_valid_erc20_deposit))

let rule2_rejects_unmapped_token =
  Alcotest.test_case "rule 2 rejects deposits of unmapped tokens" `Quick
    (fun () ->
      let rogue = "0xcccc000000000000000000000000000000000001" in
      let facts =
        [
          ("sc_token_deposited",
           [ Str "0xd9"; Int 1; Int 7; Str ben; Str token_t; Str rogue; Int 2; Str "500" ]);
          ("erc20_transfer",
           [ Str "0xd9"; Int 1; Int 0; Str rogue; Str user; Str bridge_s; Str "500" ]);
          ("transaction",
           [ Int 1000; Int 1; Str "0xd9"; Str user; Str bridge_s; Str "0"; Int 1; Str "0" ]);
        ]
      in
      let db = run facts in
      Alcotest.(check int) "not captured" 0 (count db Rules.r_sc_valid_erc20_deposit))

let rule2_rejects_amount_mismatch =
  Alcotest.test_case "rule 2 rejects mismatched escrow amounts" `Quick
    (fun () ->
      let facts =
        [
          ("sc_token_deposited",
           [ Str "0xda"; Int 1; Int 7; Str ben; Str token_t; Str token_s; Int 2; Str "500" ]);
          ("erc20_transfer",
           [ Str "0xda"; Int 1; Int 0; Str token_s; Str user; Str bridge_s; Str "499" ]);
          ("transaction",
           [ Int 1000; Int 1; Str "0xda"; Str user; Str bridge_s; Str "0"; Int 1; Str "0" ]);
        ]
      in
      let db = run facts in
      Alcotest.(check int) "not captured" 0 (count db Rules.r_sc_valid_erc20_deposit))

let rule1_accepts_native =
  Alcotest.test_case "rule 1 accepts a valid native deposit" `Quick (fun () ->
      let facts =
        [
          ("sc_token_deposited",
           [ Str "0xn1"; Int 1; Int 3; Str ben; Str token_t; Str weth_s; Int 2; Str "42" ]);
          ("native_deposit", [ Str "0xn1"; Int 1; Int 0; Str user; Str bridge_s; Str "42" ]);
          ("transaction",
           [ Int 1000; Int 1; Str "0xn1"; Str user; Str bridge_s; Str "42"; Int 1; Str "0" ]);
        ]
      in
      let db = run facts in
      Alcotest.(check int) "captured" 1 (count db Rules.r_sc_valid_native_deposit))

let rule1_rejects_wrong_tx_value =
  Alcotest.test_case "rule 1 requires tx.value to equal the amount" `Quick
    (fun () ->
      let facts =
        [
          ("sc_token_deposited",
           [ Str "0xn2"; Int 1; Int 3; Str ben; Str token_t; Str weth_s; Int 2; Str "42" ]);
          ("native_deposit", [ Str "0xn2"; Int 1; Int 0; Str user; Str bridge_s; Str "42" ]);
          ("transaction",
           [ Int 1000; Int 1; Str "0xn2"; Str user; Str bridge_s; Str "41"; Int 1; Str "0" ]);
        ]
      in
      let db = run facts in
      Alcotest.(check int) "not captured" 0 (count db Rules.r_sc_valid_native_deposit))

let rule1_rejects_non_wrapped_token =
  Alcotest.test_case "rule 1 requires the wrapped-native token" `Quick
    (fun () ->
      let facts =
        [
          ("sc_token_deposited",
           [ Str "0xn3"; Int 1; Int 3; Str ben; Str token_t; Str token_s; Int 2; Str "42" ]);
          ("native_deposit", [ Str "0xn3"; Int 1; Int 0; Str user; Str bridge_s; Str "42" ]);
          ("transaction",
           [ Int 1000; Int 1; Str "0xn3"; Str user; Str bridge_s; Str "42"; Int 1; Str "0" ]);
        ]
      in
      let db = run facts in
      Alcotest.(check int) "not captured" 0 (count db Rules.r_sc_valid_native_deposit))

let rule3_accepts_mint =
  Alcotest.test_case "rule 3 accepts a mint-model completion on T" `Quick
    (fun () ->
      let db = run (tc_deposit_facts ()) in
      Alcotest.(check int) "captured" 1 (count db Rules.r_tc_valid_erc20_deposit))

let rule3_rejects_tx_not_to_bridge =
  Alcotest.test_case "rule 3 requires the relay tx to target the bridge"
    `Quick (fun () ->
      let facts =
        [
          ("tc_token_deposited", [ Str "0xd3"; Int 1; Int 7; Str ben; Str token_t; Str "500" ]);
          ("erc20_transfer", [ Str "0xd3"; Int 2; Int 0; Str token_t; Str zero; Str ben; Str "500" ]);
          ("transaction",
           [ Int 1200; Int 2; Str "0xd3"; Str user; Str user; Str "0"; Int 1; Str "0" ]);
        ]
      in
      let db = run facts in
      Alcotest.(check int) "not captured" 0 (count db Rules.r_tc_valid_erc20_deposit))

let rule4_links_matching_pair =
  Alcotest.test_case "rule 4 links matching S and T deposits" `Quick
    (fun () ->
      let db = run (sc_deposit_facts ~ts:1000 () @ tc_deposit_facts ~ts:1100 ()) in
      Alcotest.(check int) "one cctx" 1 (count db Rules.r_cctx_valid_deposit);
      Alcotest.(check int) "no unmatched" 0
        (count db Rules.r_unmatched_sc_erc20_deposit
        + count db Rules.r_unmatched_tc_deposit))

let rule4_enforces_finality =
  Alcotest.test_case "rule 4 rejects sub-finality completions" `Quick
    (fun () ->
      (* finality(S) = 100; completion 99 s after the deposit. *)
      let db = run (sc_deposit_facts ~ts:1000 () @ tc_deposit_facts ~ts:1099 ()) in
      Alcotest.(check int) "no cctx" 0 (count db Rules.r_cctx_valid_deposit);
      Alcotest.(check int) "finality violation witnessed" 1
        (count db Rules.r_deposit_finality_violation);
      Alcotest.(check int) "both sides unmatched" 2
        (count db Rules.r_unmatched_sc_erc20_deposit
        + count db Rules.r_unmatched_tc_deposit))

let rule4_enforces_causality =
  Alcotest.test_case "rule 4 rejects completions before the deposit" `Quick
    (fun () ->
      let db = run (sc_deposit_facts ~ts:1000 () @ tc_deposit_facts ~ts:900 ()) in
      Alcotest.(check int) "no cctx" 0 (count db Rules.r_cctx_valid_deposit);
      (* Not even a finality violation: T happened first, so the pair
         is inconsistent, not fast. *)
      Alcotest.(check int) "no finality witness" 0
        (count db Rules.r_deposit_finality_violation))

let rule4_requires_matching_ids =
  Alcotest.test_case "rule 4 requires matching deposit ids" `Quick (fun () ->
      let db =
        run (sc_deposit_facts ~did:7 ~ts:1000 () @ tc_deposit_facts ~did:8 ~ts:1200 ())
      in
      Alcotest.(check int) "no cctx" 0 (count db Rules.r_cctx_valid_deposit))

let rule4_detects_beneficiary_mismatch =
  Alcotest.test_case "beneficiary mismatch witnessed for rule 4" `Quick
    (fun () ->
      let other = "0x3333000000000000000000000000000000000003" in
      let db =
        run (sc_deposit_facts ~benef:ben ~ts:1000 () @ tc_deposit_facts ~benef:other ~ts:1200 ())
      in
      Alcotest.(check int) "no cctx" 0 (count db Rules.r_cctx_valid_deposit);
      Alcotest.(check int) "mismatch witnessed" 1
        (count db Rules.r_deposit_beneficiary_mismatch))

(* Withdrawal-side fixtures. *)
let tc_withdrawal_facts ?(tx = "0xw1") ?(ts = 2000) ?(wid = 3) ?(amt = "250")
    ?(benef = ben) () =
  [
    ("tc_token_withdrew",
     [ Str tx; Int 1; Int wid; Str benef; Str token_s; Str token_t; Int 1; Str amt ]);
    ("erc20_transfer",
     [ Str tx; Int 2; Int 0; Str token_t; Str user;
       Str "0xbbbb000000000000000000000000000000000002"; Str amt ]);
    ("transaction",
     [ Int ts; Int 2; Str tx; Str user;
       Str "0xbbbb000000000000000000000000000000000002"; Str "0"; Int 1; Str "0" ]);
  ]

let sc_withdrawal_facts ?(tx = "0xw2") ?(ts = 2100) ?(wid = 3) ?(amt = "250")
    ?(benef = ben) () =
  [
    ("sc_token_withdrew", [ Str tx; Int 1; Int wid; Str benef; Str token_s; Str amt ]);
    ("erc20_transfer", [ Str tx; Int 1; Int 0; Str token_s; Str bridge_s; Str benef; Str amt ]);
    ("transaction", [ Int ts; Int 1; Str tx; Str benef; Str bridge_s; Str "0"; Int 1; Str "0" ]);
  ]

let rule6_and_7_accept =
  Alcotest.test_case "rules 6 and 7 accept valid withdrawals" `Quick
    (fun () ->
      let db = run (tc_withdrawal_facts () @ sc_withdrawal_facts ()) in
      Alcotest.(check int) "rule 6" 1 (count db Rules.r_tc_valid_erc20_withdrawal);
      Alcotest.(check int) "rule 7" 1 (count db Rules.r_sc_valid_erc20_withdrawal))

let rule8_links_withdrawal =
  Alcotest.test_case "rule 8 links matching withdrawals across chains" `Quick
    (fun () ->
      (* finality(T) = 50; execution 100 s later. *)
      let db = run (tc_withdrawal_facts ~ts:2000 () @ sc_withdrawal_facts ~ts:2100 ()) in
      Alcotest.(check int) "one cctx" 1 (count db Rules.r_cctx_valid_withdrawal))

let rule8_finality_violation =
  Alcotest.test_case "rule 8 flags sub-finality executions" `Quick (fun () ->
      let db = run (tc_withdrawal_facts ~ts:2000 () @ sc_withdrawal_facts ~ts:2011 ()) in
      Alcotest.(check int) "no cctx" 0 (count db Rules.r_cctx_valid_withdrawal);
      Alcotest.(check int) "witnessed" 1 (count db Rules.r_withdrawal_finality_violation))

let rule8_forged_withdrawal_unmatched =
  Alcotest.test_case "a forged S withdrawal has no T correspondence" `Quick
    (fun () ->
      let db = run (sc_withdrawal_facts ~wid:99 ()) in
      Alcotest.(check int) "rule 7 captured" 1 (count db Rules.r_sc_valid_erc20_withdrawal);
      Alcotest.(check int) "unmatched on S" 1 (count db Rules.r_unmatched_sc_withdrawal);
      Alcotest.(check int) "no cctx" 0 (count db Rules.r_cctx_valid_withdrawal))

let transfer_without_event_flagged =
  Alcotest.test_case "transfer to the bridge without events is flagged"
    `Quick (fun () ->
      let facts =
        [
          ("erc20_transfer",
           [ Str "0xt1"; Int 1; Int 0; Str token_s; Str user; Str bridge_s; Str "77" ]);
          ("transaction",
           [ Int 1000; Int 1; Str "0xt1"; Str user; Str token_s; Str "0"; Int 1; Str "0" ]);
        ]
      in
      let db = run facts in
      Alcotest.(check int) "flagged" 1 (count db Rules.r_transfer_to_bridge_no_event))

let transfer_with_event_not_flagged =
  Alcotest.test_case "escrow transfers inside deposits are not flagged"
    `Quick (fun () ->
      let db = run (sc_deposit_facts ()) in
      Alcotest.(check int) "not flagged" 0 (count db Rules.r_transfer_to_bridge_no_event))

let mint_to_bridge_not_flagged =
  Alcotest.test_case "mints into the bridge (liquidity) are not flagged"
    `Quick (fun () ->
      let facts =
        [
          ("erc20_transfer",
           [ Str "0xt2"; Int 1; Int 0; Str token_s; Str zero; Str bridge_s; Str "1000000" ]);
          ("transaction",
           [ Int 1000; Int 1; Str "0xt2"; Str user; Str token_s; Str "0"; Int 1; Str "0" ]);
        ]
      in
      let db = run facts in
      Alcotest.(check int) "not flagged" 0 (count db Rules.r_transfer_to_bridge_no_event))

let event_without_escrow_flagged =
  Alcotest.test_case "bridge deposit event without escrow is flagged" `Quick
    (fun () ->
      let facts =
        [
          ("sc_token_deposited",
           [ Str "0xe1"; Int 0; Int 7; Str ben; Str token_t; Str token_s; Int 2; Str "500" ]);
          ("transaction",
           [ Int 1000; Int 1; Str "0xe1"; Str user; Str bridge_s; Str "0"; Int 1; Str "0" ]);
        ]
      in
      let db = run facts in
      Alcotest.(check int) "flagged" 1 (count db Rules.r_sc_deposit_event_no_escrow))

let tc_withdraw_no_escrow_flagged =
  Alcotest.test_case "TokenWithdrew without token movement is flagged" `Quick
    (fun () ->
      let facts =
        [
          ("tc_token_withdrew",
           [ Str "0xe2"; Int 0; Int 5; Str ben; Str token_s; Str token_t; Int 1; Str "10" ]);
          ("transaction",
           [ Int 1000; Int 2; Str "0xe2"; Str user;
             Str "0xbbbb000000000000000000000000000000000002"; Str "0"; Int 1; Str "0" ]);
        ]
      in
      let db = run facts in
      Alcotest.(check int) "flagged" 1 (count db Rules.r_tc_withdraw_event_no_escrow))

let mapping_violations_flagged =
  Alcotest.test_case "deposits/withdrawals outside the mapping are flagged"
    `Quick (fun () ->
      let rogue = "0xcccc000000000000000000000000000000000009" in
      let facts =
        [
          ("tc_token_deposited", [ Str "0xm1"; Int 1; Int 7; Str ben; Str rogue; Str "10" ]);
          ("sc_token_withdrew", [ Str "0xm2"; Int 1; Int 9; Str ben; Str rogue; Str "10" ]);
        ]
      in
      let db = run facts in
      Alcotest.(check int) "deposit violation" 1 (count db Rules.r_deposit_mapping_violation);
      Alcotest.(check int) "withdrawal violation" 1 (count db Rules.r_withdrawal_mapping_violation))

let reverted_bridge_interactions_flagged =
  Alcotest.test_case "reverted bridge calls are captured" `Quick (fun () ->
      let facts =
        [
          ("transaction",
           [ Int 1000; Int 1; Str "0xr1"; Str user; Str bridge_s; Str "0"; Int 0; Str "0" ]);
          ("transaction",
           [ Int 1000; Int 1; Str "0xr2"; Str user; Str user; Str "0"; Int 0; Str "0" ]);
        ]
      in
      let db = run facts in
      Alcotest.(check int) "only the bridge-targeting revert" 1
        (count db Rules.r_reverted_bridge_interaction))

(* Property: any valid sc+tc pair with consistent parameters and
   adequate delay is always linked by rule 4 (completeness on the happy
   path). *)
let prop_rule4_complete =
  QCheck.Test.make ~name:"rule 4 links every adequately-delayed pair"
    ~count:100
    QCheck.(triple (int_range 1 1_000_000) (int_range 100 10_000) (int_range 0 50))
    (fun (amt, delay, did) ->
      let amt = string_of_int amt in
      let db =
        run
          (sc_deposit_facts ~did ~amt ~ts:5000 ()
          @ tc_deposit_facts ~did ~amt ~ts:(5000 + delay) ())
      in
      count db Rules.r_cctx_valid_deposit = 1)

let () =
  Alcotest.run "rules"
    [
      ( "deposits",
        [
          rule2_accepts_valid;
          rule2_rejects_reverted;
          rule2_rejects_bad_ordering;
          rule2_rejects_unmapped_token;
          rule2_rejects_amount_mismatch;
          rule1_accepts_native;
          rule1_rejects_wrong_tx_value;
          rule1_rejects_non_wrapped_token;
          rule3_accepts_mint;
          rule3_rejects_tx_not_to_bridge;
          rule4_links_matching_pair;
          rule4_enforces_finality;
          rule4_enforces_causality;
          rule4_requires_matching_ids;
          rule4_detects_beneficiary_mismatch;
        ] );
      ( "withdrawals",
        [
          rule6_and_7_accept;
          rule8_links_withdrawal;
          rule8_finality_violation;
          rule8_forged_withdrawal_unmatched;
        ] );
      ( "auxiliary",
        [
          transfer_without_event_flagged;
          transfer_with_event_not_flagged;
          mint_to_bridge_not_flagged;
          event_without_escrow_flagged;
          tc_withdraw_no_escrow_flagged;
          mapping_violations_flagged;
          reverted_bridge_interactions_flagged;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_rule4_complete ]);
    ]
