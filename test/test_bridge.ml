(* Bridge simulator tests: full deposit and withdrawal flows in both
   acceptance models, the documented attack paths, and conservation
   invariants. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain
module Erc20 = Xcw_chain.Erc20
module Bridge = Xcw_bridge.Bridge
module Events = Xcw_bridge.Events
module Aggregator = Xcw_bridge.Aggregator

let u = U256.of_int
let uint256 = Alcotest.testable U256.pp U256.equal

let genesis = 1_640_995_200

let make_chains () =
  let s =
    Chain.create ~chain_id:1 ~name:"ethereum" ~finality_seconds:78
      ~genesis_time:genesis
  in
  let t =
    Chain.create ~chain_id:2020 ~name:"sidechain" ~finality_seconds:45
      ~genesis_time:genesis
  in
  (s, t)

let make_multisig_bridge () =
  let s, t = make_chains () in
  Bridge.create
    {
      Bridge.s_label = "ronin-like";
      s_source_chain = s;
      s_target_chain = t;
      s_escrow = Bridge.Lock_unlock;
      s_acceptance =
        Bridge.Multisig
          {
            threshold = 5;
            validator_count = 9;
            compromised_keys = 0;
            enforce_source_finality = true;
          };
      s_beneficiary_repr = Events.B_address;
      s_buggy_unmapped_withdrawal = true;
    }

let make_optimistic_bridge () =
  let s, t = make_chains () in
  Bridge.create
    {
      Bridge.s_label = "nomad-like";
      s_source_chain = s;
      s_target_chain = t;
      s_escrow = Bridge.Lock_unlock;
      s_acceptance =
        Bridge.Optimistic
          {
            fraud_proof_window = 1800;
            enforce_window = true;
            proof_check_broken = false;
          };
      s_beneficiary_repr = Events.B_bytes32;
      s_buggy_unmapped_withdrawal = false;
    }

let new_user b label amount_native =
  let user = Address.of_seed label in
  Chain.fund b.Bridge.source.Bridge.chain user (u amount_native);
  Chain.fund b.Bridge.target.Bridge.chain user (u amount_native);
  user

(* Give a user ERC-20 tokens on the source chain. *)
let mint_src b (m : Bridge.token_mapping) user amount =
  let src = b.Bridge.source in
  ignore
    (Chain.submit_tx src.Bridge.chain ~from_:src.Bridge.operator
       ~to_:m.Bridge.m_src_token
       ~input:(Erc20.mint_calldata ~to_:user ~amount)
       ())

let success r = r.Types.r_status = Types.Success

(* ------------------------------------------------------------------ *)
(* Happy paths                                                         *)

let erc20_deposit_flow =
  Alcotest.test_case "ERC20 deposit: lock on S, mint on T" `Quick (fun () ->
      let b = make_multisig_bridge () in
      let m = Bridge.register_token_pair b ~name:"USD Coin" ~symbol:"USDC" ~decimals:6 in
      let user = new_user b "user1" 1_000_000 in
      mint_src b m user (u 1_000);
      let d =
        Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
          ~amount:(u 400) ~beneficiary:user
      in
      Alcotest.(check bool) "deposit ok" true (success d.Bridge.d_receipt);
      Alcotest.(check (option int)) "deposit id" (Some 0) d.Bridge.d_deposit_id;
      (* Tokens locked in the bridge on S. *)
      Alcotest.(check uint256) "escrowed" (u 400)
        (Erc20.balance_of b.Bridge.source.Bridge.chain m.Bridge.m_src_token
           b.Bridge.source.Bridge.bridge_addr);
      (* Relay honestly. *)
      let r = Bridge.complete_deposit b ~deposit:d in
      Alcotest.(check bool) "relay ok" true (success r);
      Alcotest.(check uint256) "minted on T" (u 400)
        (Erc20.balance_of b.Bridge.target.Bridge.chain m.Bridge.m_dst_token user);
      (* Relay waited at least source finality. *)
      Alcotest.(check bool) "finality respected" true
        (r.Types.r_block_timestamp >= d.Bridge.d_timestamp + 78))

let native_deposit_flow =
  Alcotest.test_case "native deposit wraps and bridges" `Quick (fun () ->
      let b = make_multisig_bridge () in
      let m = Bridge.register_native_mapping b in
      let user = new_user b "user2" 10_000 in
      let d = Bridge.deposit_native b ~user ~amount:(u 2_500) ~beneficiary:user in
      Alcotest.(check bool) "deposit ok" true (success d.Bridge.d_receipt);
      (* The bridge's WETH balance backs the deposit. *)
      Alcotest.(check uint256) "bridge holds WETH" (u 2_500)
        (Erc20.balance_of b.Bridge.source.Bridge.chain b.Bridge.source.Bridge.weth
           b.Bridge.source.Bridge.bridge_addr);
      let r = Bridge.complete_deposit b ~deposit:d in
      Alcotest.(check bool) "relay ok" true (success r);
      Alcotest.(check uint256) "minted on T" (u 2_500)
        (Erc20.balance_of b.Bridge.target.Bridge.chain m.Bridge.m_dst_token user))

let withdrawal_flow =
  Alcotest.test_case "withdrawal: burn on T, unlock on S" `Quick (fun () ->
      let b = make_multisig_bridge () in
      let m = Bridge.register_token_pair b ~name:"USD Coin" ~symbol:"USDC" ~decimals:6 in
      let user = new_user b "user3" 1_000_000 in
      mint_src b m user (u 1_000);
      let d =
        Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
          ~amount:(u 800) ~beneficiary:user
      in
      ignore (Bridge.complete_deposit b ~deposit:d);
      (* Withdraw 300 back to S. *)
      let w =
        Bridge.request_withdrawal b ~user ~dst_token:m.Bridge.m_dst_token
          ~amount:(u 300) ~beneficiary:user
      in
      Alcotest.(check bool) "request ok" true (success w.Bridge.w_receipt);
      Alcotest.(check uint256) "burnt on T" (u 500)
        (Erc20.balance_of b.Bridge.target.Bridge.chain m.Bridge.m_dst_token user);
      let r = Bridge.execute_withdrawal b ~withdrawal:w in
      Alcotest.(check bool) "execute ok" true (success r);
      Alcotest.(check uint256) "received on S" (u 500)
        (* 1000 minted - 800 deposited + 300 withdrawn *)
        (Erc20.balance_of b.Bridge.source.Bridge.chain m.Bridge.m_src_token user))

let aggregator_deposit_flow =
  Alcotest.test_case "deposit via aggregator is relayed from events" `Quick
    (fun () ->
      let b = make_multisig_bridge () in
      let m = Bridge.register_token_pair b ~name:"Dai" ~symbol:"DAI" ~decimals:18 in
      let agg = Aggregator.deploy b in
      let user = new_user b "agg-user" 1_000_000 in
      mint_src b m user (u 900);
      let r =
        Aggregator.deposit_erc20 b ~aggregator:agg ~user
          ~src_token:m.Bridge.m_src_token ~amount:(u 900) ~beneficiary:user
      in
      Alcotest.(check bool) "agg deposit ok" true (success r);
      (* The transaction targets the aggregator, not the bridge. *)
      Alcotest.(check bool) "tx target is aggregator" true
        (match r.Types.r_to with
        | Some a -> Address.equal a agg
        | None -> false);
      (* Validators observe the bridge event and can relay. *)
      match Bridge.observe_deposit b r with
      | None -> Alcotest.fail "bridge event not observed"
      | Some d ->
          let rr = Bridge.complete_deposit b ~deposit:d in
          Alcotest.(check bool) "relay ok" true (success rr);
          Alcotest.(check uint256) "minted on T" (u 900)
            (Erc20.balance_of b.Bridge.target.Bridge.chain m.Bridge.m_dst_token user))

let aggregator_native_value_in_trace =
  Alcotest.test_case "aggregator native deposit: value visible in trace only"
    `Quick (fun () ->
      let b = make_multisig_bridge () in
      ignore (Bridge.register_native_mapping b);
      let agg = Aggregator.deploy b in
      let user = new_user b "agg-native-user" 50_000 in
      let r =
        Aggregator.deposit_native b ~aggregator:agg ~user ~amount:(u 7_000)
          ~beneficiary:user
      in
      Alcotest.(check bool) "ok" true (success r);
      let trace =
        Option.get (Chain.trace b.Bridge.source.Bridge.chain r.Types.r_tx_hash)
      in
      let transfers = Types.internal_value_transfers trace in
      Alcotest.(check bool) "internal value transfer to bridge present" true
        (List.exists
           (fun f ->
             Address.equal f.Types.call_to b.Bridge.source.Bridge.bridge_addr
             && U256.equal f.Types.call_value (u 7_000))
           transfers))

(* ------------------------------------------------------------------ *)
(* Enforcement                                                         *)

let multisig_finality_enforced =
  Alcotest.test_case "honest validators refuse pre-finality relays" `Quick
    (fun () ->
      let b = make_multisig_bridge () in
      let m = Bridge.register_token_pair b ~name:"USDC" ~symbol:"USDC" ~decimals:6 in
      let user = new_user b "user4" 1_000_000 in
      mint_src b m user (u 100);
      let d =
        Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
          ~amount:(u 100) ~beneficiary:user
      in
      Alcotest.check_raises "refused"
        (Bridge.Bridge_error "validators: source finality not reached")
        (fun () -> ignore (Bridge.complete_deposit b ~override_delay:10 ~deposit:d)))

let optimistic_window_enforced =
  Alcotest.test_case "fraud-proof window enforced by the contract" `Quick
    (fun () ->
      let b = make_optimistic_bridge () in
      let m = Bridge.register_token_pair b ~name:"USDC" ~symbol:"USDC" ~decimals:6 in
      let user = new_user b "user5" 1_000_000 in
      mint_src b m user (u 100);
      let d =
        Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
          ~amount:(u 100) ~beneficiary:user
      in
      (* 87-second relay (the paper's fastest observed violation) must
         revert while enforcement is on. *)
      let r = Bridge.complete_deposit b ~override_delay:87 ~deposit:d in
      Alcotest.(check bool) "reverted" true (r.Types.r_status = Types.Reverted);
      (* Disable enforcement (the Nomad bug): same relay now passes. *)
      Bridge.disable_window_enforcement b;
      let r2 = Bridge.complete_deposit b ~override_delay:90 ~deposit:d in
      Alcotest.(check bool) "accepted after bug" true (success r2))

let forged_withdrawal_requires_compromise =
  Alcotest.test_case "forged withdrawal fails until validators compromised"
    `Quick (fun () ->
      let b = make_multisig_bridge () in
      let m = Bridge.register_token_pair b ~name:"USDC" ~symbol:"USDC" ~decimals:6 in
      let victim = new_user b "victim" 1_000_000 in
      mint_src b m victim (u 100_000);
      let d =
        Bridge.deposit_erc20 b ~user:victim ~src_token:m.Bridge.m_src_token
          ~amount:(u 100_000) ~beneficiary:victim
      in
      ignore (Bridge.complete_deposit b ~deposit:d);
      let attacker = new_user b "attacker" 1_000_000 in
      let r =
        Bridge.forged_withdrawal b ~attacker ~src_token:m.Bridge.m_src_token
          ~amount:(u 100_000) ~withdrawal_id:999
      in
      Alcotest.(check bool) "rejected" true (r.Types.r_status = Types.Reverted);
      (* Compromise 5 of 9 keys (the Ronin attack). *)
      Bridge.compromise_validators b ~keys:5;
      let r2 =
        Bridge.forged_withdrawal b ~attacker ~src_token:m.Bridge.m_src_token
          ~amount:(u 100_000) ~withdrawal_id:999
      in
      Alcotest.(check bool) "accepted" true (success r2);
      Alcotest.(check uint256) "stolen" (u 100_000)
        (Erc20.balance_of b.Bridge.source.Bridge.chain m.Bridge.m_src_token attacker))

let replay_requires_broken_proof =
  Alcotest.test_case "copy-paste replay only passes with broken proofs" `Quick
    (fun () ->
      let b = make_optimistic_bridge () in
      let m = Bridge.register_token_pair b ~name:"USDC" ~symbol:"USDC" ~decimals:6 in
      let user = new_user b "user6" 1_000_000 in
      mint_src b m user (u 10_000);
      (* Build liquidity on S via a real deposit + withdrawal cycle. *)
      let d =
        Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
          ~amount:(u 10_000) ~beneficiary:user
      in
      ignore (Bridge.complete_deposit b ~deposit:d);
      let w =
        Bridge.request_withdrawal b ~user ~dst_token:m.Bridge.m_dst_token
          ~amount:(u 1_000) ~beneficiary:user
      in
      ignore (Bridge.execute_withdrawal b ~withdrawal:w);
      let attacker = new_user b "replayer" 1_000_000 in
      (* Replay the same withdrawal id with the attacker as beneficiary. *)
      let r =
        Bridge.forged_withdrawal b ~attacker ~src_token:m.Bridge.m_src_token
          ~amount:(u 1_000)
          ~withdrawal_id:(Option.get w.Bridge.w_withdrawal_id)
      in
      Alcotest.(check bool) "rejected" true (r.Types.r_status = Types.Reverted);
      Bridge.break_proof_check b;
      let r2 =
        Bridge.forged_withdrawal b ~attacker ~src_token:m.Bridge.m_src_token
          ~amount:(u 1_000)
          ~withdrawal_id:(Option.get w.Bridge.w_withdrawal_id)
      in
      Alcotest.(check bool) "accepted via broken proof" true (success r2))

let paused_bridge_rejects =
  Alcotest.test_case "paused bridge rejects deposits" `Quick (fun () ->
      let b = make_multisig_bridge () in
      let m = Bridge.register_token_pair b ~name:"USDC" ~symbol:"USDC" ~decimals:6 in
      let user = new_user b "user7" 1_000_000 in
      mint_src b m user (u 100);
      Bridge.pause b;
      let d =
        Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
          ~amount:(u 100) ~beneficiary:user
      in
      Alcotest.(check bool) "reverted" true
        (d.Bridge.d_receipt.Types.r_status = Types.Reverted))

(* ------------------------------------------------------------------ *)
(* Anomaly injection paths                                             *)

let direct_transfer_to_bridge =
  Alcotest.test_case "direct transfer reaches bridge without bridge event"
    `Quick (fun () ->
      let b = make_multisig_bridge () in
      let m = Bridge.register_token_pair b ~name:"USDC" ~symbol:"USDC" ~decimals:6 in
      let user = new_user b "careless" 1_000_000 in
      mint_src b m user (u 500);
      let r =
        Bridge.direct_token_transfer_to_bridge b ~user
          ~src_token:m.Bridge.m_src_token ~amount:(u 500)
      in
      Alcotest.(check bool) "ok" true (success r);
      (* Exactly one log: the ERC-20 Transfer.  No bridge event. *)
      Alcotest.(check int) "one log" 1 (List.length r.Types.r_logs);
      Alcotest.(check bool) "log from token" true
        (Address.equal (List.hd r.Types.r_logs).Types.log_address
           m.Bridge.m_src_token))

let right_padded_beneficiary =
  Alcotest.test_case "right-padded beneficiary reaches the wrong address"
    `Quick (fun () ->
      let b = make_optimistic_bridge () in
      let m = Bridge.register_token_pair b ~name:"Dai" ~symbol:"DAI" ~decimals:18 in
      let user = new_user b "pad-user" 1_000_000 in
      mint_src b m user (u 10);
      let d =
        Bridge.deposit_erc20 ~beneficiary_padding:`Right b ~user
          ~src_token:m.Bridge.m_src_token ~amount:(u 10) ~beneficiary:user
      in
      Alcotest.(check bool) "accepted by bridge" true (success d.Bridge.d_receipt);
      let r = Bridge.complete_deposit b ~deposit:d in
      Alcotest.(check bool) "relay ok" true (success r);
      (* The tokens were minted to the contract-extracted (wrong)
         address: last 20 bytes of a right-padded field are mostly
         zeros — NOT the user's address. *)
      Alcotest.(check uint256) "user got nothing" U256.zero
        (Erc20.balance_of b.Bridge.target.Bridge.chain m.Bridge.m_dst_token user))

let unmapped_withdrawal_emits_without_transfer =
  Alcotest.test_case
    "withdrawal of unmapped token emits event without token movement" `Quick
    (fun () ->
      let b = make_multisig_bridge () in
      let user = new_user b "unmapped-user" 1_000_000 in
      (* A token that exists on T but is not mapped by the bridge. *)
      let rogue =
        Erc20.deploy b.Bridge.target.Bridge.chain ~from_:user ~name:"Rogue"
          ~symbol:"RGE" ~decimals:18 ~owner:user
      in
      ignore
        (Chain.submit_tx b.Bridge.target.Bridge.chain ~from_:user ~to_:rogue
           ~input:(Erc20.mint_calldata ~to_:user ~amount:(u 100))
           ());
      let w =
        Bridge.request_withdrawal b ~user ~dst_token:rogue ~amount:(u 100)
          ~beneficiary:user
      in
      Alcotest.(check bool) "accepted" true (success w.Bridge.w_receipt);
      (* Only the bridge's TokenWithdrew event: no Transfer logs. *)
      Alcotest.(check int) "single log" 1
        (List.length w.Bridge.w_receipt.Types.r_logs);
      Alcotest.(check uint256) "tokens did not move" (u 100)
        (Erc20.balance_of b.Bridge.target.Bridge.chain rogue user))

(* ------------------------------------------------------------------ *)
(* Conservation properties                                             *)

let prop_lock_unlock_conservation =
  QCheck.Test.make
    ~name:"lock-unlock: bridge escrow always covers minted supply on T"
    ~count:25
    QCheck.(pair (int_bound 100000) (list_of_size Gen.(1 -- 12) (pair (int_range 1 500) bool)))
    (fun (seed, ops) ->
      let b = make_multisig_bridge () in
      let m = Bridge.register_token_pair b ~name:"T" ~symbol:"T" ~decimals:18 in
      let user = new_user b (Printf.sprintf "prop-user-%d" seed) 100_000_000 in
      mint_src b m user (u 1_000_000);
      let deposited = ref [] in
      List.iter
        (fun (amount, is_deposit) ->
          if is_deposit then begin
            let d =
              Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
                ~amount:(u amount) ~beneficiary:user
            in
            if d.Bridge.d_deposit_id <> None then begin
              ignore (Bridge.complete_deposit b ~deposit:d);
              deposited := amount :: !deposited
            end
          end
          else begin
            let on_t =
              Erc20.balance_of b.Bridge.target.Bridge.chain m.Bridge.m_dst_token user
            in
            if U256.ge on_t (u amount) then begin
              let w =
                Bridge.request_withdrawal b ~user ~dst_token:m.Bridge.m_dst_token
                  ~amount:(u amount) ~beneficiary:user
              in
              if w.Bridge.w_withdrawal_id <> None then
                ignore (Bridge.execute_withdrawal b ~withdrawal:w)
            end
          end)
        ops;
      let escrow =
        Erc20.balance_of b.Bridge.source.Bridge.chain m.Bridge.m_src_token
          b.Bridge.source.Bridge.bridge_addr
      in
      let minted =
        Erc20.total_supply b.Bridge.target.Bridge.chain m.Bridge.m_dst_token
      in
      U256.equal escrow minted)

let prop_deposit_ids_sequential =
  QCheck.Test.make ~name:"deposit ids are sequential" ~count:20
    QCheck.(int_range 1 10)
    (fun n ->
      let b = make_multisig_bridge () in
      let m = Bridge.register_token_pair b ~name:"T" ~symbol:"T" ~decimals:18 in
      let user = new_user b (Printf.sprintf "seq-user-%d" n) 100_000_000 in
      mint_src b m user (u 1_000_000);
      let ids =
        List.init n (fun _ ->
            let d =
              Bridge.deposit_erc20 b ~user ~src_token:m.Bridge.m_src_token
                ~amount:(u 10) ~beneficiary:user
            in
            Option.get d.Bridge.d_deposit_id)
      in
      ids = List.init n Fun.id)

let () =
  Alcotest.run "bridge"
    [
      ( "flows",
        [
          erc20_deposit_flow;
          native_deposit_flow;
          withdrawal_flow;
          aggregator_deposit_flow;
          aggregator_native_value_in_trace;
        ] );
      ( "enforcement",
        [
          multisig_finality_enforced;
          optimistic_window_enforced;
          forged_withdrawal_requires_compromise;
          replay_requires_broken_proof;
          paused_bridge_rejects;
        ] );
      ( "anomalies",
        [
          direct_transfer_to_bridge;
          right_padded_beneficiary;
          unmapped_withdrawal_emits_without_transfer;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_lock_unlock_conservation; prop_deposit_ids_sequential ] );
    ]
