(* Regression net for the interned, columnar tuple representation.

   The engine now packs every constant into an interned int
   ([Ast.packed]) and joins over [int array] tuples; the boxed
   [const array] path survives as [Boxed], a sequential reference
   implementation.  This suite pins the properties the representation
   change must preserve:

   - packing is lossless and the symbol table canonical (same string,
     same id — packed equality is structural equality);
   - output byte-stability does not depend on fact insertion order
     (Hashtbl iteration order must never leak into dump_facts, facts,
     or reports);
   - the shard hash spreads interned keys evenly — raw packed ints are
     all-odd (strings) or all-even (small ints), exactly the shape a
     low-bit mask degrades on;
   - symbol ids are stable across incremental polls and reorg rewinds,
     so a rewind + re-derive yields byte-identical reports;
   - differentially: the interned engine agrees with the boxed one on
     random programs — same relations, same derived counts, same TSV
     bytes — at every worker count. *)

open Xcw_datalog
open Ast
module U256 = Xcw_uint256.Uint256
module Fault = Xcw_rpc.Fault
module Facts = Xcw_core.Facts
module Detector = Xcw_core.Detector
module Monitor = Xcw_core.Monitor
module Report = Xcw_core.Report
module T = Xcw_testlib

let u = U256.of_int
let qcount = T.qcount

(* ------------------------------------------------------------------ *)
(* Packing and symbol-table basics                                     *)

let pack_roundtrip =
  Alcotest.test_case "pack/unpack is the identity on consts" `Quick (fun () ->
      let consts =
        [
          Int 0; Int 1; Int (-1); Int 123_456_789; Int (-987_654);
          Int max_packed_int; Int (-max_packed_int); Str ""; Str "0x00";
          Str "hello\tworld"; Str (String.make 100 'x');
        ]
      in
      List.iter
        (fun c ->
          let p = pack c in
          let label = Format.asprintf "%a" pp_const c in
          if unpack p <> c then Alcotest.failf "roundtrip failed for %s" label;
          Alcotest.(check bool) (label ^ " tag")
            (match c with Int _ -> true | Str _ -> false)
            (packed_is_int p))
        consts;
      (match pack_int (max_packed_int + 1) with
      | _ -> Alcotest.fail "expected Invalid_argument above max_packed_int"
      | exception Invalid_argument _ -> ());
      match pack_int (-max_packed_int - 1) with
      | _ -> Alcotest.fail "expected Invalid_argument below -max_packed_int"
      | exception Invalid_argument _ -> ())

let symtab_canonical =
  Alcotest.test_case "interning is canonical: same string, same id" `Quick
    (fun () ->
      let a = Symtab.intern "canonical-probe" in
      let b = Symtab.intern "canonical-probe" in
      Alcotest.(check int) "same id" a b;
      Alcotest.(check string) "decodes back" "canonical-probe"
        (Symtab.to_string a);
      (* Packed equality is structural equality — distinct strings get
         distinct odd codes, equal strings the same one. *)
      Alcotest.(check bool) "equal strings, equal packed" true
        (pack_string "canonical-probe" = pack_string "canonical-probe");
      Alcotest.(check bool) "distinct strings, distinct packed" true
        (pack_string "canonical-probe" <> pack_string "canonical-probe-2"))

(* ------------------------------------------------------------------ *)
(* Satellite: insertion-order independence of every output surface      *)

(* The feature-complete differential program from the parallel suite:
   joins, negation, comparisons, recursion. *)
let diff_rules =
  [
    atom "two_hop" [ v "x"; v "z" ]
    <-- [
          pos (atom "edge" [ v "x"; v "y" ]);
          pos (atom "edge" [ v "y"; v "z" ]);
        ];
    atom "forward" [ v "x"; v "y" ]
    <-- [ pos (atom "edge" [ v "x"; v "y" ]); ev "y" >! ev "x" ];
    atom "one_way" [ v "x"; v "y" ]
    <-- [
          pos (atom "edge" [ v "x"; v "y" ]);
          neg (atom "edge" [ v "y"; v "x" ]);
        ];
    atom "path" [ v "x"; v "y" ] <-- [ pos (atom "edge" [ v "x"; v "y" ]) ];
    atom "path" [ v "x"; v "z" ]
    <-- [ pos (atom "edge" [ v "x"; v "y" ]); pos (atom "path" [ v "y"; v "z" ]) ];
  ]

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let rec go i =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "xcw-intern-%d-%d" !tmp_counter i)
    in
    if Sys.file_exists d then go (i + 1)
    else begin
      Sys.mkdir d 0o700;
      d
    end
  in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* File names plus exact bytes of a dump directory, then clean up. *)
let collect_dump dump dir =
  dump ~dir;
  let files = Sys.readdir dir in
  Array.sort compare files;
  let buf = Buffer.create 4096 in
  Array.iter
    (fun f ->
      Buffer.add_string buf f;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (read_file (Filename.concat dir f));
      Sys.remove (Filename.concat dir f))
    files;
  Sys.rmdir dir;
  Buffer.contents buf

let engine_dump_bytes db = collect_dump (Engine.dump_facts db) (fresh_dir ())
let boxed_dump_bytes db = collect_dump (Boxed.dump_facts db) (fresh_dir ())

(* Facts with shared and distinct strings across several relations —
   enough aliasing that a leaked hash order would show. *)
let order_facts =
  List.concat_map
    (fun i ->
      let h = Printf.sprintf "0xhash%03d" i in
      let addr = Printf.sprintf "0xaddr%02d" (i mod 7) in
      [
        ("edge", [ Int (i mod 9); Int ((i * 5) mod 9) ]);
        ("seen", [ Str h; Int i; Str addr ]);
        ("owner", [ Str addr; Str (Printf.sprintf "user-%d" (i mod 3)) ]);
      ])
    (List.init 40 Fun.id)

let load_and_run facts =
  let db = Engine.create_db () in
  List.iter (fun (p, t) -> Engine.add_fact db p t) facts;
  ignore (Engine.run db { rules = diff_rules });
  db

let insertion_order_independent =
  Alcotest.test_case
    "different load orders produce identical dump_facts bytes" `Quick
    (fun () ->
      let orders =
        [
          order_facts;
          List.rev order_facts;
          (* An interleaving that groups by relation, stressing index
             build order. *)
          List.stable_sort (fun (p1, _) (p2, _) -> compare p1 p2) order_facts;
        ]
      in
      match List.map (fun o -> load_and_run o) orders with
      | [] -> assert false
      | ref_db :: rest ->
          let ref_bytes = engine_dump_bytes ref_db in
          let ref_facts p = Engine.facts ref_db p in
          List.iteri
            (fun i db ->
              if engine_dump_bytes db <> ref_bytes then
                Alcotest.failf "dump bytes diverged for order %d" (i + 1);
              List.iter
                (fun p ->
                  if Engine.facts db p <> ref_facts p then
                    Alcotest.failf "Engine.facts %S diverged for order %d" p
                      (i + 1))
                [ "edge"; "seen"; "owner"; "path"; "two_hop"; "one_way" ])
            rest)

(* ------------------------------------------------------------------ *)
(* Satellite: shard distribution on interned keys                       *)

(* Raw packed values are all-odd for strings and all-even for ints; a
   shard function that just masks low bits collapses either family onto
   half (or fewer) of the shards.  On a uniform workload no shard may
   hold more than 2x the mean. *)
let check_distribution name keys =
  let counts = Array.make Engine.Relation.nshards 0 in
  List.iter
    (fun key ->
      let s = Engine.Relation.shard_of_key key in
      counts.(s) <- counts.(s) + 1)
    keys;
  let total = List.length keys in
  let mean = float_of_int total /. float_of_int Engine.Relation.nshards in
  Array.iteri
    (fun i c ->
      if float_of_int c > 2.0 *. mean then
        Alcotest.failf "%s: shard %d holds %d keys (mean %.1f)" name i c mean)
    counts

let shard_distribution =
  Alcotest.test_case "no shard holds >2x the mean on uniform workloads"
    `Quick (fun () ->
      let n = 4096 in
      (* All-string single-cell keys: every packed value odd. *)
      check_distribution "string keys"
        (List.init n (fun i ->
             [| pack_string (Printf.sprintf "0x%040x" i) |]));
      (* All-int single-cell keys: every packed value even; sequential
         ints are the worst case for a low-bit mask. *)
      check_distribution "int keys"
        (List.init n (fun i -> [| pack_int i |]));
      (* Strided ints: the classic mask-degenerate workload. *)
      check_distribution "strided int keys"
        (List.init n (fun i -> [| pack_int (i * 16) |]));
      (* Two-cell composite keys as join probes produce them. *)
      check_distribution "composite keys"
        (List.init n (fun i ->
             [| pack_string (Printf.sprintf "tok-%d" (i mod 64)); pack_int i |])))

(* ------------------------------------------------------------------ *)
(* Satellite: symbol-id stability across polls and reorg rewinds        *)

let symtab_stable_under_rewind =
  Alcotest.test_case
    "reorg rewind + re-derive: same symbol ids, identical report bytes"
    `Quick (fun () ->
      let plan =
        { Fault.none with Fault.f_reorg_prob = 0.5; f_reorg_depth = 3 }
      in
      let b, m = T.make_bridge () in
      let input = T.monitor_input b in
      let user = T.user_with_tokens b m "intern-reorg" (u 1_000_000) in
      T.seed_completed_deposit b m user;
      let clean = Monitor.create input in
      let faulty =
        Monitor.create
          {
            input with
            Detector.i_source_fault = Some plan;
            i_target_fault = Some plan;
            i_rpc_seed = 7;
          }
      in
      List.iteri
        (fun i op ->
          T.apply_op b m user i op;
          let sb, tb = T.cur b in
          ignore (Monitor.poll clean ~source_block:sb ~target_block:tb);
          ignore (Monitor.poll faulty ~source_block:sb ~target_block:tb))
        [ 0; 1; 2; 3 ];
      (* Snapshot the packed encoding of everything decoded so far. *)
      let packed_snapshot mon =
        List.map Facts.to_packed (Monitor.cached_facts mon)
      in
      let before = packed_snapshot faulty in
      let sb, tb = T.cur b in
      (* Drain until at least one reorg has been signalled AND the
         monitor is synced again — each poll is another chance for the
         plan to fire a reorg, so this terminates fast. *)
      let polls = ref 0 in
      let settled () =
        let h = Monitor.health faulty in
        h.Monitor.h_synced && h.Monitor.h_reorgs > 0
      in
      while (not (settled ())) && !polls < 300 do
        incr polls;
        ignore (Monitor.poll faulty ~source_block:sb ~target_block:tb)
      done;
      ignore (Monitor.poll clean ~source_block:sb ~target_block:tb);
      Alcotest.(check bool) "faulty monitor synced" true
        (Monitor.health faulty).Monitor.h_synced;
      Alcotest.(check bool) "reorg signals were handled" true
        ((Monitor.health faulty).Monitor.h_reorgs > 0);
      (* Id stability: re-packing the same facts after rewinds and
         re-derivation yields byte-identical int tuples — the symbol
         table never reassigned an id. *)
      let after = packed_snapshot faulty in
      List.iter
        (fun (pred, tuple) ->
          match
            List.find_opt
              (fun (p, t) -> p = pred && t = tuple)
              after
          with
          | Some _ -> ()
          | None ->
              Alcotest.failf
                "packed tuple of %s changed across the rewind" pred)
        before;
      (* Report bytes: rewind + re-derive converges to the clean run. *)
      match (Monitor.last_report clean, Monitor.last_report faulty) with
      | Some rc, Some rf ->
          Alcotest.(check string) "report bytes identical"
            (Report.to_string rc) (Report.to_string rf)
      | _ -> Alcotest.fail "missing report")

(* ------------------------------------------------------------------ *)
(* Satellite: qcheck differential, boxed vs interned                    *)

(* Random programs: a random non-empty subset of a safe rule pool over
   random edge facts.  Every pool member is range-restricted, so any
   subset is a valid program; subsets vary the stratum structure (with
   and without recursion, negation, comparisons). *)
let rule_pool = Array.of_list diff_rules

let gen_program =
  QCheck.Gen.(
    list_size
      (1 -- Array.length rule_pool)
      (int_bound (Array.length rule_pool - 1))
    >|= fun picks ->
    List.sort_uniq compare picks |> List.map (Array.get rule_pool))

let gen_edges =
  QCheck.Gen.(list_size (0 -- 40) (pair (int_bound 12) (int_bound 12)))

let arb_case = QCheck.make QCheck.Gen.(pair gen_program gen_edges)

let head_preds rules =
  List.sort_uniq compare ("edge" :: List.map (fun r -> r.head.pred) rules)

let boxed_run rules edges =
  let db = Boxed.create_db () in
  List.iter (fun (a, b) -> Boxed.add_fact db "edge" [ Int a; Int b ]) edges;
  let derived = Boxed.run db { rules } in
  let sign =
    List.map
      (fun p -> (p, Boxed.facts db p))
      (head_preds rules)
  in
  (sign, derived, boxed_dump_bytes db)

let interned_run ~ndomains rules edges =
  let db = Engine.create_db () in
  List.iter (fun (a, b) -> Engine.add_fact db "edge" [ Int a; Int b ]) edges;
  let stats = Engine.run ~ndomains db { rules } in
  let sign =
    List.map
      (fun p -> (p, Engine.facts db p))
      (head_preds rules)
  in
  (sign, stats.Engine.tuples_derived, engine_dump_bytes db)

(* Both engines' signatures are [(pred, const array list) list];
   compare on lists to keep polymorphic equality structural. *)
let normalise (sign, derived, bytes) =
  (List.map (fun (p, ts) -> (p, List.map Array.to_list ts)) sign, derived, bytes)

let prop_boxed_vs_interned =
  QCheck.Test.make
    ~name:
      "boxed = interned on random programs (relations, counts, TSV bytes) \
       at --jobs 1/2/4"
    ~count:(qcount 40) arb_case
    (fun (rules, edges) ->
      let reference = normalise (boxed_run rules edges) in
      List.for_all
        (fun k -> normalise (interned_run ~ndomains:k rules edges) = reference)
        [ 1; 2; 4 ])

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "interned"
    [
      ("packing", [ pack_roundtrip; symtab_canonical ]);
      ("order", [ insertion_order_independent ]);
      ("shards", [ shard_distribution ]);
      ("symtab-stability", [ symtab_stable_under_rewind ]);
      ( "differential",
        List.map QCheck_alcotest.to_alcotest [ prop_boxed_vs_interned ] );
    ]
