(* Datalog engine tests: joins, recursion (transitive closure),
   stratified negation, comparison built-ins, safety rejection, and the
   semi-naive ≡ naive equivalence property. *)

open Xcw_datalog
open Ast

let run_program ?naive facts rules =
  let db = Engine.create_db () in
  List.iter (fun (pred, tuple) -> Engine.add_fact db pred tuple) facts;
  ignore (Engine.run ?naive db { rules });
  db

let sorted_facts db pred = List.sort compare (Engine.facts db pred)

let tuple_list =
  Alcotest.testable
    (fun fmt l ->
      Format.fprintf fmt "%a"
        (Format.pp_print_list (fun f arr ->
             Format.fprintf f "(%a)"
               (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",") pp_const)
               (Array.to_list arr)))
        l)
    ( = )

(* ------------------------------------------------------------------ *)
(* Basic derivation                                                    *)

let simple_join =
  Alcotest.test_case "binary join" `Quick (fun () ->
      let facts =
        [
          ("parent", [ Str "a"; Str "b" ]);
          ("parent", [ Str "b"; Str "c" ]);
          ("parent", [ Str "x"; Str "y" ]);
        ]
      in
      let rules =
        [
          atom "grandparent" [ v "x"; v "z" ]
          <-- [ pos (atom "parent" [ v "x"; v "y" ]); pos (atom "parent" [ v "y"; v "z" ]) ];
        ]
      in
      let db = run_program facts rules in
      Alcotest.check tuple_list "grandparent"
        [ [| Str "a"; Str "c" |] ]
        (sorted_facts db "grandparent"))

let constants_in_body =
  Alcotest.test_case "constants filter in body atoms" `Quick (fun () ->
      let facts =
        [ ("edge", [ Str "a"; Int 1 ]); ("edge", [ Str "b"; Int 2 ]) ]
      in
      let rules =
        [ atom "one" [ v "x" ] <-- [ pos (atom "edge" [ v "x"; i 1 ]) ] ]
      in
      let db = run_program facts rules in
      Alcotest.check tuple_list "one" [ [| Str "a" |] ] (sorted_facts db "one"))

let transitive_closure =
  Alcotest.test_case "recursive transitive closure" `Quick (fun () ->
      let facts =
        [
          ("edge", [ Str "a"; Str "b" ]);
          ("edge", [ Str "b"; Str "c" ]);
          ("edge", [ Str "c"; Str "d" ]);
        ]
      in
      let rules =
        [
          atom "path" [ v "x"; v "y" ] <-- [ pos (atom "edge" [ v "x"; v "y" ]) ];
          atom "path" [ v "x"; v "z" ]
          <-- [ pos (atom "edge" [ v "x"; v "y" ]); pos (atom "path" [ v "y"; v "z" ]) ];
        ]
      in
      let db = run_program facts rules in
      Alcotest.(check int) "6 paths" 6 (List.length (Engine.facts db "path")))

let negation_difference =
  Alcotest.test_case "stratified negation computes set difference" `Quick
    (fun () ->
      let facts =
        [
          ("all", [ Str "a" ]);
          ("all", [ Str "b" ]);
          ("all", [ Str "c" ]);
          ("bad", [ Str "b" ]);
        ]
      in
      let rules =
        [
          atom "good" [ v "x" ]
          <-- [ pos (atom "all" [ v "x" ]); neg (atom "bad" [ v "x" ]) ];
        ]
      in
      let db = run_program facts rules in
      Alcotest.check tuple_list "good"
        [ [| Str "a" |]; [| Str "c" |] ]
        (sorted_facts db "good"))

let negation_of_derived =
  Alcotest.test_case "negation of a derived predicate (two strata)" `Quick
    (fun () ->
      let facts =
        [
          ("deposit", [ Str "tx1"; Int 100 ]);
          ("deposit", [ Str "tx2"; Int 200 ]);
          ("claim", [ Str "tx1" ]);
        ]
      in
      let rules =
        [
          (* matched txs, then unmatched = deposits with no claim;
             mirrors the paper's "unmatched events" analysis. *)
          atom "matched" [ v "t" ]
          <-- [ pos (atom "deposit" [ v "t"; any () ]); pos (atom "claim" [ v "t" ]) ];
          atom "unmatched" [ v "t" ]
          <-- [ pos (atom "deposit" [ v "t"; any () ]); neg (atom "matched" [ v "t" ]) ];
        ]
      in
      let db = run_program facts rules in
      Alcotest.check tuple_list "unmatched" [ [| Str "tx2" |] ]
        (sorted_facts db "unmatched"))

let arithmetic_comparison =
  Alcotest.test_case "comparison with arithmetic (finality rule shape)" `Quick
    (fun () ->
      (* src_ts + finality <= dst_ts, as in CCTX_ValidDeposit. *)
      let facts =
        [
          ("src_evt", [ Str "d1"; Int 1000 ]);
          ("src_evt", [ Str "d2"; Int 2000 ]);
          ("dst_evt", [ Str "d1"; Int 3000 ]);
          ("dst_evt", [ Str "d2"; Int 2050 ]);
          ("finality", [ Int 1800 ]);
        ]
      in
      let rules =
        [
          atom "valid" [ v "id" ]
          <-- [
                pos (atom "src_evt" [ v "id"; v "ts1" ]);
                pos (atom "dst_evt" [ v "id"; v "ts2" ]);
                pos (atom "finality" [ v "f" ]);
                ev "ts1" +! ev "f" <=! ev "ts2";
              ];
        ]
      in
      let db = run_program facts rules in
      Alcotest.check tuple_list "valid" [ [| Str "d1" |] ] (sorted_facts db "valid"))

let string_inequality =
  Alcotest.test_case "string equality/inequality constraints" `Quick (fun () ->
      let facts =
        [ ("p", [ Str "a"; Str "a" ]); ("p", [ Str "a"; Str "b" ]) ]
      in
      let rules =
        [
          atom "same" [ v "x"; v "y" ]
          <-- [ pos (atom "p" [ v "x"; v "y" ]); ev "x" =! ev "y" ];
          atom "diff" [ v "x"; v "y" ]
          <-- [ pos (atom "p" [ v "x"; v "y" ]); ev "x" <>! ev "y" ];
        ]
      in
      let db = run_program facts rules in
      Alcotest.(check int) "same" 1 (List.length (Engine.facts db "same"));
      Alcotest.(check int) "diff" 1 (List.length (Engine.facts db "diff")))

let event_ordering_rule =
  Alcotest.test_case "event index ordering (rule check 6 shape)" `Quick
    (fun () ->
      let facts =
        [
          (* (tx, bridge_evt_idx) and (tx, token_evt_idx) *)
          ("bridge_evt", [ Str "t1"; Int 2 ]);
          ("token_evt", [ Str "t1"; Int 1 ]);
          ("bridge_evt", [ Str "t2"; Int 1 ]);
          ("token_evt", [ Str "t2"; Int 2 ]);
        ]
      in
      let rules =
        [
          atom "ordered" [ v "t" ]
          <-- [
                pos (atom "bridge_evt" [ v "t"; v "bi" ]);
                pos (atom "token_evt" [ v "t"; v "ti" ]);
                ev "bi" >! ev "ti";
              ];
        ]
      in
      let db = run_program facts rules in
      Alcotest.check tuple_list "ordered" [ [| Str "t1" |] ] (sorted_facts db "ordered"))

let repeated_variable_in_atom =
  Alcotest.test_case "repeated variable matches only the diagonal" `Quick
    (fun () ->
      let facts =
        [
          ("p", [ Str "a"; Str "a" ]);
          ("p", [ Str "a"; Str "b" ]);
          ("p", [ Str "b"; Str "b" ]);
        ]
      in
      let rules =
        [ atom "diag" [ v "x" ] <-- [ pos (atom "p" [ v "x"; v "x" ]) ] ]
      in
      let db = run_program facts rules in
      Alcotest.check tuple_list "diag"
        [ [| Str "a" |]; [| Str "b" |] ]
        (sorted_facts db "diag"))

let constants_in_negation =
  Alcotest.test_case "negated atoms may mix constants and bound vars" `Quick
    (fun () ->
      let facts =
        [
          ("node", [ Str "a" ]);
          ("node", [ Str "b" ]);
          ("tag", [ Str "a"; Int 1 ]);
        ]
      in
      let rules =
        [
          atom "untagged1" [ v "x" ]
          <-- [ pos (atom "node" [ v "x" ]); neg (atom "tag" [ v "x"; i 1 ]) ];
        ]
      in
      let db = run_program facts rules in
      Alcotest.check tuple_list "untagged1" [ [| Str "b" |] ]
        (sorted_facts db "untagged1"))

let backtracking_restores_bindings =
  Alcotest.test_case "failed branches do not leak bindings" `Quick (fun () ->
      (* A join where the first candidate for the second literal fails
         and a later one succeeds: if the trail rollback were broken,
         stale bindings would block the later match. *)
      let facts =
        [
          ("edge", [ Str "a"; Str "b" ]);
          ("edge", [ Str "a"; Str "c" ]);
          ("goal", [ Str "c" ]);
        ]
      in
      let rules =
        [
          atom "reaches_goal" [ v "x" ]
          <-- [ pos (atom "edge" [ v "x"; v "y" ]); pos (atom "goal" [ v "y" ]) ];
        ]
      in
      let db = run_program facts rules in
      Alcotest.check tuple_list "reaches" [ [| Str "a" |] ]
        (sorted_facts db "reaches_goal"))

let head_constants =
  Alcotest.test_case "constants in rule heads" `Quick (fun () ->
      let facts = [ ("p", [ Str "a" ]) ] in
      let rules =
        [ atom "labeled" [ v "x"; s "found"; i 7 ] <-- [ pos (atom "p" [ v "x" ]) ] ]
      in
      let db = run_program facts rules in
      Alcotest.check tuple_list "labeled"
        [ [| Str "a"; Str "found"; Int 7 |] ]
        (sorted_facts db "labeled"))

let duplicate_rule_results_deduplicated =
  Alcotest.test_case "duplicate derivations collapse to one tuple" `Quick
    (fun () ->
      let facts =
        [ ("p", [ Str "a"; Int 1 ]); ("p", [ Str "a"; Int 2 ]) ]
      in
      let rules =
        [ atom "q" [ v "x" ] <-- [ pos (atom "p" [ v "x"; any () ]) ] ]
      in
      let db = run_program facts rules in
      Alcotest.(check int) "one tuple" 1 (Engine.fact_count db "q"))

let dump_facts_roundtrip =
  Alcotest.test_case "dump_facts writes one TSV line per tuple" `Quick
    (fun () ->
      let db = run_program
          [ ("edge", [ Str "a"; Int 1 ]); ("edge", [ Str "b"; Int 2 ]) ]
          [ atom "n" [ v "x" ] <-- [ pos (atom "edge" [ v "x"; any () ]) ] ]
      in
      let dir = Filename.concat (Filename.get_temp_dir_name ()) "xcw-facts-test" in
      Engine.dump_facts db ~dir;
      let lines path =
        let ic = open_in path in
        let rec go acc =
          match input_line ic with
          | l -> go (l :: acc)
          | exception End_of_file ->
              close_in ic;
              List.rev acc
        in
        go []
      in
      let edges = lines (Filename.concat dir "edge.facts") in
      Alcotest.(check int) "2 edge rows" 2 (List.length edges);
      Alcotest.(check bool) "tab separated" true
        (List.for_all (fun l -> String.contains l '\t') edges);
      let nodes = lines (Filename.concat dir "n.facts") in
      Alcotest.(check int) "derived relation dumped too" 2 (List.length nodes))

let dump_facts_escapes_and_mkdirs =
  Alcotest.test_case "dump_facts escapes TSV metacharacters, creates parents"
    `Quick (fun () ->
      (* A tab or newline inside a string constant must not corrupt the
         Souffle TSV framing: every tuple stays on one line with
         exactly arity-1 unescaped tabs. *)
      let db = Engine.create_db () in
      Engine.add_fact db "memo" [ Str "with\ttab"; Str "with\nnewline" ];
      Engine.add_fact db "memo" [ Str "back\\slash"; Str "plain" ];
      let dir =
        Filename.concat
          (Filename.concat (Filename.get_temp_dir_name ()) "xcw-esc-test")
          "nested/deeper"
      in
      Engine.dump_facts db ~dir;
      let ic = open_in (Filename.concat dir "memo.facts") in
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file ->
            close_in ic;
            List.rev acc
      in
      let lines = go [] in
      Alcotest.(check int) "one line per tuple" 2 (List.length lines);
      List.iter
        (fun l ->
          let tabs = String.fold_left (fun n c -> if c = '\t' then n + 1 else n) 0 l in
          Alcotest.(check int) "exactly one field separator" 1 tabs)
        lines;
      Alcotest.(check bool) "tab escaped" true
        (List.exists
           (fun l -> String.length l >= 2 && String.sub l 0 4 = "with")
           lines))

(* ------------------------------------------------------------------ *)
(* Incremental evaluation                                              *)

(* Transitive closure, shared with the property tests below. *)
let tc_rules =
  [
    atom "path" [ v "x"; v "y" ] <-- [ pos (atom "edge" [ v "x"; v "y" ]) ];
    atom "path" [ v "x"; v "z" ]
    <-- [ pos (atom "edge" [ v "x"; v "y" ]); pos (atom "path" [ v "y"; v "z" ]) ];
  ]

let edges_to_facts edges =
  List.map (fun (a, b) -> ("edge", [ Int a; Int b ])) edges

let incremental_inserts_recursive =
  Alcotest.test_case "run_incremental extends a recursive closure" `Quick
    (fun () ->
      (* Feed the edge relation in three batches through one persistent
         db; the final closure must equal a from-scratch run. *)
      let db = Engine.create_db () in
      let program = { rules = tc_rules } in
      let batches =
        [
          [ (1, 2); (2, 3) ];
          [ (3, 4) ];
          [ (0, 1); (4, 5) ];
        ]
      in
      List.iter
        (fun batch ->
          List.iter
            (fun (a, b) -> ignore (Engine.insert_fact db "edge" [ Int a; Int b ]))
            batch;
          ignore (Engine.run_incremental db program))
        batches;
      let reference =
        run_program (edges_to_facts (List.concat batches)) tc_rules
      in
      Alcotest.check tuple_list "same closure"
        (sorted_facts reference "path")
        (sorted_facts db "path"))

let incremental_retracts_nonmonotonic =
  Alcotest.test_case "run_incremental retracts stale negation-derived tuples"
    `Quick (fun () ->
      (* unmatched(x) :- req(x), !ack(x).  Adding ack(a) later must
         REMOVE unmatched(a) — the non-monotonic case a pure delta pass
         cannot handle; the engine re-derives the relation in place. *)
      let rules =
        [
          atom "unmatched" [ v "x" ]
          <-- [ pos (atom "req" [ v "x" ]); neg (atom "ack" [ v "x" ]) ];
        ]
      in
      let db = Engine.create_db () in
      let program = { rules } in
      ignore (Engine.insert_fact db "req" [ Str "a" ]);
      ignore (Engine.insert_fact db "req" [ Str "b" ]);
      ignore (Engine.run_incremental db program);
      Alcotest.check tuple_list "both unmatched initially"
        [ [| Str "a" |]; [| Str "b" |] ]
        (sorted_facts db "unmatched");
      ignore (Engine.insert_fact db "ack" [ Str "a" ]);
      ignore (Engine.run_incremental db program);
      Alcotest.check tuple_list "a retracted after its ack arrives"
        [ [| Str "b" |] ]
        (sorted_facts db "unmatched");
      (* EDB relations must survive the retraction pass untouched. *)
      Alcotest.(check int) "req preserved" 2 (Engine.fact_count db "req"))

let incremental_skips_unchanged_strata =
  Alcotest.test_case "run_incremental leaves untouched strata alone" `Quick
    (fun () ->
      (* Two independent strata; facts added only to the first must not
         re-evaluate the second's rule. *)
      let rules =
        [
          atom "q" [ v "x" ] <-- [ pos (atom "p" [ v "x" ]) ];
          atom "t" [ v "x" ] <-- [ pos (atom "s" [ v "x" ]) ];
        ]
      in
      let db = Engine.create_db () in
      let program = { rules } in
      ignore (Engine.insert_fact db "p" [ Str "a" ]);
      ignore (Engine.insert_fact db "s" [ Str "z" ]);
      ignore (Engine.run_incremental db program);
      ignore (Engine.insert_fact db "p" [ Str "b" ]);
      let stats = Engine.run_incremental db program in
      Alcotest.(check int) "only p's stratum ran" 1 stats.Engine.rules_evaluated;
      Alcotest.check tuple_list "q extended"
        [ [| Str "a" |]; [| Str "b" |] ]
        (sorted_facts db "q");
      Alcotest.check tuple_list "t intact" [ [| Str "z" |] ]
        (sorted_facts db "t");
      (* A no-op increment does no work at all. *)
      let stats2 = Engine.run_incremental db program in
      Alcotest.(check int) "idle poll evaluates nothing" 0
        stats2.Engine.rules_evaluated)

let derived_predicates_tracked =
  Alcotest.test_case "derived vs EDB predicates are distinguished" `Quick
    (fun () ->
      let db = Engine.create_db () in
      ignore (Engine.insert_fact db "p" [ Str "a" ]);
      ignore
        (Engine.run db { rules = [ atom "q" [ v "x" ] <-- [ pos (atom "p" [ v "x" ]) ] ] });
      Alcotest.(check (list string)) "only q is derived" [ "q" ]
        (Engine.derived_predicates db))

(* ------------------------------------------------------------------ *)
(* Error handling                                                      *)

let unsafe_head_rejected =
  Alcotest.test_case "unsafe head variable rejected" `Quick (fun () ->
      let rules = [ atom "q" [ v "x" ] <-- [ neg (atom "p" [ v "x" ]) ] ] in
      try
        ignore (run_program [ ("p", [ Str "a" ]) ] rules);
        Alcotest.fail "expected Unsafe_rule"
      with Engine.Unsafe_rule _ -> ())

let unstratifiable_rejected =
  Alcotest.test_case "negation cycle rejected" `Quick (fun () ->
      let rules =
        [
          atom "p" [ v "x" ]
          <-- [ pos (atom "base" [ v "x" ]); neg (atom "q" [ v "x" ]) ];
          atom "q" [ v "x" ]
          <-- [ pos (atom "base" [ v "x" ]); neg (atom "p" [ v "x" ]) ];
        ]
      in
      try
        ignore (run_program [ ("base", [ Str "a" ]) ] rules);
        Alcotest.fail "expected Not_stratifiable"
      with Engine.Not_stratifiable _ -> ())

let arity_mismatch_rejected =
  Alcotest.test_case "relation arity mismatch rejected" `Quick (fun () ->
      let db = Engine.create_db () in
      Engine.add_fact db "p" [ Str "a" ];
      try
        Engine.add_fact db "p" [ Str "a"; Str "b" ];
        Alcotest.fail "expected Invalid_argument"
      with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

(* Random edge relations; check semi-naive and naive agree on
   transitive closure, and that the closure is actually transitive. *)
let gen_edges =
  QCheck.Gen.(list_size (0 -- 40) (pair (int_bound 12) (int_bound 12)))

let prop_seminaive_equals_naive =
  QCheck.Test.make ~name:"semi-naive = naive on random graphs" ~count:(Xcw_testlib.qcount 60)
    (QCheck.make gen_edges)
    (fun edges ->
      let facts = edges_to_facts edges in
      let db1 = run_program facts tc_rules in
      let db2 = run_program ~naive:true facts tc_rules in
      sorted_facts db1 "path" = sorted_facts db2 "path")

let prop_closure_transitive =
  QCheck.Test.make ~name:"derived path relation is transitively closed"
    ~count:(Xcw_testlib.qcount 60)
    (QCheck.make gen_edges)
    (fun edges ->
      let db = run_program (edges_to_facts edges) tc_rules in
      let paths = Engine.facts db "path" in
      let mem a b = List.exists (fun t -> t = [| Int a; Int b |]) paths in
      List.for_all
        (fun t ->
          match t with
          | [| Int a; Int b |] ->
              List.for_all
                (fun t2 ->
                  match t2 with
                  | [| Int b'; Int c |] -> b <> b' || mem a c
                  | _ -> true)
                paths
          | _ -> true)
        paths)

let prop_monotone =
  QCheck.Test.make ~name:"adding facts never removes derived tuples" ~count:(Xcw_testlib.qcount 60)
    (QCheck.pair (QCheck.make gen_edges) (QCheck.make gen_edges))
    (fun (e1, e2) ->
      let db1 = run_program (edges_to_facts e1) tc_rules in
      let db2 = run_program (edges_to_facts (e1 @ e2)) tc_rules in
      let p1 = sorted_facts db1 "path" and p2 = sorted_facts db2 "path" in
      List.for_all (fun t -> List.mem t p2) p1)

let prop_incremental_equals_batch =
  QCheck.Test.make
    ~name:"incremental batches = one-shot run on random graphs" ~count:(Xcw_testlib.qcount 60)
    (QCheck.pair (QCheck.make gen_edges) (QCheck.make gen_edges))
    (fun (e1, e2) ->
      let db = Engine.create_db () in
      let program = { rules = tc_rules } in
      List.iter
        (fun (p, t) -> ignore (Engine.insert_fact db p t))
        (edges_to_facts e1);
      ignore (Engine.run_incremental db program);
      List.iter
        (fun (p, t) -> ignore (Engine.insert_fact db p t))
        (edges_to_facts e2);
      ignore (Engine.run_incremental db program);
      let reference = run_program (edges_to_facts (e1 @ e2)) tc_rules in
      sorted_facts db "path" = sorted_facts reference "path")

let prop_idempotent =
  QCheck.Test.make ~name:"running rules twice adds nothing new" ~count:(Xcw_testlib.qcount 60)
    (QCheck.make gen_edges)
    (fun edges ->
      let db = Engine.create_db () in
      List.iter (fun (p, t) -> Engine.add_fact db p t) (edges_to_facts edges);
      ignore (Engine.run db { rules = tc_rules });
      let n1 = Engine.fact_count db "path" in
      let stats = Engine.run db { rules = tc_rules } in
      let n2 = Engine.fact_count db "path" in
      n1 = n2 && stats.Engine.tuples_derived = 0)

let () =
  Alcotest.run "datalog"
    [
      ( "evaluation",
        [
          simple_join;
          constants_in_body;
          transitive_closure;
          negation_difference;
          negation_of_derived;
          arithmetic_comparison;
          string_inequality;
          event_ordering_rule;
          repeated_variable_in_atom;
          constants_in_negation;
          backtracking_restores_bindings;
          head_constants;
          duplicate_rule_results_deduplicated;
          dump_facts_roundtrip;
          dump_facts_escapes_and_mkdirs;
        ] );
      ( "incremental",
        [
          incremental_inserts_recursive;
          incremental_retracts_nonmonotonic;
          incremental_skips_unchanged_strata;
          derived_predicates_tracked;
        ] );
      ( "errors",
        [ unsafe_head_rejected; unstratifiable_rejected; arity_mismatch_rejected ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_seminaive_equals_naive;
            prop_closure_transitive;
            prop_monotone;
            prop_idempotent;
            prop_incremental_equals_batch;
          ] );
    ]
