(* Exit-bridge property net (DESIGN.md §15).

   Four layers, one suite:
   - Merkle: every inclusion proof verifies against its root; any
     single-bit mutation of leaf, path or index fails verification
     (1000 qcheck cases); append-then-root is deterministic,
     insertion-order-sensitive, and differentially equal to a naive
     list-of-leaves reference.
   - Accounting invariants: benign exit scenarios derive zero
     accounting-violation tuples; each of the five attack classes fires
     exactly its class rule on exactly the injected transactions while
     the benign twin stays silent.
   - Robustness: the accounting verdict is identical across {clean,
     moderate RPC faults, 3-endpoint/2-quorum with one Byzantine liar}
     x {--jobs 1, --jobs 4}.
   - Fixtures: per-class accounting reports pinned to committed
     goldens (test/golden/accounting_<class>.golden). *)

module Merkle = Xcw_merkle.Merkle
module Fault = Xcw_rpc.Fault
module Pool = Xcw_rpc.Pool
module Engine = Xcw_datalog.Engine
module Detector = Xcw_core.Detector
module Decoder = Xcw_core.Decoder
module Report = Xcw_core.Report
module Rules = Xcw_core.Rules
module Bridge = Xcw_bridge.Bridge
module Scenario = Xcw_workload.Scenario
module Exit_bridge = Xcw_workload.Exit_bridge
module T = Xcw_testlib

(* ------------------------------------------------------------------ *)
(* Merkle properties                                                    *)

let keccak s = Xcw_keccak.Keccak.digest s

let arb_leaves =
  QCheck.(
    map
      (fun (depth_seed, n_seed, salt) ->
        let depth = 1 + (depth_seed mod 6) in
        let n = 1 + (n_seed mod (1 lsl depth)) in
        let leaves = List.init n (fun i -> keccak (Printf.sprintf "%d-%d" salt i)) in
        (depth, leaves))
      (triple (int_bound 1000) (int_bound 1000) (int_bound 100_000)))

let build_tree depth leaves =
  let t = Merkle.create ~depth () in
  List.iter (fun l -> ignore (Merkle.add_leaf t l)) leaves;
  t

let prop_proofs_verify =
  QCheck.Test.make ~name:"every inclusion proof verifies against the root"
    ~count:(T.qcount 100) arb_leaves (fun (depth, leaves) ->
      let t = build_tree depth leaves in
      let root = Merkle.root t in
      List.for_all
        (fun i ->
          Merkle.verify ~depth ~root ~index:i ~leaf:(Merkle.leaf t i)
            (Merkle.proof t i))
        (List.init (Merkle.size t) Fun.id))

(* Single-bit mutation of leaf, one path sibling, or the index: the
   1000-case acceptance property. *)
let flip_bit_at s ~byte ~bit =
  let b = Bytes.of_string s in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
  Bytes.to_string b

let arb_mutation =
  QCheck.(
    map
      (fun ((depth, leaves), (which, byte_seed, bit_seed)) ->
        (depth, leaves, which, byte_seed, bit_seed))
      (pair arb_leaves (triple (int_bound 2) (int_bound 1000) (int_bound 7))))

let prop_mutation_fails =
  QCheck.Test.make
    ~name:"any single-bit mutation of leaf, path or index fails verification"
    ~count:(T.qcount 1000) arb_mutation
    (fun (depth, leaves, which, byte_seed, bit_seed) ->
      let t = build_tree depth leaves in
      let root = Merkle.root t in
      let index = byte_seed mod Merkle.size t in
      let leaf = Merkle.leaf t index in
      let proof = Merkle.proof t index in
      let bit = bit_seed in
      match which with
      | 0 ->
          (* mutate the leaf *)
          let leaf' = flip_bit_at leaf ~byte:(byte_seed mod 32) ~bit in
          not (Merkle.verify ~depth ~root ~index ~leaf:leaf' proof)
      | 1 ->
          (* mutate one proof sibling *)
          let k = byte_seed mod depth in
          let proof' =
            List.mapi
              (fun i s ->
                if i = k then flip_bit_at s ~byte:(bit_seed * 3 mod 32) ~bit
                else s)
              proof
          in
          not (Merkle.verify ~depth ~root ~index ~leaf proof')
      | _ ->
          (* mutate the index (flip one of its depth bits) *)
          let index' = index lxor (1 lsl (bit_seed mod depth)) in
          index' = index
          || not (Merkle.verify ~depth ~root ~index:index' ~leaf proof))

let prop_differential_root =
  QCheck.Test.make
    ~name:"incremental root equals the naive list-of-leaves reference"
    ~count:(T.qcount 100) arb_leaves (fun (depth, leaves) ->
      Merkle.root (build_tree depth leaves) = Merkle.root_of_leaves ~depth leaves)

let prop_deterministic_order_sensitive =
  QCheck.Test.make
    ~name:"append-then-root is deterministic and insertion-order-sensitive"
    ~count:(T.qcount 100) arb_leaves (fun (depth, leaves) ->
      let r1 = Merkle.root (build_tree depth leaves) in
      let r2 = Merkle.root (build_tree depth leaves) in
      let swapped =
        match leaves with
        | a :: b :: rest when a <> b -> Some (b :: a :: rest)
        | _ -> None
      in
      r1 = r2
      &&
      match swapped with
      | None -> true
      | Some leaves' -> Merkle.root (build_tree depth leaves') <> r1)

let merkle_units =
  Alcotest.test_case "tree and leaf-hash guards raise Invalid_argument" `Quick
    (fun () ->
      let raises f =
        match f () with
        | _ -> false
        | exception Invalid_argument _ -> true
      in
      Alcotest.(check bool) "depth 0 rejected" true
        (raises (fun () -> Merkle.create ~depth:0 ()));
      Alcotest.(check bool) "depth 31 rejected" true
        (raises (fun () -> Merkle.create ~depth:(Merkle.max_depth + 1) ()));
      let t = Merkle.create ~depth:1 () in
      Alcotest.(check bool) "short leaf rejected" true
        (raises (fun () -> Merkle.add_leaf t "short"));
      ignore (Merkle.add_leaf t (keccak "a"));
      ignore (Merkle.add_leaf t (keccak "b"));
      Alcotest.(check bool) "full tree rejects appends" true
        (raises (fun () -> Merkle.add_leaf t (keccak "c")));
      Alcotest.(check bool) "proof out of range rejected" true
        (raises (fun () -> Merkle.proof t 2));
      Alcotest.(check bool) "negative leaf-hash field rejected" true
        (raises (fun () ->
             Merkle.leaf_hash ~origin_chain_id:1 ~dest_chain_id:2 ~token:"0xab"
               ~amount:(-1) ~nonce:0));
      (* verify never raises: junk shapes are just [false] *)
      Alcotest.(check bool) "wrong sibling count is false" false
        (Merkle.verify ~depth:1 ~root:(Merkle.root t) ~index:0
           ~leaf:(keccak "a") []);
      Alcotest.(check bool) "out-of-range index is false" false
        (Merkle.verify ~depth:1 ~root:(Merkle.root t) ~index:5
           ~leaf:(keccak "a") (Merkle.proof t 0)))

(* ------------------------------------------------------------------ *)
(* Detector plumbing                                                    *)

let exit_input (b : Scenario.built) =
  Detector.default_input ~label:"exit" ~plugin:Decoder.ronin_plugin
    ~config:b.Scenario.config
    ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
    ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
    ~pricing:b.Scenario.pricing

let detect (b : Scenario.built) = Detector.run (exit_input b)

let acc_hits_txs (r : Report.t) cls =
  match Report.acc_row r cls with
  | None -> Alcotest.failf "missing accounting row for %s" (Report.acc_class_slug cls)
  | Some row ->
      List.sort compare
        (List.map (fun h -> h.Report.ah_tx_hash) row.Report.xr_hits)

let accounting_relations =
  [
    Rules.r_acc_outflow_violation;
    Rules.r_acc_outflow_tx;
    Rules.r_acc_forged_exit_proof;
    Rules.r_acc_stale_root_claim;
    Rules.r_acc_root_divergence;
    Rules.r_acc_slashing_evasion;
  ]

(* ------------------------------------------------------------------ *)
(* Benign soundness                                                     *)

let benign_zero_tuples =
  Alcotest.test_case
    "benign exit lane derives zero accounting-violation tuples" `Quick
    (fun () ->
      let result = detect (Exit_bridge.build_benign Exit_bridge.default_base) in
      List.iter
        (fun rel ->
          Alcotest.(check int)
            (rel ^ " is empty")
            0
            (Engine.fact_count result.Detector.db rel))
        accounting_relations;
      let r = result.Detector.report in
      Alcotest.(check int) "zero accounting hits" 0 (Report.total_acc_hits r);
      Alcotest.(check int) "zero attack hits" 0 (Report.total_attack_hits r);
      Alcotest.(check int) "zero anomalies" 0 (Report.total_anomalies r);
      (* The lane itself is live: exit relations are populated and the
         aggregates summed them. *)
      Alcotest.(check bool) "exit deposits decoded" true
        (Engine.fact_count result.Detector.db Xcw_core.Facts.r_exit_deposit > 0);
      Alcotest.(check bool) "deposit totals aggregated" true
        (Engine.fact_count result.Detector.db Rules.r_exit_deposit_total > 0))

let arb_base =
  QCheck.(
    map
      (fun (seed, validators, epochs, dpe) ->
        {
          Exit_bridge.default_base with
          Exit_bridge.b_seed = seed;
          b_validators = 2 + validators;
          b_epochs = 2 + epochs;
          b_deposits_per_epoch = 2 + dpe;
          b_base =
            {
              Exit_bridge.default_base.Exit_bridge.b_base with
              Xcw_workload.Generic.g_seed = seed;
            };
        })
      (quad (int_range 1 50_000) (int_bound 2) (int_bound 2) (int_bound 3)))

let prop_benign_sound =
  QCheck.Test.make
    ~name:"benign exit scenarios derive zero accounting tuples (any spec)"
    ~count:(T.qcount 4) arb_base (fun base ->
      let result = detect (Exit_bridge.build_benign base) in
      List.for_all
        (fun rel -> Engine.fact_count result.Detector.db rel = 0)
        accounting_relations
      && Report.total_acc_hits result.Detector.report = 0)

(* ------------------------------------------------------------------ *)
(* Per-class exactness                                                  *)

let check_exactness cls () =
  let inj = Exit_bridge.build (Exit_bridge.default_spec cls) in
  let r = (detect inj.Exit_bridge.inj_built).Detector.report in
  Alcotest.(check (list string))
    (Report.acc_class_slug cls ^ ": rule flags exactly the injected txs")
    inj.Exit_bridge.inj_attack_txs (acc_hits_txs r cls);
  List.iter
    (fun other ->
      if other <> cls then
        (* Slashing evasion's setup signatures legitimately surface as
           root divergence — exactly those signature txs, nothing else. *)
        let expected =
          if cls = Report.Slashing_evasion && other = Report.Root_divergence
          then inj.Exit_bridge.inj_divergence_txs
          else []
        in
        Alcotest.(check (list string))
          (Report.acc_class_slug other ^ " row for a "
          ^ Report.acc_class_slug cls ^ " injection")
          expected (acc_hits_txs r other))
    Report.acc_classes;
  (* The attack-pack rows and the plain anomaly rows stay silent: these
     five classes are invisible to the pre-existing rules. *)
  Alcotest.(check int) "zero attack-pack hits" 0 (Report.total_attack_hits r);
  Alcotest.(check int) "zero plain anomalies" 0 (Report.total_anomalies r);
  Alcotest.(check bool) "injection is non-trivial" true
    (inj.Exit_bridge.inj_attack_txs <> []);
  match Report.acc_row r cls with
  | None -> assert false
  | Some row ->
      List.iter
        (fun h ->
          Alcotest.(check bool) "hit carries an id" true (h.Report.ah_id >= 0);
          Alcotest.(check bool) "hit is priced" true
            (h.Report.ah_usd_value >= 0.))
        row.Report.xr_hits

let check_benign_twin cls () =
  let spec = Exit_bridge.default_spec cls in
  let r = (detect (Exit_bridge.benign_twin spec)).Detector.report in
  Alcotest.(check int)
    (Report.acc_class_slug cls ^ " twin: zero accounting hits")
    0 (Report.total_acc_hits r);
  Alcotest.(check int)
    (Report.acc_class_slug cls ^ " twin: zero anomalies")
    0 (Report.total_anomalies r)

let undeposited_claim =
  Alcotest.test_case
    "claim of an undeposited token fires the no-deposit outflow clause"
    `Quick (fun () ->
      let b = Exit_bridge.build_undeposited_claim Exit_bridge.default_base in
      let result = detect b in
      Alcotest.(check bool) "outflow violation derived" true
        (Engine.fact_count result.Detector.db Rules.r_acc_outflow_violation > 0);
      let r = result.Detector.report in
      match Report.acc_row r Report.Exit_net_outflow with
      | None -> Alcotest.fail "missing net-outflow row"
      | Some row ->
          Alcotest.(check int) "exactly the ghost claim" 1
            (List.length row.Report.xr_hits))

(* ------------------------------------------------------------------ *)
(* Robustness matrix                                                    *)

(* Report signature including the accounting rows; timings and fact
   totals excluded (fault plans cost simulated time by design). *)
let signature (r : Report.t) =
  let acc_row (xr : Report.acc_row) =
    ( Report.acc_class_name xr.Report.xr_class,
      xr.Report.xr_rule,
      List.map
        (fun h ->
          ( h.Report.ah_tx_hash,
            h.Report.ah_chain_id,
            h.Report.ah_id,
            h.Report.ah_usd_value,
            h.Report.ah_detail ))
        xr.Report.xr_hits )
  in
  ( r.Report.bridge_name,
    T.report_signature r,
    List.map acc_row r.Report.acc_rows,
    Report.total_attack_hits r )

let variants input =
  let quorum_faults = [ None; None; Some Fault.byzantine ] in
  [
    ("clean", input);
    ( "moderate-faults",
      {
        input with
        Detector.i_source_fault = Some Fault.moderate;
        i_target_fault = Some Fault.moderate;
      } );
    ( "quorum-3-2-one-liar",
      {
        input with
        Detector.i_endpoints = 3;
        i_quorum = 2;
        i_source_endpoint_faults = quorum_faults;
        i_target_endpoint_faults = quorum_faults;
      } );
  ]

let check_matrix cls () =
  let inj = Exit_bridge.build (Exit_bridge.default_spec cls) in
  let input = exit_input inj.Exit_bridge.inj_built in
  let reference = ref None in
  List.iter
    (fun (vname, vinput) ->
      List.iter
        (fun jobs ->
          let result =
            Detector.run { vinput with Detector.i_ndomains = jobs }
          in
          let s = signature result.Detector.report in
          (match !reference with
          | None -> reference := Some s
          | Some s0 ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s/--jobs %d matches the clean run"
                   (Report.acc_class_slug cls) vname jobs)
                true (s = s0));
          if vname = "quorum-3-2-one-liar" then
            match result.Detector.pool_health with
            | None -> Alcotest.fail "expected pool health from a quorum run"
            | Some (sh, th) ->
                Alcotest.(check (list int))
                  "source pool names the liar" [ 2 ] sh.Pool.ph_suspects;
                Alcotest.(check (list int))
                  "target pool names the liar" [ 2 ] th.Pool.ph_suspects)
        [ 1; 4 ])
    (variants input)

(* ------------------------------------------------------------------ *)
(* Generator soundness                                                  *)

let arb_spec =
  QCheck.(
    map
      (fun (base, cls_ix) ->
        {
          Exit_bridge.e_class = List.nth Report.acc_classes (cls_ix mod 5);
          e_base = base;
        })
      (pair arb_base (int_bound 4)))

let prop_twin_differential =
  QCheck.Test.make
    ~name:"attacked scenario = benign twin + exactly the injected txs"
    ~count:(T.qcount 5) arb_spec (fun spec ->
      let inj = Exit_bridge.build spec in
      let twin_txs =
        Xcw_workload.Attacks.all_txs (Exit_bridge.benign_twin spec)
      in
      let attacked_txs =
        Xcw_workload.Attacks.all_txs inj.Exit_bridge.inj_built
      in
      let module S = Set.Make (String) in
      let twin = S.of_list twin_txs
      and injected = S.of_list inj.Exit_bridge.inj_txs in
      S.equal (S.of_list attacked_txs) (S.union twin injected)
      && S.is_empty (S.inter twin injected)
      && S.subset (S.of_list inj.Exit_bridge.inj_attack_txs) injected
      && S.subset (S.of_list inj.Exit_bridge.inj_divergence_txs) injected
      && inj.Exit_bridge.inj_attack_txs <> [])

let prop_deterministic =
  QCheck.Test.make ~name:"exit scenarios are deterministic per spec"
    ~count:(T.qcount 3) arb_spec (fun spec ->
      let a = Exit_bridge.build spec and b = Exit_bridge.build spec in
      Xcw_workload.Attacks.all_txs a.Exit_bridge.inj_built
      = Xcw_workload.Attacks.all_txs b.Exit_bridge.inj_built
      && a.Exit_bridge.inj_attack_txs = b.Exit_bridge.inj_attack_txs)

(* ------------------------------------------------------------------ *)
(* Spec guards                                                          *)

let spec_guards =
  Alcotest.test_case "out-of-range exit specs raise instead of clamping"
    `Quick (fun () ->
      let build b = ignore (Exit_bridge.build_benign b) in
      let base = Exit_bridge.default_base in
      List.iter
        (fun bad ->
          match build bad with
          | () -> Alcotest.fail "out-of-range spec accepted"
          | exception Invalid_argument _ -> ())
        [
          { base with Exit_bridge.b_validators = 1 };
          { base with Exit_bridge.b_epochs = 1 };
          { base with Exit_bridge.b_deposits_per_epoch = 1 };
          { base with Exit_bridge.b_stake = 0 };
          { base with Exit_bridge.b_tree_depth = 0 };
          { base with Exit_bridge.b_tree_depth = Merkle.max_depth + 1 };
          (* 2 epochs x 3 deposits + reserve exceed a depth-3 tree *)
          { base with Exit_bridge.b_tree_depth = 3 };
        ])

(* ------------------------------------------------------------------ *)
(* Golden fixtures                                                      *)

let accounting_report ?(quorum = false) ?(jobs = 1) cls () =
  let inj = Exit_bridge.build (Exit_bridge.default_spec cls) in
  let input = exit_input inj.Exit_bridge.inj_built in
  let input =
    if quorum then
      let faults = [ None; None; Some Fault.byzantine ] in
      {
        input with
        Detector.i_endpoints = 3;
        i_quorum = 2;
        i_source_endpoint_faults = faults;
        i_target_endpoint_faults = faults;
      }
    else input
  in
  (Detector.run { input with Detector.i_ndomains = jobs }).Detector.report

(* In write mode only the clean render is written; the quorum and
   jobs-4 renders are read-mode reuse checks against the same fixture
   (shape borrowed from test_golden.ml). *)
let check_golden ~name report =
  let rendered = T.render_accounting_report (report ()) in
  match Sys.getenv_opt "XCW_GOLDEN_WRITE" with
  | Some dir ->
      let path = Filename.concat dir (name ^ ".golden") in
      let oc = open_out_bin path in
      output_string oc rendered;
      close_out oc;
      Printf.printf "wrote %s\n%!" path
  | None ->
      let path = Filename.concat "golden" (name ^ ".golden") in
      if not (Sys.file_exists path) then
        Alcotest.failf "missing fixture %s (regenerate with XCW_GOLDEN_WRITE)"
          path
      else
        let expected = T.read_file path in
        if expected <> rendered then
          Alcotest.failf "report drifted from %s at %s" path
            (T.first_diff expected rendered)

let check_reuse ~name report =
  match Sys.getenv_opt "XCW_GOLDEN_WRITE" with
  | Some _ -> ()
  | None -> check_golden ~name report

let golden_cases =
  List.concat_map
    (fun cls ->
      let slug = Report.acc_class_slug cls in
      let name = "accounting_" ^ slug in
      [
        Alcotest.test_case
          (Printf.sprintf "accounting report %s matches its fixture" slug)
          `Quick
          (fun () -> check_golden ~name (accounting_report cls));
        Alcotest.test_case
          (Printf.sprintf "quorum render of %s reuses the fixture" slug)
          `Quick
          (fun () -> check_reuse ~name (accounting_report ~quorum:true cls));
        Alcotest.test_case
          (Printf.sprintf "--jobs 4 render of %s reuses the fixture" slug)
          `Quick
          (fun () -> check_reuse ~name (accounting_report ~jobs:4 cls));
      ])
    Report.acc_classes

(* ------------------------------------------------------------------ *)

let exactness_cases =
  List.map
    (fun cls ->
      Alcotest.test_case
        (Report.acc_class_slug cls ^ ": rule fires on exactly the injected txs")
        `Quick (check_exactness cls))
    Report.acc_classes

let twin_cases =
  List.map
    (fun cls ->
      Alcotest.test_case
        (Report.acc_class_slug cls ^ ": benign twin is clean")
        `Quick (check_benign_twin cls))
    Report.acc_classes

let matrix_cases =
  List.map
    (fun cls ->
      Alcotest.test_case
        (Report.acc_class_slug cls ^ ": fault/quorum/parallel matrix agrees")
        `Quick (check_matrix cls))
    Report.acc_classes

let () =
  Alcotest.run "exit-bridge"
    [
      ( "merkle",
        [
          QCheck_alcotest.to_alcotest prop_proofs_verify;
          QCheck_alcotest.to_alcotest prop_mutation_fails;
          QCheck_alcotest.to_alcotest prop_differential_root;
          QCheck_alcotest.to_alcotest prop_deterministic_order_sensitive;
          merkle_units;
        ] );
      ( "benign",
        [
          benign_zero_tuples;
          QCheck_alcotest.to_alcotest prop_benign_sound;
        ] );
      ("exactness", exactness_cases);
      ("benign-twin", twin_cases);
      ("edge", [ undeposited_claim; spec_guards ]);
      ("matrix", matrix_cases);
      ( "generator",
        [
          QCheck_alcotest.to_alcotest prop_twin_differential;
          QCheck_alcotest.to_alcotest prop_deterministic;
        ] );
      ("golden", golden_cases);
    ]
