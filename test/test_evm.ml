(* Tests for the EVM data model: addresses, contract-address
   derivation, call-trace flattening. *)

module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module U256 = Xcw_uint256.Uint256

let addr_roundtrip =
  Alcotest.test_case "address hex round-trip" `Quick (fun () ->
      let a = Address.of_hex "0x1234567890abcdef1234567890abcdef12345678" in
      Alcotest.(check string)
        "hex" "0x1234567890abcdef1234567890abcdef12345678" (Address.to_hex a))

let addr_size_enforced =
  Alcotest.test_case "addresses must be 20 bytes" `Quick (fun () ->
      (try
         ignore (Address.of_bytes "short");
         Alcotest.fail "expected Invalid_argument"
       with Invalid_argument _ -> ());
      try
        ignore (Address.of_hex "0x1234");
        Alcotest.fail "expected Invalid_argument"
      with Invalid_argument _ -> ())

let zero_address =
  Alcotest.test_case "zero address" `Quick (fun () ->
      Alcotest.(check bool) "is zero" true (Address.is_zero Address.zero);
      Alcotest.(check string)
        "hex" "0x0000000000000000000000000000000000000000"
        (Address.to_hex Address.zero))

let contract_address_known =
  Alcotest.test_case "contract address derivation matches mainnet rule" `Quick
    (fun () ->
      (* keccak256(rlp([sender, nonce]))[12:] — the canonical test:
         sender 0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0 with nonce 0
         creates 0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d (the famous
         CryptoKitties-era example). *)
      let sender = Address.of_hex "0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0" in
      Alcotest.(check string)
        "nonce 0" "0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d"
        (Address.to_hex (Address.contract_address ~sender ~nonce:0));
      Alcotest.(check string)
        "nonce 1" "0x343c43a37d37dff08ae8c4a11544c718abb4fcf8"
        (Address.to_hex (Address.contract_address ~sender ~nonce:1)))

let contract_addresses_distinct =
  QCheck.Test.make ~name:"distinct nonces give distinct contract addresses"
    ~count:100
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (n1, n2) ->
      QCheck.assume (n1 <> n2);
      let sender = Address.of_seed "deployer" in
      not
        (Address.equal
           (Address.contract_address ~sender ~nonce:n1)
           (Address.contract_address ~sender ~nonce:n2)))

let of_seed_deterministic =
  Alcotest.test_case "of_seed is deterministic and label-sensitive" `Quick
    (fun () ->
      Alcotest.(check bool) "same" true
        (Address.equal (Address.of_seed "x") (Address.of_seed "x"));
      Alcotest.(check bool) "different" false
        (Address.equal (Address.of_seed "x") (Address.of_seed "y")))

let make_frame ?(depth = 0) ?(value = 0) ~from_ ~to_ subcalls =
  {
    Types.call_type = Types.Call;
    call_from = Address.of_seed from_;
    call_to = Address.of_seed to_;
    call_value = U256.of_int value;
    call_input = "";
    call_depth = depth;
    subcalls;
  }

let flatten_preorder =
  Alcotest.test_case "flatten_calls is pre-order" `Quick (fun () ->
      let tree =
        make_frame ~from_:"a" ~to_:"b"
          [
            make_frame ~depth:1 ~from_:"b" ~to_:"c"
              [ make_frame ~depth:2 ~from_:"c" ~to_:"d" [] ];
            make_frame ~depth:1 ~from_:"b" ~to_:"e" [];
          ]
      in
      let flat = Types.flatten_calls tree in
      Alcotest.(check int) "4 frames" 4 (List.length flat);
      Alcotest.(check (list int))
        "depths in pre-order" [ 0; 1; 2; 1 ]
        (List.map (fun f -> f.Types.call_depth) flat))

let internal_value_transfers_filter =
  Alcotest.test_case "internal_value_transfers excludes top level and zeros"
    `Quick (fun () ->
      let tree =
        make_frame ~value:100 ~from_:"a" ~to_:"b"
          [
            make_frame ~depth:1 ~value:50 ~from_:"b" ~to_:"c" [];
            make_frame ~depth:1 ~value:0 ~from_:"b" ~to_:"d" [];
          ]
      in
      let transfers = Types.internal_value_transfers tree in
      Alcotest.(check int) "one internal transfer" 1 (List.length transfers);
      Alcotest.(check bool) "the 50-value call" true
        (U256.equal (List.hd transfers).Types.call_value (U256.of_int 50)))

let status_codes =
  Alcotest.test_case "status codes" `Quick (fun () ->
      Alcotest.(check int) "success" 1 (Types.status_code Types.Success);
      Alcotest.(check int) "reverted" 0 (Types.status_code Types.Reverted))

let () =
  Alcotest.run "evm"
    [
      ( "address",
        [
          addr_roundtrip;
          addr_size_enforced;
          zero_address;
          contract_address_known;
          of_seed_deterministic;
          QCheck_alcotest.to_alcotest contract_addresses_distinct;
        ] );
      ( "traces",
        [ flatten_preorder; internal_value_transfers_filter; status_codes ] );
    ]
