(* Durable-state suite (DESIGN.md §14).

   Five axes:
   - store primitives: WAL framing round-trips, torn tails and
     CRC-corrupt records truncate to the last valid record, snapshots
     commit atomically and absorb the WAL prefix they cover, and a
     deterministic crash sweep over every write opportunity of a fixed
     append/snapshot script leaves a clean prefix of the record stream;
   - satellites: Engine.dump_facts survives a simulated partial write
     (stale temp files are invisible to readers), and a huge 429
     retry-after hint is clamped against the remaining retry budget
     instead of blowing the deadline or forcing a spurious give-up;
   - monitor resumption: a checkpointed monitor stopped mid-timeline
     and recovered from its state directory emits exactly the
     uninterrupted alert stream (dedup by al_seq) and converges to the
     identical report; a reorg-storm lane restarted mid-rewind still
     matches the clean monitor's alert keys;
   - fleet crash sweep: the qcheck property "crash at any injected
     write point, restart, resume == uninterrupted run" over a
     nomad/ronin/attack-pack fleet at --jobs 1 and 4 (full 1..N sweep
     under XCW_CRASH_FULL=1, i.e. the @crash alias);
   - golden: the post-restart fleet health table is pinned in
     golden/recovery.golden, and a split (run, stop, resume) fleet run
     reproduces the uninterrupted emission stream byte for byte. *)

module T = Xcw_testlib
module Codec = Xcw_store.Codec
module Crash_plan = Xcw_store.Crash_plan
module Store = Xcw_store.Store
module Engine = Xcw_datalog.Engine
module Rpc = Xcw_rpc.Rpc
module Fault = Xcw_rpc.Fault
module Client = Xcw_rpc.Client
module Bridge = Xcw_bridge.Bridge
module Detector = Xcw_core.Detector
module Monitor = Xcw_core.Monitor
module Report = Xcw_core.Report
module Sup = Xcw_fleet.Supervisor
module Bus = Xcw_fleet.Bus
module Presets = Xcw_fleet.Presets

let u = T.u

(* A unique scratch directory path (not yet created — the store mkdirs
   it); Filename.temp_file reserves the name race-free. *)
let fresh_dir () =
  let f = Filename.temp_file "xcw-store" "" in
  Sys.remove f;
  f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let codec_roundtrip =
  Alcotest.test_case "codec round-trips every primitive; crc32 is IEEE"
    `Quick (fun () ->
      Alcotest.(check int32) "crc32 check vector" 0xCBF43926l
        (Codec.crc32 "123456789");
      let b = Buffer.create 64 in
      Codec.W.int b (-42);
      Codec.W.int b max_int;
      Codec.W.bool b true;
      Codec.W.float b 1.5;
      Codec.W.str b "hello\000world";
      Codec.W.opt_str b None;
      Codec.W.opt_str b (Some "x");
      Codec.W.list b (Codec.W.int b) [ 1; 2; 3 ];
      let r = Codec.R.of_string (Buffer.contents b) in
      Alcotest.(check int) "neg int" (-42) (Codec.R.int r);
      Alcotest.(check int) "max int" max_int (Codec.R.int r);
      Alcotest.(check bool) "bool" true (Codec.R.bool r);
      Alcotest.(check (float 0.0)) "float" 1.5 (Codec.R.float r);
      Alcotest.(check string) "str with NUL" "hello\000world" (Codec.R.str r);
      Alcotest.(check (option string)) "none" None (Codec.R.opt_str r);
      Alcotest.(check (option string)) "some" (Some "x") (Codec.R.opt_str r);
      Alcotest.(check (list int)) "list" [ 1; 2; 3 ]
        (Codec.R.list r (fun () -> Codec.R.int r));
      Alcotest.(check bool) "fully consumed" true (Codec.R.at_end r);
      match Codec.R.int (Codec.R.of_string "short") with
      | exception Codec.R.Corrupt _ -> ()
      | _ -> Alcotest.fail "truncated read must raise Corrupt")

(* ------------------------------------------------------------------ *)
(* WAL + snapshot primitives                                           *)

let wal_roundtrip =
  Alcotest.test_case "append / close / reopen round-trips the records"
    `Quick (fun () ->
      let dir = fresh_dir () in
      let t, r0 = Store.open_ ~dir () in
      Alcotest.(check bool) "fresh dir is empty" true
        (r0.Store.r_snapshot = None && r0.Store.r_records = []);
      Alcotest.(check int) "first index" 1 (Store.append t "one");
      Alcotest.(check int) "second index" 2 (Store.append t "two");
      Store.close t;
      let t2, r = Store.open_ ~dir () in
      Alcotest.(check (list (pair int string)))
        "records back in order"
        [ (1, "one"); (2, "two") ]
        r.Store.r_records;
      Alcotest.(check int) "no bytes truncated" 0 r.Store.r_truncated_bytes;
      Alcotest.(check int) "indices continue" 3 (Store.append t2 "three");
      Store.close t2)

let wal_torn_tail =
  Alcotest.test_case "a torn trailing record is truncated away" `Quick
    (fun () ->
      let dir = fresh_dir () in
      let t, _ = Store.open_ ~dir () in
      ignore (Store.append t "alpha");
      ignore (Store.append t "beta");
      Store.close t;
      let wal = Filename.concat dir "wal.log" in
      let good = read_file wal in
      (* Half a frame of a third record reaches disk. *)
      write_file wal (good ^ String.sub good 0 13);
      let t2, r = Store.open_ ~dir () in
      Alcotest.(check (list (pair int string)))
        "valid prefix survives"
        [ (1, "alpha"); (2, "beta") ]
        r.Store.r_records;
      Alcotest.(check int) "torn bytes reported" 13 r.Store.r_truncated_bytes;
      Alcotest.(check int) "file truncated to the valid length"
        (String.length good)
        (String.length (read_file wal));
      (* The store keeps appending cleanly after the amputation. *)
      ignore (Store.append t2 "gamma");
      Store.close t2;
      let _, r2 = Store.open_ ~dir () in
      Alcotest.(check (list (pair int string)))
        "append after truncation is durable"
        [ (1, "alpha"); (2, "beta"); (3, "gamma") ]
        r2.Store.r_records)

let wal_corrupt_record =
  Alcotest.test_case "a CRC-corrupt record cuts the scan at its offset"
    `Quick (fun () ->
      let dir = fresh_dir () in
      let t, _ = Store.open_ ~dir () in
      ignore (Store.append t "first");
      let mid_off = Store.wal_bytes t in
      ignore (Store.append t "second");
      ignore (Store.append t "third");
      Store.close t;
      let wal = Filename.concat dir "wal.log" in
      let raw = Bytes.of_string (read_file wal) in
      (* Flip one payload byte of the middle record. *)
      let off = mid_off + 20 in
      Bytes.set raw off (Char.chr (Char.code (Bytes.get raw off) lxor 0xff));
      write_file wal (Bytes.to_string raw);
      let _, r = Store.open_ ~dir () in
      Alcotest.(check (list (pair int string)))
        "only the records before the corruption survive"
        [ (1, "first") ]
        r.Store.r_records;
      Alcotest.(check bool) "corrupt tail truncated" true
        (r.Store.r_truncated_bytes > 0))

let snapshot_recovery =
  Alcotest.test_case
    "snapshot absorbs the WAL prefix; stale temp files are discarded"
    `Quick (fun () ->
      let dir = fresh_dir () in
      let t, _ = Store.open_ ~dir () in
      ignore (Store.append t "a");
      ignore (Store.append t "b");
      Store.snapshot t "state-after-2";
      Alcotest.(check int) "WAL truncated after the snapshot" 0
        (Store.wal_bytes t);
      ignore (Store.append t "c");
      Store.close t;
      (* A leftover temp from an aborted later snapshot must be inert. *)
      write_file (Filename.concat dir "snapshot.bin.tmp") "garbage";
      let t2, r = Store.open_ ~dir () in
      Alcotest.(check (option string)) "snapshot payload" (Some "state-after-2")
        r.Store.r_snapshot;
      Alcotest.(check (list (pair int string)))
        "only the post-snapshot tail replays"
        [ (3, "c") ]
        r.Store.r_records;
      Alcotest.(check bool) "temp file removed" false
        (Sys.file_exists (Filename.concat dir "snapshot.bin.tmp"));
      Alcotest.(check int) "indices continue past the snapshot" 4
        (Store.append t2 "d");
      Store.close t2)

(* Deterministic store-level crash sweep: run a fixed append/snapshot
   script once per write opportunity, crashing at each; after every
   crash the reopened store must hold a clean prefix of the record
   stream containing at least every append that returned. *)
let store_crash_sweep =
  Alcotest.test_case "crash at every write point leaves a clean prefix"
    `Quick (fun () ->
      let script crash dir =
        let completed = ref [] in
        let t, _ = Store.open_ ?crash ~dir () in
        (try
           for i = 1 to 6 do
             let p = Printf.sprintf "rec-%d" i in
             ignore (Store.append t p);
             completed := p :: !completed;
             if i = 3 then Store.snapshot t "upto-3"
           done
         with Crash_plan.Crashed _ -> ());
        Store.close t;
        List.rev !completed
      in
      let count = Crash_plan.none () in
      ignore (script (Some count) (fresh_dir ()));
      let n = Crash_plan.ops count in
      Alcotest.(check bool) "script exercises both paths" true (n >= 12);
      for k = 1 to n do
        let dir = fresh_dir () in
        let completed = script (Some (Crash_plan.at k)) dir in
        let _, r = Store.open_ ~dir () in
        let visible =
          (match r.Store.r_snapshot with
          | Some "upto-3" -> [ "rec-1"; "rec-2"; "rec-3" ]
          | Some s -> Alcotest.failf "k=%d: unexpected snapshot %S" k s
          | None -> [])
          @ List.map snd r.Store.r_records
        in
        let m = List.length visible in
        let expect_prefix =
          List.init m (fun i -> Printf.sprintf "rec-%d" (i + 1))
        in
        Alcotest.(check (list string))
          (Printf.sprintf "k=%d: visible records form a clean prefix" k)
          expect_prefix visible;
        Alcotest.(check bool)
          (Printf.sprintf "k=%d: no returned append was lost" k)
          true
          (m >= List.length completed)
      done)

(* ------------------------------------------------------------------ *)
(* Satellite: dump_facts atomicity                                     *)

let dump_facts_atomic =
  Alcotest.test_case
    "dump_facts commits by rename; a partial write is invisible" `Quick
    (fun () ->
      let db = Engine.create_db () in
      Engine.add_fact db "edge" [ Xcw_datalog.Ast.Str "a"; Xcw_datalog.Ast.Int 1 ];
      Engine.add_fact db "edge" [ Xcw_datalog.Ast.Str "b"; Xcw_datalog.Ast.Int 2 ];
      let dir = fresh_dir () in
      Unix.mkdir dir 0o755;
      (* A crash mid-dump leaves only the temp file behind: readers of
         the published path never see it... *)
      write_file (Filename.concat dir "edge.facts.tmp") "torn\tgarbage";
      Alcotest.(check bool) "partial dump not visible under the real name"
        false
        (Sys.file_exists (Filename.concat dir "edge.facts"));
      (* ...and the next complete dump replaces it atomically. *)
      Engine.dump_facts db ~dir;
      let content = read_file (Filename.concat dir "edge.facts") in
      Alcotest.(check string) "full TSV published" "a\t1\nb\t2\n" content;
      Alcotest.(check bool) "temp file consumed by the rename" false
        (Sys.file_exists (Filename.concat dir "edge.facts.tmp")))

(* ------------------------------------------------------------------ *)
(* Satellite: retry-after clamped against the remaining budget         *)

let retry_after_clamped =
  Alcotest.test_case
    "a huge 429 hint neither sleeps past the budget nor forces give-up"
    `Quick (fun () ->
      (* Every request is rate-limited with a 500 s advisory; the
         budget is 10 s.  The un-clamped behaviour either slept 500 s
         (blowing the deadline) or — feeding the inflated pause into
         the give-up check — gave up on attempt 1 with zero retries. *)
      let plan =
        {
          Fault.none with
          Fault.f_rate_limit_prob = 1.0;
          f_rate_limit_burst = 1;
          f_retry_after = 500.0;
        }
      in
      let budget = 10.0 in
      let policy =
        {
          Client.default_policy with
          Client.p_max_attempts = 5;
          p_base_backoff = 1.0;
          p_backoff_factor = 2.0;
          p_max_backoff = 4.0;
          p_jitter = 0.0;
          p_latency_budget = budget;
        }
      in
      let b, _ = T.make_bridge () in
      let rpc = Rpc.create ~fault:plan b.Bridge.source.Bridge.chain in
      let c = Client.create ~policy ~seed:21 rpc in
      (match
         (Client.get_balance c (Xcw_evm.Address.of_seed "clamp")).Rpc.value
       with
      | Error (Fault.Rate_limited _) -> ()
      | _ -> Alcotest.fail "expected the final rate-limit error");
      let s = Client.stats c in
      Alcotest.(check bool)
        "the affordable retry happened despite the huge hint" true
        (s.Client.s_retries >= 1);
      Alcotest.(check bool) "total sleep stayed within the budget" true
        (s.Client.s_backoff_seconds <= budget);
      Alcotest.(check int) "exactly one give-up, at the deadline" 1
        s.Client.s_give_ups)

(* ------------------------------------------------------------------ *)
(* Monitor resumption                                                  *)

let render_alerts alerts =
  String.concat "\n"
    (List.map
       (fun (a : Monitor.alert) ->
         let sb, tb = a.Monitor.al_detected_at in
         Printf.sprintf "%d|%s|(%d,%d)" a.Monitor.al_seq (Bus.signature a) sb
           tb)
       alerts)

(* Merge polls across a restart: drop replayed alerts at or below the
   consumer's sequence high-water mark (the documented dedup rule). *)
let dedup_alerts hwm alerts =
  List.filter (fun (a : Monitor.alert) -> a.Monitor.al_seq > !hwm) alerts
  |> List.map (fun (a : Monitor.alert) ->
         hwm := max !hwm a.Monitor.al_seq;
         a)

let monitor_resume =
  Alcotest.test_case
    "stop/recover mid-timeline: alert stream and report identical" `Quick
    (fun () ->
      let ops = [ 0; 1; 2; 3; 0; 2 ] in
      let b, m = T.make_bridge () in
      let input = T.monitor_input b in
      let user = T.user_with_tokens b m "store-resume" (u 1_000_000) in
      T.seed_completed_deposit b m user;
      let snaps =
        List.mapi
          (fun i op ->
            T.apply_op b m user i op;
            T.cur b)
          ops
      in
      let clean = Monitor.create input in
      let clean_alerts =
        List.concat_map
          (fun (sb, tb) -> Monitor.poll clean ~source_block:sb ~target_block:tb)
          snaps
      in
      let dir = fresh_dir () in
      let hwm = ref 0 in
      (* First life: snapshot every 2 polls, stop after the third. *)
      let ck1 = Monitor.Checkpoint.open_ ~snapshot_every:2 ~dir () in
      let mon1 = Monitor.create ~checkpoint:ck1 input in
      let first, rest =
        (List.filteri (fun i _ -> i < 3) snaps,
         List.filteri (fun i _ -> i >= 3) snaps)
      in
      let alerts1 =
        List.concat_map
          (fun (sb, tb) ->
            dedup_alerts hwm (Monitor.poll mon1 ~source_block:sb ~target_block:tb))
          first
      in
      let seq1 = Monitor.alert_seq mon1 in
      Monitor.Checkpoint.close ck1;
      (* Second life: recover and replay the remaining timeline. *)
      let ck2 = Monitor.Checkpoint.open_ ~snapshot_every:2 ~dir () in
      let mon2 = Monitor.create ~checkpoint:ck2 input in
      Alcotest.(check int) "sequence counter recovered" seq1
        (Monitor.alert_seq mon2);
      Alcotest.(check int) "poll counter recovered" 3 (Monitor.polls mon2);
      let replay = dedup_alerts hwm (Monitor.replayed mon2) in
      Alcotest.(check string) "replay tail already covered by the consumer"
        "" (render_alerts replay);
      let alerts2 =
        List.concat_map
          (fun (sb, tb) ->
            dedup_alerts hwm (Monitor.poll mon2 ~source_block:sb ~target_block:tb))
          rest
      in
      Alcotest.(check string) "alert stream identical across the restart"
        (render_alerts clean_alerts)
        (render_alerts (alerts1 @ replay @ alerts2));
      (match (Monitor.last_report clean, Monitor.last_report mon2) with
      | Some rc, Some rr ->
          Alcotest.(check bool) "final reports identical" true
            (T.report_signature rc = T.report_signature rr)
      | _ -> Alcotest.fail "missing report");
      Monitor.Checkpoint.close ck2)

let reorg_restart =
  Alcotest.test_case
    "reorg rewind survives a restart: same alert keys, same report" `Quick
    (fun () ->
      let plan =
        { Fault.none with Fault.f_reorg_prob = 0.5; f_reorg_depth = 3 }
      in
      let b, m = T.make_bridge () in
      let input = T.monitor_input b in
      let faulty_input =
        {
          input with
          Detector.i_source_fault = Some plan;
          i_target_fault = Some plan;
          i_rpc_seed = 7;
        }
      in
      let user = T.user_with_tokens b m "store-reorg" (u 1_000_000) in
      T.seed_completed_deposit b m user;
      let clean = Monitor.create input in
      let dir = fresh_dir () in
      let ck1 = Monitor.Checkpoint.open_ ~dir () in
      let faulty1 = Monitor.create ~checkpoint:ck1 faulty_input in
      let clean_alerts = ref [] and faulty_alerts = ref [] in
      List.iteri
        (fun i op ->
          T.apply_op b m user i op;
          let sb, tb = T.cur b in
          clean_alerts :=
            !clean_alerts @ Monitor.poll clean ~source_block:sb ~target_block:tb;
          faulty_alerts :=
            !faulty_alerts
            @ Monitor.poll faulty1 ~source_block:sb ~target_block:tb)
        [ 0; 1; 2; 3 ];
      (* Keep polling until a reorg has actually rewound the cursor, so
         the stop lands mid-rewind — but never to full sync. *)
      let sb, tb = T.cur b in
      let polls = ref 0 in
      while (Monitor.health faulty1).Monitor.h_reorgs = 0 && !polls < 100 do
        incr polls;
        faulty_alerts :=
          !faulty_alerts
          @ Monitor.poll faulty1 ~source_block:sb ~target_block:tb
      done;
      let reorgs1 = (Monitor.health faulty1).Monitor.h_reorgs in
      Alcotest.(check bool) "a reorg fired before the stop" true (reorgs1 > 0);
      Monitor.Checkpoint.close ck1;
      (* Restart mid-rewind: the recovered monitor re-derives the
         database and keeps chasing the chains.  The fault PRNG restarts
         with the process, so the claim is key equality (exactly the
         clean alerts, no duplicates), not byte-identity of cursors. *)
      let ck2 = Monitor.Checkpoint.open_ ~dir () in
      let faulty2 = Monitor.create ~checkpoint:ck2 faulty_input in
      Alcotest.(check int) "reorg count recovered" reorgs1
        (Monitor.health faulty2).Monitor.h_reorgs;
      let hwm = ref (Monitor.alert_seq faulty2) in
      let synced = ref false in
      let polls = ref 0 in
      while (not !synced) && !polls < 300 do
        incr polls;
        let late = Monitor.poll faulty2 ~source_block:sb ~target_block:tb in
        faulty_alerts := !faulty_alerts @ dedup_alerts hwm late;
        synced := (Monitor.health faulty2).Monitor.h_synced
      done;
      Alcotest.(check bool) "synced after the restart" true !synced;
      Alcotest.(check bool) "reorg signals survived recovery" true
        ((Monitor.health faulty2).Monitor.h_reorgs > 0);
      Alcotest.(check bool) "alert keys identical to the clean run" true
        (T.alert_keys !clean_alerts = T.alert_keys !faulty_alerts);
      (match (Monitor.last_report clean, Monitor.last_report faulty2) with
      | Some rc, Some rf ->
          Alcotest.(check bool) "reports identical" true
            (T.report_signature rc = T.report_signature rf)
      | _ -> Alcotest.fail "missing report");
      Monitor.Checkpoint.close ck2)

(* ------------------------------------------------------------------ *)
(* Fleet crash sweep                                                   *)

let sweep_rounds = 4

let sweep_lanes () =
  [
    Presets.lane ~scale:0.01 ~seed:3 ~rounds_to_sync:3 Presets.Nomad;
    Presets.lane ~scale:0.01 ~seed:5 ~rounds_to_sync:3 Presets.Ronin;
    Presets.lane ~rounds_to_sync:3 (Presets.Attack Report.Forged_proof);
    (* Exit-bridge accounting lane: slashing evasion also emits
       root-divergence alerts, so a resumed checkpoint must replay the
       Accounting anomaly-class tags byte-identically. *)
    Presets.lane ~rounds_to_sync:3 (Presets.Exit_attack Report.Slashing_evasion);
  ]

let render_fleet_stream fas =
  String.concat "\n"
    (List.map
       (fun (fa : Bus.fleet_alert) ->
         Printf.sprintf "#%d r%d %s a%d %s" fa.Bus.fa_seq fa.Bus.fa_round
           fa.Bus.fa_bridge fa.Bus.fa_alert.Monitor.al_seq
           (Bus.signature fa.Bus.fa_alert))
       fas)

(* Drive a durable fleet to [sweep_rounds], restarting (without the
   plan — a process crashes once) whenever the injected crash fires.
   The consumer dedups by [fa_seq] high-water mark, exactly as the
   Supervisor docs prescribe.  Returns the merged emission stream and
   how many crashes were survived. *)
let drive_fleet ~jobs ~dir ~crash =
  let stream = ref [] and hwm = ref (-1) in
  let add fas =
    List.iter
      (fun (fa : Bus.fleet_alert) ->
        if fa.Bus.fa_seq > !hwm then begin
          stream := fa :: !stream;
          hwm := fa.Bus.fa_seq
        end)
      fas
  in
  let crashes = ref 0 in
  let rec go crash =
    let sup = Sup.create ~ndomains:jobs ~state_dir:dir ?crash (sweep_lanes ()) in
    add (Sup.replayed sup);
    match
      while Sup.rounds sup < sweep_rounds do
        add (Sup.poll sup)
      done
    with
    | () -> ()
    | exception Crash_plan.Crashed _ ->
        incr crashes;
        go None
  in
  go crash;
  (List.rev !stream, !crashes)

(* Uninterrupted baseline per jobs setting, computed once; the counting
   plan also sizes the 1..N crash space. *)
let baselines : (int, string * int) Hashtbl.t = Hashtbl.create 4

let baseline ~jobs =
  match Hashtbl.find_opt baselines jobs with
  | Some b -> b
  | None ->
      let count = Crash_plan.none () in
      let stream, crashes =
        drive_fleet ~jobs ~dir:(fresh_dir ()) ~crash:(Some count)
      in
      assert (crashes = 0);
      let b = (render_fleet_stream stream, Crash_plan.ops count) in
      Hashtbl.replace baselines jobs b;
      b

let check_crash_at ~jobs k =
  let expected, _ = baseline ~jobs in
  let stream, crashes = drive_fleet ~jobs ~dir:(fresh_dir ()) ~crash:(Some (Crash_plan.at k)) in
  let got = render_fleet_stream stream in
  if crashes <> 1 then
    Alcotest.failf "jobs=%d k=%d: expected exactly one crash, got %d" jobs k
      crashes;
  if got <> expected then
    Alcotest.failf "jobs=%d k=%d: stream diverged at %s" jobs k
      (T.first_diff expected got);
  true

let prop_crash_sweep =
  QCheck.Test.make ~count:(T.qcount 5)
    ~name:"crash at any write point, restart, resume == uninterrupted"
    QCheck.(pair (oneofl [ 1; 4 ]) (int_bound 1_000_000))
    (fun (jobs, pick) ->
      let _, n = baseline ~jobs in
      let k = 1 + (pick mod n) in
      check_crash_at ~jobs k)

(* The exhaustive 1..N sweep at both worker counts — minutes, not
   seconds, so it only runs under XCW_CRASH_FULL=1 (the @crash alias). *)
let full_crash_sweep =
  Alcotest.test_case "exhaustive crash sweep (XCW_CRASH_FULL=1)" `Slow
    (fun () ->
      match Sys.getenv_opt "XCW_CRASH_FULL" with
      | None -> print_endline "set XCW_CRASH_FULL=1 for the full sweep"
      | Some _ ->
          List.iter
            (fun jobs ->
              let _, n = baseline ~jobs in
              Printf.printf "sweeping %d crash points at --jobs %d\n%!" n jobs;
              for k = 1 to n do
                ignore (check_crash_at ~jobs k)
              done)
            [ 1; 4 ])

(* ------------------------------------------------------------------ *)
(* Split fleet run + recovery golden                                   *)

let state_name = function
  | Sup.Active -> "active"
  | Sup.Degraded -> "degraded"
  | Sup.Parked { until; term } -> Printf.sprintf "parked(%d,%d)" until term
  | Sup.Probation -> "probation"

let golden_lanes () =
  [
    Presets.lane ~seed:7 ~scale:0.01 ~rounds_to_sync:6 Presets.Ronin;
    Presets.lane ~seed:11 ~scale:0.01 ~rounds_to_sync:6 Presets.Nomad;
    Presets.lane ~rounds_to_sync:6 (Presets.Attack Report.Forged_proof);
  ]

let recovery_golden =
  Alcotest.test_case
    "split run matches uninterrupted; health table matches recovery.golden"
    `Quick (fun () ->
      let rounds = 8 and stop_at = 4 in
      (* Uninterrupted reference (also durable, so the store itself is
         proven transparent to the stream). *)
      let ref_sup = Sup.create ~state_dir:(fresh_dir ()) (golden_lanes ()) in
      ignore (Sup.run ref_sup ~rounds);
      let expected = render_fleet_stream (Sup.alerts ref_sup) in
      (* Split run: stop after [stop_at] rounds, resume from disk. *)
      let dir = fresh_dir () in
      let first = Sup.create ~state_dir:dir (golden_lanes ()) in
      let stream = ref [] and hwm = ref (-1) in
      let add fas =
        List.iter
          (fun (fa : Bus.fleet_alert) ->
            if fa.Bus.fa_seq > !hwm then begin
              stream := fa :: !stream;
              hwm := fa.Bus.fa_seq
            end)
          fas
      in
      for _ = 1 to stop_at do
        add (Sup.poll first)
      done;
      let second = Sup.create ~state_dir:dir (golden_lanes ()) in
      Alcotest.(check int) "resumed at the durable round" stop_at
        (Sup.rounds second);
      let replayed = Sup.replayed second in
      add replayed;
      while Sup.rounds second < rounds do
        add (Sup.poll second)
      done;
      Alcotest.(check string) "split emission stream identical" expected
        (render_fleet_stream (List.rev !stream));
      let render_health (h : Sup.health) =
        let buf = Buffer.create 1024 in
        Printf.bprintf buf "recovery: %d-lane fleet resumed at round %d/%d\n"
          (List.length h.Sup.fh_lanes) (stop_at + 1) rounds;
        Printf.bprintf buf "replayed %d alert(s) from round %d\n"
          (List.length replayed) stop_at;
        List.iter
          (fun (lh : Sup.lane_health) ->
            Printf.bprintf buf "lane %d %s %s polls=%d alerts=%d lag=%d\n"
              lh.Sup.lh_index lh.Sup.lh_name
              (state_name lh.Sup.lh_state)
              lh.Sup.lh_polls lh.Sup.lh_alerts lh.Sup.lh_lag)
          h.Sup.fh_lanes;
        Printf.bprintf buf "bus: emitted=%d collapsed=%d\n" h.Sup.fh_emitted
          h.Sup.fh_collapsed;
        Buffer.contents buf
      in
      let rendered = render_health (Sup.health second) in
      match Sys.getenv_opt "XCW_GOLDEN_WRITE" with
      | Some gdir ->
          let path = Filename.concat gdir "recovery.golden" in
          let oc = open_out_bin path in
          output_string oc rendered;
          close_out oc;
          Printf.printf "wrote %s\n%!" path
      | None ->
          let path = Filename.concat "golden" "recovery.golden" in
          if not (Sys.file_exists path) then
            Alcotest.failf
              "missing fixture %s (regenerate with XCW_GOLDEN_WRITE)" path
          else
            let expected = T.read_file path in
            if expected <> rendered then
              Alcotest.failf "recovery health drifted from %s at %s" path
                (T.first_diff expected rendered))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "store"
    [
      ("codec", [ codec_roundtrip ]);
      ( "wal",
        [ wal_roundtrip; wal_torn_tail; wal_corrupt_record; snapshot_recovery ]
      );
      ("crash-store", [ store_crash_sweep ]);
      ("satellites", [ dump_facts_atomic; retry_after_clamped ]);
      ("monitor", [ monitor_resume; reorg_restart ]);
      ( "fleet",
        [ QCheck_alcotest.to_alcotest prop_crash_sweep; full_crash_sweep ] );
      ("golden", [ recovery_golden ]);
    ]
