(* Golden regression tests: the full Ronin and Nomad reports, rendered
   to a stable text form and pinned to committed fixtures.  Any change
   to decoding, rule evaluation or dissection that shifts a captured
   count, anomaly class, transaction hash or USD value shows up as a
   fixture diff instead of slipping through the count-based assertions.

   Regenerate deliberately with
     XCW_GOLDEN_WRITE=$PWD/test/golden dune exec test/test_golden.exe
   from the repository root, then review the diff. *)

module T = Xcw_testlib
module Detector = Xcw_core.Detector
module Decoder = Xcw_core.Decoder
module Report = Xcw_core.Report
module Fault = Xcw_rpc.Fault
module Pool = Xcw_rpc.Pool
module Nomad = Xcw_workload.Nomad
module Ronin = Xcw_workload.Ronin
module Scenario = Xcw_workload.Scenario
module Attacks = Xcw_workload.Attacks
module Bridge = Xcw_bridge.Bridge

(* The renderers live in the shared testlib so the fleet suite can pin
   per-lane monitor reports against these same fixtures. *)
let render = T.render_report
let render_attack_report = T.render_attack_report

let attack_input cls () =
  let inj = Attacks.build (Attacks.default_spec cls) in
  let b = inj.Attacks.inj_built in
  Detector.default_input
    ~label:("attack-" ^ Attacks.class_slug cls)
    ~plugin:Decoder.ronin_plugin ~config:b.Scenario.config
    ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
    ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
    ~pricing:b.Scenario.pricing

let attack_report cls () =
  (Detector.run (attack_input cls ())).Detector.report

let nomad_input () =
  let b = Nomad.build ~seed:11 ~scale:0.02 () in
  Detector.default_input ~label:"nomad" ~plugin:Decoder.nomad_plugin
    ~config:b.Scenario.config
    ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
    ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
    ~pricing:b.Scenario.pricing

let ronin_input () =
  let b = Ronin.build ~seed:7 ~scale:0.02 () in
  let input =
    Detector.default_input ~label:"ronin" ~plugin:Decoder.ronin_plugin
      ~config:b.Scenario.config
      ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
      ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
      ~pricing:b.Scenario.pricing
  in
  {
    input with
    Detector.i_first_window_withdrawal_id =
      b.Scenario.first_window_withdrawal_id;
  }

let nomad_report () = (Detector.run (nomad_input ())).Detector.report
let ronin_report () = (Detector.run (ronin_input ())).Detector.report

let read_file = T.read_file
let first_diff = T.first_diff

let check ?(render = render) ~name report =
  let rendered = render (report ()) in
  match Sys.getenv_opt "XCW_GOLDEN_WRITE" with
  | Some dir ->
      let path = Filename.concat dir (name ^ ".golden") in
      let oc = open_out_bin path in
      output_string oc rendered;
      close_out oc;
      Printf.printf "wrote %s\n%!" path
  | None ->
      let path = Filename.concat "golden" (name ^ ".golden") in
      if not (Sys.file_exists path) then
        Alcotest.failf "missing fixture %s (regenerate with XCW_GOLDEN_WRITE)"
          path
      else
        let expected = read_file path in
        if expected <> rendered then
          Alcotest.failf "report drifted from %s at %s" path
            (first_diff expected rendered)

(* Quorum reuse: a 3-endpoint / 2-quorum run with one Byzantine
   endpoint must reproduce the {e existing} single-endpoint fixtures
   byte for byte — no fixtures are regenerated for pool-backed runs —
   and the pool must name the liar.  Skipped in write mode: fixtures
   come from the single-endpoint run only. *)
let check_quorum_reuse ~name build_input =
  match Sys.getenv_opt "XCW_GOLDEN_WRITE" with
  | Some _ ->
      Printf.printf
        "skipping %s quorum reuse: fixtures are written single-endpoint\n%!"
        name
  | None ->
      let efs = [ None; None; Some Fault.byzantine ] in
      let input =
        {
          (build_input ()) with
          Detector.i_endpoints = 3;
          i_quorum = 2;
          i_source_endpoint_faults = efs;
          i_target_endpoint_faults = efs;
        }
      in
      let result = Detector.run input in
      let rendered = render result.Detector.report in
      let path = Filename.concat "golden" (name ^ ".golden") in
      let expected = read_file path in
      if expected <> rendered then
        Alcotest.failf "quorum run drifted from %s at %s" path
          (first_diff expected rendered);
      (match result.Detector.pool_health with
      | None -> Alcotest.fail "expected pool health from a quorum run"
      | Some (sh, th) ->
          Alcotest.(check (list int))
            "source pool names the Byzantine endpoint" [ 2 ]
            sh.Pool.ph_suspects;
          Alcotest.(check (list int))
            "target pool names the Byzantine endpoint" [ 2 ]
            th.Pool.ph_suspects)

(* Parallel reuse: a --jobs 4 run must reproduce the {e existing}
   sequential fixtures byte for byte — the fixtures are never
   regenerated for parallel runs, so any divergence between the
   partitioned and sequential evaluation orders fails here.  Skipped in
   write mode: fixtures come from the sequential run only. *)
let check_parallel_reuse ~name build_input =
  match Sys.getenv_opt "XCW_GOLDEN_WRITE" with
  | Some _ ->
      Printf.printf
        "skipping %s parallel reuse: fixtures are written sequentially\n%!"
        name
  | None ->
      let input = { (build_input ()) with Detector.i_ndomains = 4 } in
      let rendered = render (Detector.run input).Detector.report in
      let path = Filename.concat "golden" (name ^ ".golden") in
      let expected = read_file path in
      if expected <> rendered then
        Alcotest.failf "--jobs 4 run drifted from %s at %s" path
          (first_diff expected rendered)

let () =
  Alcotest.run "golden"
    [
      ( "reports",
        [
          Alcotest.test_case "nomad report matches its fixture" `Quick
            (fun () -> check ~name:"nomad" nomad_report);
          Alcotest.test_case "ronin report matches its fixture" `Quick
            (fun () -> check ~name:"ronin" ronin_report);
          Alcotest.test_case
            "nomad quorum run reuses the fixture and names the liar" `Quick
            (fun () -> check_quorum_reuse ~name:"nomad" nomad_input);
          Alcotest.test_case
            "ronin quorum run reuses the fixture and names the liar" `Quick
            (fun () -> check_quorum_reuse ~name:"ronin" ronin_input);
          Alcotest.test_case "nomad --jobs 4 run reuses the fixture" `Quick
            (fun () -> check_parallel_reuse ~name:"nomad" nomad_input);
          Alcotest.test_case "ronin --jobs 4 run reuses the fixture" `Quick
            (fun () -> check_parallel_reuse ~name:"ronin" ronin_input);
        ] );
      ( "attack-packs",
        List.map
          (fun cls ->
            let slug = Attacks.class_slug cls in
            Alcotest.test_case
              (Printf.sprintf "attack pack %s matches its fixture" slug)
              `Quick
              (fun () ->
                check ~render:render_attack_report
                  ~name:("attack_" ^ slug)
                  (attack_report cls)))
          Report.attack_classes );
    ]
