(* Robustness fuzzing: decoders over adversarial input must fail with
   their declared exceptions — never any other way.  This matters for
   XChainWatcher's threat model: the decoder consumes attacker-crafted
   on-chain data (fake events, malformed payloads), so "panics" on
   hostile bytes would be a denial-of-service vector against the
   monitor. *)

module Abi = Xcw_abi.Abi
module Rlp = Xcw_rlp.Rlp
module Parser = Xcw_datalog.Parser
module Json = Xcw_util.Json
module U256 = Xcw_uint256.Uint256

let arb_bytes = Xcw_testlib.arb_bytes

let abi_decode_total =
  QCheck.Test.make ~name:"ABI decode on random bytes: Ok or Decode_error"
    ~count:500
    QCheck.(pair arb_bytes (int_bound 4))
    (fun (blob, shape) ->
      let types =
        match shape with
        | 0 -> [ Abi.Type.Address; Abi.Type.uint256 ]
        | 1 -> [ Abi.Type.Bytes ]
        | 2 -> [ Abi.Type.Array Abi.Type.uint256 ]
        | 3 -> [ Abi.Type.String_t; Abi.Type.Bool ]
        | _ -> [ Abi.Type.Tuple [ Abi.Type.uint256; Abi.Type.Bytes ] ]
      in
      match Abi.decode types blob with
      | _ -> true
      | exception Abi.Decode_error _ -> true)

let event_decode_total =
  QCheck.Test.make
    ~name:"event decode on random topics/data: Ok or Decode_error" ~count:300
    QCheck.(pair (list_of_size Gen.(0 -- 4) (make Gen.(string_size ~gen:char (return 32)))) arb_bytes)
    (fun (topics, data) ->
      let ev = Xcw_chain.Erc20.transfer_event in
      match Abi.Event.decode_log ev topics data with
      | _ -> true
      | exception Abi.Decode_error _ -> true)

let rlp_decode_total =
  QCheck.Test.make ~name:"RLP decode on random bytes: Ok or Decode_error"
    ~count:500 arb_bytes
    (fun blob ->
      match Rlp.decode blob with
      | _ -> true
      | exception Rlp.Decode_error _ -> true)

let parser_total =
  QCheck.Test.make ~name:"rule parser on random text: Ok or Parse_error"
    ~count:500
    QCheck.(string_of_size Gen.(0 -- 120))
    (fun src ->
      match Parser.parse_program src with
      | _ -> true
      | exception Parser.Parse_error _ -> true)

let json_total =
  QCheck.Test.make ~name:"JSON parser on random text: Ok or Parse_error"
    ~count:500
    QCheck.(string_of_size Gen.(0 -- 120))
    (fun src ->
      match Json.of_string src with
      | _ -> true
      | exception Json.Parse_error _ -> true)

let uint256_strings_total =
  QCheck.Test.make
    ~name:"uint256 of_string on random text: Ok or declared exception"
    ~count:500
    QCheck.(string_of_size Gen.(0 -- 100))
    (fun src ->
      match U256.of_string src with
      | _ -> true
      | exception Invalid_argument _ -> true
      | exception U256.Overflow -> true)

let hex_total =
  QCheck.Test.make ~name:"hex decode on random text: Ok or Invalid_argument"
    ~count:500
    QCheck.(string_of_size Gen.(0 -- 100))
    (fun src ->
      match Xcw_util.Hex.decode src with
      | _ -> true
      | exception Invalid_argument _ -> true)

(* Malicious contract: emits a log with a correct Transfer topic0 but
   garbage topic arity/data; the chain decoder must record an error
   (or skip), never crash. *)
let hostile_log_decoding =
  Alcotest.test_case "decoder survives hostile bridge-shaped logs" `Quick
    (fun () ->
      let module Chain = Xcw_chain.Chain in
      let module Address = Xcw_evm.Address in
      let module Bridge = Xcw_bridge.Bridge in
      let module Events = Xcw_bridge.Events in
      let s =
        Chain.create ~chain_id:1 ~name:"s" ~finality_seconds:60
          ~genesis_time:1_650_000_000
      in
      let t =
        Chain.create ~chain_id:2 ~name:"t" ~finality_seconds:30
          ~genesis_time:1_650_000_000
      in
      let b =
        Bridge.create
          {
            Bridge.s_label = "fuzz";
            s_source_chain = s;
            s_target_chain = t;
            s_escrow = Bridge.Lock_unlock;
            s_acceptance =
              Bridge.Multisig
                {
                  threshold = 1;
                  validator_count = 1;
                  compromised_keys = 0;
                  enforce_source_finality = true;
                };
            s_beneficiary_repr = Events.B_address;
            s_buggy_unmapped_withdrawal = false;
          }
      in
      ignore (Bridge.register_token_pair b ~name:"T" ~symbol:"T" ~decimals:18);
      let attacker = Address.of_seed "fuzz-attacker" in
      Chain.fund s attacker (U256.of_tokens ~decimals:18 1);
      (* A contract that re-emits the Transfer topic0 with truncated
         data and wrong topic arity. *)
      let hostile =
        Chain.deploy s ~from_:attacker ~label:"hostile" (fun env ->
            (* Emit via a custom raw-ish event: reuse the Transfer event
               declaration but with a short value — encode_log keeps it
               well-formed, so instead emit an event whose signature
               collides only in name. *)
            env.Xcw_chain.Chain.emit
              Xcw_abi.Abi.Event.
                {
                  name = "Transfer";
                  params =
                    [
                      param ~indexed:true "a" Xcw_abi.Abi.Type.Address;
                      param "b" Xcw_abi.Abi.Type.Bool;
                    ];
                }
              [ Xcw_abi.Abi.Value.Address attacker; Xcw_abi.Abi.Value.Bool true ])
      in
      ignore (Chain.submit_tx s ~from_:attacker ~to_:hostile ~input:"x" ());
      let config = Xcw_core.Config.of_bridge b in
      let client = Xcw_rpc.Client.create (Xcw_rpc.Rpc.create s) in
      (* Must not raise. *)
      let rds =
        Xcw_core.Decoder.decode_chain Xcw_core.Decoder.ronin_plugin config
          ~role:Xcw_core.Decoder.Source client s
      in
      Alcotest.(check bool) "decoded without crashing" true (List.length rds > 0))

let () =
  Alcotest.run "fuzz"
    [
      ( "totality",
        List.map QCheck_alcotest.to_alcotest
          [
            abi_decode_total;
            event_decode_total;
            rlp_decode_total;
            parser_total;
            json_total;
            uint256_strings_total;
            hex_total;
          ] );
      ("hostile-input", [ hostile_log_decoding ]);
    ]
